//! Explicit SIMD lanes for the column-major verification kernels.
//!
//! Every function here is a *drop-in* vector form of a scalar loop that
//! lives (and stays) in [`kernels`](crate::verifiers::kernels), the
//! verifier inner loops, or the subregion builder. The dispatch tier comes
//! from [`cpnn_pdf::simd`] (re-exported below) so the whole workspace — the
//! pdf interpolation sweep included — flips on one cached decision:
//! `is_x86_feature_detected!` once per process, `CPNN_SIMD=off|sse2|avx2`
//! to override, [`force_tier`] for in-process tier sweeps in tests and
//! benches.
//!
//! # Bit-identity argument
//!
//! Only loops whose iterations are **lane-independent** are vectorized:
//! each output element depends on its own inputs through the exact scalar
//! expression tree (`sub → mul → add → …`, never a fused multiply-add the
//! scalar code does not perform), and IEEE-754 `addpd`/`subpd`/`mulpd`/
//! `divpd` round identically to their scalar counterparts per lane.
//! Anything with a serial dependency keeps scalar order:
//!
//! * the exclude-one **prefix/suffix product chains** are multiplied in
//!   scalar order — the multi-column builders below put *four independent
//!   columns* in the four lanes instead of splitting one chain;
//! * the Poisson-binomial **row update** reads only pre-update state, so
//!   rows vectorize whole; the per-factor sweep over probabilities stays
//!   in its original order;
//! * **reductions** (`Σ mass·q`, Gauss–Legendre accumulation, DP tail
//!   sums) are untouched.
//!
//! Clamps replicate `f64::clamp` with compare-and-select, so `-0.0` and
//! NaN lanes behave exactly like the scalar branch. The property tests in
//! `tests/proptest_kernels.rs` assert `to_bits()` equality of verdicts and
//! bounds across every available tier, and CI re-runs them under
//! `CPNN_SIMD=off` and `CPNN_SIMD=sse2` on every merge.

pub use cpnn_pdf::simd::{active_tier, cpu_features, detected_tier, force_tier, SimdTier};

/// Survival transform: `out[i] = 1 − cdf[i]`.
pub fn fill_survival(cdf: &[f64], out: &mut [f64]) {
    debug_assert_eq!(cdf.len(), out.len());
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { fill_survival_avx2(cdf, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { fill_survival_sse2(cdf, out) },
        _ => fill_survival_scalar(cdf, out),
    }
}

/// Scalar reference for [`fill_survival`].
pub fn fill_survival_scalar(cdf: &[f64], out: &mut [f64]) {
    for (o, &c) in out.iter_mut().zip(cdf) {
        *o = 1.0 - c;
    }
}

/// L-SR staging: `out[i] = (pref[i] · suff[i+1] · inv_cj).clamp(0, 1)`.
pub fn fill_excl_scaled(pref: &[f64], suff: &[f64], inv_cj: f64, out: &mut [f64]) {
    debug_assert!(pref.len() >= out.len() && suff.len() > out.len());
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { fill_excl_scaled_avx2(pref, suff, inv_cj, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { fill_excl_scaled_sse2(pref, suff, inv_cj, out) },
        _ => fill_excl_scaled_scalar(pref, suff, inv_cj, out),
    }
}

/// Scalar reference for [`fill_excl_scaled`] — the exact L-SR expression.
pub fn fill_excl_scaled_scalar(pref: &[f64], suff: &[f64], inv_cj: f64, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = (pref[i] * suff[i + 1] * inv_cj).clamp(0.0, 1.0);
    }
}

/// FL-SR staging: `out[i] = (pref[i] · suff[i+1]).clamp(0, 1)`.
pub fn fill_excl(pref: &[f64], suff: &[f64], out: &mut [f64]) {
    debug_assert!(pref.len() >= out.len() && suff.len() > out.len());
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { fill_excl_avx2(pref, suff, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { fill_excl_sse2(pref, suff, out) },
        _ => fill_excl_scalar(pref, suff, out),
    }
}

/// Scalar reference for [`fill_excl`] — the exact FL-SR expression.
pub fn fill_excl_scalar(pref: &[f64], suff: &[f64], out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = (pref[i] * suff[i + 1]).clamp(0.0, 1.0);
    }
}

/// U-SR staging:
/// `out[i] = ½ (pn[i]·sn[i+1] + pc[i]·sc[i+1])` (unclamped — the verifier
/// clamps against the per-cell lower bound afterwards).
pub fn fill_usr(pc: &[f64], sc: &[f64], pn: &[f64], sn: &[f64], out: &mut [f64]) {
    debug_assert!(pc.len() >= out.len() && sc.len() > out.len());
    debug_assert!(pn.len() >= out.len() && sn.len() > out.len());
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { fill_usr_avx2(pc, sc, pn, sn, out) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { fill_usr_sse2(pc, sc, pn, sn, out) },
        _ => fill_usr_scalar(pc, sc, pn, sn, out),
    }
}

/// Scalar reference for [`fill_usr`] — the exact U-SR expression.
pub fn fill_usr_scalar(pc: &[f64], sc: &[f64], pn: &[f64], sn: &[f64], out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = 0.5 * (pn[i] * sn[i + 1] + pc[i] * sc[i + 1]);
    }
}

/// One Poisson-binomial DP row update with an already-clamped success
/// probability `p`: `dp[c] ← dp[c]·(1−p) + dp[c−1]·p` for every `c`
/// (with `dp[−1] = 0`), reading only pre-update state.
///
/// This is the inner step of [`kernels::pb_into`](super::kernels::pb_into),
/// the near-one fallback recompute, and the k-NN qualification integrand —
/// all of which share the exact expression tree replicated here.
pub fn pb_row_update(dp: &mut [f64], p: f64) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { pb_row_update_avx2(dp, p) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { pb_row_update_sse2(dp, p) },
        _ => pb_row_update_scalar(dp, p),
    }
}

/// Scalar reference for [`pb_row_update`] — the retained DP row loop.
pub fn pb_row_update_scalar(dp: &mut [f64], p: f64) {
    for c in (0..dp.len()).rev() {
        let come = if c > 0 { dp[c - 1] * p } else { 0.0 };
        dp[c] = dp[c] * (1.0 - p) + come;
    }
}

/// Exclude-one Poisson-binomial tails for **every** object at once:
/// `out[i] = Pr[≤ limit successes among probs \ {i}]`, deconvolving the
/// shared state `dp` per lane (four objects per AVX2 register). Lanes with
/// `probs[i] > 0.999` are ill-conditioned for deconvolution and are
/// recomputed scalar via
/// [`kernels::pb_tail_excluding`](super::kernels::pb_tail_excluding)
/// (which matches the scalar fallback bit for bit); `spare` is its scratch.
pub fn pb_tails_excluding_many(dp: &[f64], probs: &[f64], out: &mut [f64], spare: &mut Vec<f64>) {
    debug_assert_eq!(probs.len(), out.len());
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { pb_tails_avx2(dp, probs, out, spare) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { pb_tails_sse2(dp, probs, out, spare) },
        _ => pb_tails_scalar(dp, probs, out, spare),
    }
}

/// Scalar reference for [`pb_tails_excluding_many`]: one
/// [`kernels::pb_tail_excluding`](super::kernels::pb_tail_excluding) call
/// per object.
pub fn pb_tails_scalar(dp: &[f64], probs: &[f64], out: &mut [f64], spare: &mut Vec<f64>) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = super::kernels::pb_tail_excluding(dp, probs, i, spare);
    }
}

/// Build the shared exclude-one survival product tables for `cols`
/// end-point columns: for column `j`,
/// `prefix[j·stride + i + 1] = Π_{k≤i} (1 − cdf[j·n + k])` (with
/// `prefix[j·stride] = 1`) and `suffix[j·stride + i] = Π_{k≥i} (1 − …)`
/// (with `suffix[j·stride + n] = 1`), `stride = n + 1`.
///
/// Each column's multiplication chain is serial, so the vector tiers put
/// *independent columns* in the lanes (4 chains per AVX2 register, 2 per
/// SSE2) and run them in lockstep — per column the chain order is exactly
/// the scalar one, so the products are bit-identical.
pub fn shared_products(cdf: &[f64], n: usize, cols: usize, prefix: &mut [f64], suffix: &mut [f64]) {
    let stride = n + 1;
    debug_assert_eq!(cdf.len(), cols * n);
    debug_assert_eq!(prefix.len(), cols * stride);
    debug_assert_eq!(suffix.len(), cols * stride);
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { shared_products_avx2(cdf, n, cols, prefix, suffix) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { shared_products_sse2(cdf, n, cols, prefix, suffix) },
        _ => shared_products_scalar(cdf, n, cols, 0, prefix, suffix),
    }
}

/// Scalar reference for [`shared_products`], starting at column `j0` —
/// the retained per-column chain loops, also the remainder handler for the
/// vector tiers.
pub fn shared_products_scalar(
    cdf: &[f64],
    n: usize,
    cols: usize,
    j0: usize,
    prefix: &mut [f64],
    suffix: &mut [f64],
) {
    let stride = n + 1;
    for j in j0..cols {
        let col = &cdf[j * n..(j + 1) * n];
        let pre = &mut prefix[j * stride..(j + 1) * stride];
        pre[0] = 1.0;
        let mut acc = 1.0;
        for (i, &c) in col.iter().enumerate() {
            acc *= 1.0 - c;
            pre[i + 1] = acc;
        }
        let suf = &mut suffix[j * stride..(j + 1) * stride];
        suf[n] = 1.0;
        for i in (0..n).rev() {
            suf[i] = (1.0 - col[i]) * suf[i + 1];
        }
    }
}

// ---------------------------------------------------------------------------
// x86-64 implementations. Each `# Safety` contract is "the corresponding
// feature is available", which the dispatch in the public wrappers
// guarantees via `active_tier()` (detection-capped, see cpnn_pdf::simd).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `f64::clamp(x, 0, 1)` semantics per lane: compare-and-select keeps
    /// NaN and `-0.0` lanes exactly as the scalar branchy clamp would.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn clamp01_avx2(t: __m256d) -> __m256d {
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        let t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd::<_CMP_LT_OQ>(t, zero));
        _mm256_blendv_pd(t, one, _mm256_cmp_pd::<_CMP_GT_OQ>(t, one))
    }

    /// SSE2 form of [`clamp01_avx2`] (select via and/andnot/or).
    #[inline]
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn clamp01_sse2(t: __m128d) -> __m128d {
        let zero = _mm_setzero_pd();
        let one = _mm_set1_pd(1.0);
        let lt = _mm_cmplt_pd(t, zero);
        let t = _mm_andnot_pd(lt, t); // below-zero lanes -> +0.0 bits
        let gt = _mm_cmpgt_pd(t, one);
        _mm_or_pd(_mm_andnot_pd(gt, t), _mm_and_pd(gt, one))
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_survival_avx2(cdf: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let one = _mm256_set1_pd(1.0);
    let mut i = 0;
    while i + 4 <= n {
        let c = _mm256_loadu_pd(cdf.as_ptr().add(i));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_sub_pd(one, c));
        i += 4;
    }
    fill_survival_scalar(&cdf[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fill_survival_sse2(cdf: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let one = _mm_set1_pd(1.0);
    let mut i = 0;
    while i + 2 <= n {
        let c = _mm_loadu_pd(cdf.as_ptr().add(i));
        _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_sub_pd(one, c));
        i += 2;
    }
    fill_survival_scalar(&cdf[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_excl_scaled_avx2(pref: &[f64], suff: &[f64], inv_cj: f64, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let inv = _mm256_set1_pd(inv_cj);
    let mut i = 0;
    while i + 4 <= n {
        let p = _mm256_loadu_pd(pref.as_ptr().add(i));
        let s = _mm256_loadu_pd(suff.as_ptr().add(i + 1));
        let t = _mm256_mul_pd(_mm256_mul_pd(p, s), inv);
        _mm256_storeu_pd(out.as_mut_ptr().add(i), x86::clamp01_avx2(t));
        i += 4;
    }
    fill_excl_scaled_scalar(&pref[i..], &suff[i..], inv_cj, &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fill_excl_scaled_sse2(pref: &[f64], suff: &[f64], inv_cj: f64, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let inv = _mm_set1_pd(inv_cj);
    let mut i = 0;
    while i + 2 <= n {
        let p = _mm_loadu_pd(pref.as_ptr().add(i));
        let s = _mm_loadu_pd(suff.as_ptr().add(i + 1));
        let t = _mm_mul_pd(_mm_mul_pd(p, s), inv);
        _mm_storeu_pd(out.as_mut_ptr().add(i), x86::clamp01_sse2(t));
        i += 2;
    }
    fill_excl_scaled_scalar(&pref[i..], &suff[i..], inv_cj, &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_excl_avx2(pref: &[f64], suff: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut i = 0;
    while i + 4 <= n {
        let p = _mm256_loadu_pd(pref.as_ptr().add(i));
        let s = _mm256_loadu_pd(suff.as_ptr().add(i + 1));
        _mm256_storeu_pd(
            out.as_mut_ptr().add(i),
            x86::clamp01_avx2(_mm256_mul_pd(p, s)),
        );
        i += 4;
    }
    fill_excl_scalar(&pref[i..], &suff[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fill_excl_sse2(pref: &[f64], suff: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut i = 0;
    while i + 2 <= n {
        let p = _mm_loadu_pd(pref.as_ptr().add(i));
        let s = _mm_loadu_pd(suff.as_ptr().add(i + 1));
        _mm_storeu_pd(out.as_mut_ptr().add(i), x86::clamp01_sse2(_mm_mul_pd(p, s)));
        i += 2;
    }
    fill_excl_scalar(&pref[i..], &suff[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_usr_avx2(pc: &[f64], sc: &[f64], pn: &[f64], sn: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let half = _mm256_set1_pd(0.5);
    let mut i = 0;
    while i + 4 <= n {
        let next = _mm256_mul_pd(
            _mm256_loadu_pd(pn.as_ptr().add(i)),
            _mm256_loadu_pd(sn.as_ptr().add(i + 1)),
        );
        let cur = _mm256_mul_pd(
            _mm256_loadu_pd(pc.as_ptr().add(i)),
            _mm256_loadu_pd(sc.as_ptr().add(i + 1)),
        );
        let t = _mm256_mul_pd(half, _mm256_add_pd(next, cur));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), t);
        i += 4;
    }
    fill_usr_scalar(&pc[i..], &sc[i..], &pn[i..], &sn[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fill_usr_sse2(pc: &[f64], sc: &[f64], pn: &[f64], sn: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let half = _mm_set1_pd(0.5);
    let mut i = 0;
    while i + 2 <= n {
        let next = _mm_mul_pd(
            _mm_loadu_pd(pn.as_ptr().add(i)),
            _mm_loadu_pd(sn.as_ptr().add(i + 1)),
        );
        let cur = _mm_mul_pd(
            _mm_loadu_pd(pc.as_ptr().add(i)),
            _mm_loadu_pd(sc.as_ptr().add(i + 1)),
        );
        let t = _mm_mul_pd(half, _mm_add_pd(next, cur));
        _mm_storeu_pd(out.as_mut_ptr().add(i), t);
        i += 2;
    }
    fill_usr_scalar(&pc[i..], &sc[i..], &pn[i..], &sn[i..], &mut out[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pb_row_update_avx2(dp: &mut [f64], p: f64) {
    use std::arch::x86_64::*;
    let n = dp.len();
    let chunks = n.saturating_sub(1) / 4;
    let vec_end = 1 + 4 * chunks; // vector region is indices [1, vec_end)
                                  // Top remainder first, descending: it reads only indices below itself,
                                  // which nothing has overwritten yet.
    for c in (vec_end..n).rev() {
        let come = dp[c - 1] * p;
        dp[c] = dp[c] * (1.0 - p) + come;
    }
    let pv = _mm256_set1_pd(p);
    let qv = _mm256_set1_pd(1.0 - p);
    let base = dp.as_mut_ptr();
    // Chunks descending: chunk at s writes [s, s+4) and reads [s-1, s+4),
    // i.e. nothing at or above what an earlier (higher) chunk rewrote.
    for chunk in (0..chunks).rev() {
        let s = 1 + 4 * chunk;
        let cur = _mm256_loadu_pd(base.add(s));
        let prev = _mm256_loadu_pd(base.add(s - 1));
        let t = _mm256_add_pd(_mm256_mul_pd(cur, qv), _mm256_mul_pd(prev, pv));
        _mm256_storeu_pd(base.add(s), t);
    }
    // Index 0 (the `come = 0` case), via the scalar reference.
    pb_row_update_scalar(&mut dp[..1.min(n)], p);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn pb_row_update_sse2(dp: &mut [f64], p: f64) {
    use std::arch::x86_64::*;
    let n = dp.len();
    let chunks = n.saturating_sub(1) / 2;
    let vec_end = 1 + 2 * chunks;
    for c in (vec_end..n).rev() {
        let come = dp[c - 1] * p;
        dp[c] = dp[c] * (1.0 - p) + come;
    }
    let pv = _mm_set1_pd(p);
    let qv = _mm_set1_pd(1.0 - p);
    let base = dp.as_mut_ptr();
    for chunk in (0..chunks).rev() {
        let s = 1 + 2 * chunk;
        let cur = _mm_loadu_pd(base.add(s));
        let prev = _mm_loadu_pd(base.add(s - 1));
        let t = _mm_add_pd(_mm_mul_pd(cur, qv), _mm_mul_pd(prev, pv));
        _mm_storeu_pd(base.add(s), t);
    }
    pb_row_update_scalar(&mut dp[..1.min(n)], p);
}

/// Deconvolution threshold shared with the scalar kernel: above this the
/// division by `1 − p` is ill-conditioned and lanes fall back to a skip-one
/// recompute.
const PB_FALLBACK_P: f64 = 0.999;

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pb_tails_avx2(dp: &[f64], probs: &[f64], out: &mut [f64], spare: &mut Vec<f64>) {
    use std::arch::x86_64::*;
    let n = probs.len();
    let one = _mm256_set1_pd(1.0);
    let thresh = _mm256_set1_pd(PB_FALLBACK_P);
    let mut i = 0;
    while i + 4 <= n {
        let p = x86::clamp01_avx2(_mm256_loadu_pd(probs.as_ptr().add(i)));
        let q = _mm256_sub_pd(one, p);
        let mut prev = _mm256_setzero_pd();
        let mut tail = _mm256_setzero_pd();
        for &d in dp {
            let dv = _mm256_set1_pd(d);
            let excl =
                x86::clamp01_avx2(_mm256_div_pd(_mm256_sub_pd(dv, _mm256_mul_pd(p, prev)), q));
            tail = _mm256_add_pd(tail, excl);
            prev = excl;
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(i), x86::clamp01_avx2(tail));
        // Ill-conditioned lanes (p ≈ 1): overwrite with the scalar skip-one
        // recompute, exactly as the scalar kernel would have branched.
        let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(p, thresh));
        if mask != 0 {
            for lane in 0..4 {
                if mask & (1 << lane) != 0 {
                    out[i + lane] = super::kernels::pb_tail_excluding(dp, probs, i + lane, spare);
                }
            }
        }
        i += 4;
    }
    for (k, o) in out.iter_mut().enumerate().take(n).skip(i) {
        *o = super::kernels::pb_tail_excluding(dp, probs, k, spare);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn pb_tails_sse2(dp: &[f64], probs: &[f64], out: &mut [f64], spare: &mut Vec<f64>) {
    use std::arch::x86_64::*;
    let n = probs.len();
    let one = _mm_set1_pd(1.0);
    let thresh = _mm_set1_pd(PB_FALLBACK_P);
    let mut i = 0;
    while i + 2 <= n {
        let p = x86::clamp01_sse2(_mm_loadu_pd(probs.as_ptr().add(i)));
        let q = _mm_sub_pd(one, p);
        let mut prev = _mm_setzero_pd();
        let mut tail = _mm_setzero_pd();
        for &d in dp {
            let dv = _mm_set1_pd(d);
            let excl = x86::clamp01_sse2(_mm_div_pd(_mm_sub_pd(dv, _mm_mul_pd(p, prev)), q));
            tail = _mm_add_pd(tail, excl);
            prev = excl;
        }
        _mm_storeu_pd(out.as_mut_ptr().add(i), x86::clamp01_sse2(tail));
        let mask = _mm_movemask_pd(_mm_cmpgt_pd(p, thresh));
        if mask != 0 {
            for lane in 0..2 {
                if mask & (1 << lane) != 0 {
                    out[i + lane] = super::kernels::pb_tail_excluding(dp, probs, i + lane, spare);
                }
            }
        }
        i += 2;
    }
    for (k, o) in out.iter_mut().enumerate().take(n).skip(i) {
        *o = super::kernels::pb_tail_excluding(dp, probs, k, spare);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn shared_products_avx2(
    cdf: &[f64],
    n: usize,
    cols: usize,
    prefix: &mut [f64],
    suffix: &mut [f64],
) {
    use std::arch::x86_64::*;
    let stride = n + 1;
    let one = _mm256_set1_pd(1.0);
    let src = cdf.as_ptr();
    let pre = prefix.as_mut_ptr();
    let suf = suffix.as_mut_ptr();
    let mut j = 0;
    // Four independent columns per register: each lane runs its column's
    // serial multiplication chain in the scalar order.
    while j + 4 <= cols {
        let (c0, c1, c2, c3) = (j * n, (j + 1) * n, (j + 2) * n, (j + 3) * n);
        let (p0, p1, p2, p3) = (
            j * stride,
            (j + 1) * stride,
            (j + 2) * stride,
            (j + 3) * stride,
        );
        *pre.add(p0) = 1.0;
        *pre.add(p1) = 1.0;
        *pre.add(p2) = 1.0;
        *pre.add(p3) = 1.0;
        let mut acc = one;
        for i in 0..n {
            let c = _mm256_set_pd(
                *src.add(c3 + i),
                *src.add(c2 + i),
                *src.add(c1 + i),
                *src.add(c0 + i),
            );
            acc = _mm256_mul_pd(acc, _mm256_sub_pd(one, c));
            let lo = _mm256_castpd256_pd128(acc);
            let hi = _mm256_extractf128_pd::<1>(acc);
            _mm_storel_pd(pre.add(p0 + i + 1), lo);
            _mm_storeh_pd(pre.add(p1 + i + 1), lo);
            _mm_storel_pd(pre.add(p2 + i + 1), hi);
            _mm_storeh_pd(pre.add(p3 + i + 1), hi);
        }
        *suf.add(p0 + n) = 1.0;
        *suf.add(p1 + n) = 1.0;
        *suf.add(p2 + n) = 1.0;
        *suf.add(p3 + n) = 1.0;
        let mut acc = one;
        for i in (0..n).rev() {
            let c = _mm256_set_pd(
                *src.add(c3 + i),
                *src.add(c2 + i),
                *src.add(c1 + i),
                *src.add(c0 + i),
            );
            acc = _mm256_mul_pd(_mm256_sub_pd(one, c), acc);
            let lo = _mm256_castpd256_pd128(acc);
            let hi = _mm256_extractf128_pd::<1>(acc);
            _mm_storel_pd(suf.add(p0 + i), lo);
            _mm_storeh_pd(suf.add(p1 + i), lo);
            _mm_storel_pd(suf.add(p2 + i), hi);
            _mm_storeh_pd(suf.add(p3 + i), hi);
        }
        j += 4;
    }
    shared_products_scalar(cdf, n, cols, j, prefix, suffix);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn shared_products_sse2(
    cdf: &[f64],
    n: usize,
    cols: usize,
    prefix: &mut [f64],
    suffix: &mut [f64],
) {
    use std::arch::x86_64::*;
    let stride = n + 1;
    let one = _mm_set1_pd(1.0);
    let src = cdf.as_ptr();
    let pre = prefix.as_mut_ptr();
    let suf = suffix.as_mut_ptr();
    let mut j = 0;
    while j + 2 <= cols {
        let (c0, c1) = (j * n, (j + 1) * n);
        let (p0, p1) = (j * stride, (j + 1) * stride);
        *pre.add(p0) = 1.0;
        *pre.add(p1) = 1.0;
        let mut acc = one;
        for i in 0..n {
            let c = _mm_set_pd(*src.add(c1 + i), *src.add(c0 + i));
            acc = _mm_mul_pd(acc, _mm_sub_pd(one, c));
            _mm_storel_pd(pre.add(p0 + i + 1), acc);
            _mm_storeh_pd(pre.add(p1 + i + 1), acc);
        }
        *suf.add(p0 + n) = 1.0;
        *suf.add(p1 + n) = 1.0;
        let mut acc = one;
        for i in (0..n).rev() {
            let c = _mm_set_pd(*src.add(c1 + i), *src.add(c0 + i));
            acc = _mm_mul_pd(_mm_sub_pd(one, c), acc);
            _mm_storel_pd(suf.add(p0 + i), acc);
            _mm_storeh_pd(suf.add(p1 + i), acc);
        }
        j += 2;
    }
    shared_products_scalar(cdf, n, cols, j, prefix, suffix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that flip the process-global dispatch tier.
    /// (Even racing flips could only change *which* bit-identical kernel
    /// runs, but serial tests make failures deterministic.)
    static TIER_LOCK: Mutex<()> = Mutex::new(());

    fn with_each_tier(mut f: impl FnMut(SimdTier)) {
        let _guard = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for tier in SimdTier::available() {
            let eff = force_tier(Some(tier));
            assert_eq!(eff, tier, "available tier must be forceable");
            f(tier);
        }
        force_tier(None);
    }

    fn assert_bits_eq(want: &[f64], got: &[f64], what: &str) {
        assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(w.to_bits(), g.to_bits(), "{what}[{i}]: {w} vs {g}");
        }
    }

    /// Awkward-length pseudo-random inputs covering clamp boundaries.
    fn noisy(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Mostly [0, 1], occasionally outside to hit the clamps.
                (state >> 11) as f64 / (1u64 << 53) as f64 * 1.2 - 0.05
            })
            .collect()
    }

    #[test]
    fn survival_all_tiers_bitwise() {
        let cdf = noisy(23, 1);
        let mut want = vec![0.0; 23];
        fill_survival_scalar(&cdf, &mut want);
        with_each_tier(|tier| {
            let mut got = vec![0.0; 23];
            fill_survival(&cdf, &mut got);
            assert_bits_eq(&want, &got, &format!("survival@{}", tier.name()));
        });
    }

    #[test]
    fn excl_kernels_all_tiers_bitwise() {
        let n = 19;
        let pref = noisy(n + 1, 2);
        let suff = noisy(n + 1, 3);
        let pref2 = noisy(n + 1, 4);
        let suff2 = noisy(n + 1, 5);
        let mut want = vec![0.0; n];
        let mut want_scaled = vec![0.0; n];
        let mut want_usr = vec![0.0; n];
        fill_excl_scalar(&pref, &suff, &mut want);
        fill_excl_scaled_scalar(&pref, &suff, 1.0 / 3.0, &mut want_scaled);
        fill_usr_scalar(&pref, &suff, &pref2, &suff2, &mut want_usr);
        with_each_tier(|tier| {
            let mut got = vec![0.0; n];
            fill_excl(&pref, &suff, &mut got);
            assert_bits_eq(&want, &got, &format!("excl@{}", tier.name()));
            fill_excl_scaled(&pref, &suff, 1.0 / 3.0, &mut got);
            assert_bits_eq(&want_scaled, &got, &format!("excl_scaled@{}", tier.name()));
            fill_usr(&pref, &suff, &pref2, &suff2, &mut got);
            assert_bits_eq(&want_usr, &got, &format!("usr@{}", tier.name()));
        });
    }

    #[test]
    fn pb_row_update_all_tiers_bitwise() {
        for len in [1usize, 2, 3, 4, 5, 7, 8, 13] {
            let init = noisy(len, 6);
            for p in [0.0, 0.3, 0.997, 1.0] {
                let mut want = init.clone();
                pb_row_update_scalar(&mut want, p);
                with_each_tier(|tier| {
                    let mut got = init.clone();
                    pb_row_update(&mut got, p);
                    assert_bits_eq(
                        &want,
                        &got,
                        &format!("pb_row(len={len},p={p})@{}", tier.name()),
                    );
                });
            }
        }
    }

    #[test]
    fn pb_tails_all_tiers_bitwise() {
        // Mix of mild and near-one probabilities to hit both the vector
        // deconvolution and the per-lane fallback.
        let probs: Vec<f64> = vec![0.2, 0.9999, 0.5, 0.0, 1.0, 0.97, 0.3, 0.9995, 0.12];
        for limit in [0usize, 1, 2, 4] {
            let mut dp = Vec::new();
            super::super::kernels::pb_into(&mut dp, &probs, limit);
            let mut spare = Vec::new();
            let mut want = vec![0.0; probs.len()];
            pb_tails_scalar(&dp, &probs, &mut want, &mut spare);
            with_each_tier(|tier| {
                let mut got = vec![0.0; probs.len()];
                pb_tails_excluding_many(&dp, &probs, &mut got, &mut spare);
                assert_bits_eq(
                    &want,
                    &got,
                    &format!("pb_tails(limit={limit})@{}", tier.name()),
                );
            });
        }
    }

    #[test]
    fn shared_products_all_tiers_bitwise() {
        for (n, cols) in [(5usize, 6usize), (8, 4), (3, 9), (1, 2), (16, 17)] {
            let cdf = noisy(n * cols, 7);
            let stride = n + 1;
            let mut want_pre = vec![0.0; cols * stride];
            let mut want_suf = vec![0.0; cols * stride];
            shared_products_scalar(&cdf, n, cols, 0, &mut want_pre, &mut want_suf);
            with_each_tier(|tier| {
                let mut pre = vec![0.0; cols * stride];
                let mut suf = vec![0.0; cols * stride];
                shared_products(&cdf, n, cols, &mut pre, &mut suf);
                assert_bits_eq(
                    &want_pre,
                    &pre,
                    &format!("prefix(n={n},cols={cols})@{}", tier.name()),
                );
                assert_bits_eq(
                    &want_suf,
                    &suf,
                    &format!("suffix(n={n},cols={cols})@{}", tier.name()),
                );
            });
        }
    }
}
