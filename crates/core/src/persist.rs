//! Snapshot persistence for uncertain databases.
//!
//! A small self-contained binary format (no external serialization crates):
//!
//! ```text
//! magic "CPNN" | version u32 | object count u64
//! per object: id u64 | bar count u32 | edges [f64] | masses [f64]
//! trailer: FNV-1a checksum u64 over everything before it
//! ```
//!
//! All integers and floats are little-endian. Loading re-validates every
//! histogram through the normal constructors, so a corrupted or hand-edited
//! snapshot can produce a checksum error or a pdf validation error but
//! never a malformed in-memory database.

use std::io::{self, Read, Write};

use cpnn_pdf::HistogramPdf;

use crate::engine::{EngineConfig, UncertainDb};
use crate::error::CoreError;
use crate::object::{ObjectId, UncertainObject};

const MAGIC: &[u8; 4] = b"CPNN";
const VERSION: u32 = 1;

/// Errors specific to snapshot encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot, or an unsupported version.
    BadHeader,
    /// Trailer checksum mismatch (corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// Payload decoded but failed semantic validation.
    Invalid(CoreError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadHeader => write!(f, "not a cpnn snapshot (bad magic/version)"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Invalid(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Incremental FNV-1a (64-bit) — tiny, dependency-free integrity check.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

/// Writer that hashes everything it forwards.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn put_f64(&mut self, v: f64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
}

/// Reader that hashes everything it yields.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }
    fn take<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let mut buf = [0u8; N];
        self.inner.read_exact(&mut buf)?;
        self.hash.update(&buf);
        Ok(buf)
    }
    fn take_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }
    fn take_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
    fn take_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }
}

/// Serialize the database's objects into `w`.
pub fn save_snapshot<W: Write>(db: &UncertainDb, w: W) -> std::result::Result<(), SnapshotError> {
    let mut w = HashingWriter::new(w);
    w.put(MAGIC)?;
    w.put_u32(VERSION)?;
    w.put_u64(db.objects().len() as u64)?;
    for obj in db.objects() {
        let pdf = obj.pdf();
        w.put_u64(obj.id().0)?;
        w.put_u32(pdf.bar_count() as u32)?;
        for &e in pdf.edges() {
            w.put_f64(e)?;
        }
        // Store masses (cdf differences): re-normalization on load is then
        // exact by construction.
        let cdf = pdf.cdf_at_edges();
        for i in 0..pdf.bar_count() {
            w.put_f64(cdf[i + 1] - cdf[i])?;
        }
    }
    let digest = w.hash.0;
    w.inner.write_all(&digest.to_le_bytes())?;
    Ok(())
}

/// Deserialize a database from `r`, rebuilding the R-tree.
pub fn load_snapshot<R: Read>(r: R) -> std::result::Result<UncertainDb, SnapshotError> {
    load_snapshot_with(r, EngineConfig::default())
}

/// Deserialize with an explicit engine configuration.
pub fn load_snapshot_with<R: Read>(
    r: R,
    config: EngineConfig,
) -> std::result::Result<UncertainDb, SnapshotError> {
    UncertainDb::with_config(load_objects(r)?, config).map_err(SnapshotError::Invalid)
}

/// Deserialize just the objects — no index build. The entry point for
/// callers that construct their own storage over the snapshot (e.g. a
/// [`crate::shard::ShardedDb`], which would otherwise pay a full flat
/// database build only to re-shard it).
pub fn load_objects<R: Read>(r: R) -> std::result::Result<Vec<UncertainObject>, SnapshotError> {
    let mut r = HashingReader::new(r);
    let magic = r.take::<4>()?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadHeader);
    }
    if r.take_u32()? != VERSION {
        return Err(SnapshotError::BadHeader);
    }
    let count = r.take_u64()? as usize;
    // Cap pre-allocation: a corrupt count must not OOM us.
    let mut objects = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let id = r.take_u64()?;
        let bars = r.take_u32()? as usize;
        if bars == 0 || bars > 1 << 24 {
            return Err(SnapshotError::BadHeader);
        }
        let mut edges = Vec::with_capacity(bars + 1);
        for _ in 0..=bars {
            edges.push(r.take_f64()?);
        }
        let mut masses = Vec::with_capacity(bars);
        for _ in 0..bars {
            masses.push(r.take_f64()?);
        }
        let pdf = HistogramPdf::from_masses(edges, masses)
            .map_err(|e| SnapshotError::Invalid(e.into()))?;
        objects.push(UncertainObject::from_histogram(ObjectId(id), pdf));
    }
    let computed = r.hash.0;
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    Ok(objects)
}

/// Convenience: result alias used by callers.
pub type SnapshotResult<T> = std::result::Result<T, SnapshotError>;

/// Round-trip helper used by the CLI: save to a file path.
pub fn save_to_path(db: &UncertainDb, path: &std::path::Path) -> SnapshotResult<()> {
    let file = std::fs::File::create(path)?;
    save_snapshot(db, io::BufWriter::new(file))
}

/// Round-trip helper used by the CLI: load from a file path.
pub fn load_from_path(path: &std::path::Path) -> SnapshotResult<UncertainDb> {
    let file = std::fs::File::open(path)?;
    load_snapshot(io::BufReader::new(file))
}

/// Load just the objects from a file path (no index build) — see
/// [`load_objects`].
pub fn load_objects_from_path(path: &std::path::Path) -> SnapshotResult<Vec<UncertainObject>> {
    let file = std::fs::File::open(path)?;
    load_objects(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CpnnQuery, Strategy};
    use crate::testutil::fig7_scenario;

    fn sample_db() -> UncertainDb {
        let (_, objects) = fig7_scenario();
        UncertainDb::build(objects).unwrap()
    }

    #[test]
    fn round_trip_preserves_objects_and_answers() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        let loaded = load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.objects().iter().zip(loaded.objects()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.region(), b.region());
            assert_eq!(a.pdf().bar_count(), b.pdf().bar_count());
        }
        // Query results are identical.
        let q = CpnnQuery::new(0.0, 0.45, 0.0);
        let x = db.cpnn(&q, Strategy::Verified).unwrap();
        let y = loaded.cpnn(&q, Strategy::Verified).unwrap();
        assert_eq!(x.answers, y.answers);
    }

    #[test]
    fn empty_database_round_trips() {
        let db = UncertainDb::build(Vec::new()).unwrap();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        let loaded = load_snapshot(buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_snapshot(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadHeader));
    }

    #[test]
    fn truncation_is_detected() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 12);
        assert!(load_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn bit_flip_is_detected_by_checksum() {
        let db = sample_db();
        let mut buf = Vec::new();
        save_snapshot(&db, &mut buf).unwrap();
        // Flip one payload byte in a float (past the header).
        let idx = buf.len() / 2;
        buf[idx] ^= 0x01;
        let err = load_snapshot(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch { .. } | SnapshotError::Invalid(_)
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("cpnn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.cpnn");
        save_to_path(&db, &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        std::fs::remove_file(&path).ok();
    }
}
