//! A 2-D uncertain-object database: the paper's "extension to 2D space"
//! (Sec. IV-A) made concrete, with R-tree filtering over bounding boxes and
//! the unchanged 1-D verifier machinery running on 2-D distance cdfs.
//!
//! Supported region shapes: uniform disks (lens-area cdf, closed form —
//! [`crate::distance2d`]) and uniform axis-aligned rectangles (chord
//! integration — [`crate::geometry2d`]). The R-tree indexes conservative
//! bounding boxes; candidate pruning is finished with exact region
//! near/far distances, mirroring \[8\]'s 2-D treatment.
//!
//! Like the 1-D database, this module only owns storage and filtering: it
//! instantiates [`crate::pipeline`]'s [`DistanceModel`] and the shared
//! verify → refine control flow does the rest.

use std::time::Instant;

use cpnn_pdf::HistogramPdf;
use cpnn_rtree::{Params, Rect};

use crate::distance::DistanceDistribution;
use crate::distance2d::{circle_distance_distribution, CircleObject};
use crate::engine::{CpnnResult, PnnResult, Strategy};
use crate::error::{CoreError, Result};
use crate::geometry2d::{rect_distance_cdf, Rect2};
use crate::object::ObjectId;
use crate::pipeline::{self, DistanceModel, Filtered, PipelineConfig, QuerySpec};
use crate::shard::{Extent, ShardBalance, ShardableModel, ShardedDb};
use crate::store::{CowModel, IndexedStore, StoredObject};

/// A 2-D uncertain object: an id plus a uniform uncertainty region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Object2d {
    /// Uniform pdf over a disk.
    Circle(CircleObject),
    /// Uniform pdf over an axis-aligned rectangle.
    Rectangle {
        /// Object identifier.
        id: ObjectId,
        /// The rectangle.
        rect: Rect2,
    },
}

impl Object2d {
    /// Uniform disk constructor.
    pub fn circle(id: ObjectId, center: [f64; 2], radius: f64) -> Result<Self> {
        Ok(Object2d::Circle(CircleObject::new(id, center, radius)?))
    }

    /// Uniform rectangle constructor.
    pub fn rectangle(id: ObjectId, min: [f64; 2], max: [f64; 2]) -> Result<Self> {
        if !(min[0] < max[0] && min[1] < max[1] && min.iter().chain(&max).all(|v| v.is_finite())) {
            return Err(CoreError::Pdf(cpnn_pdf::PdfError::EmptyRegion {
                lo: min[0],
                hi: max[0],
            }));
        }
        Ok(Object2d::Rectangle {
            id,
            rect: Rect2::new(min, max),
        })
    }

    /// The object's identifier.
    pub fn id(&self) -> ObjectId {
        match self {
            Object2d::Circle(c) => c.id,
            Object2d::Rectangle { id, .. } => *id,
        }
    }

    /// Minimum possible distance from `q`.
    pub fn near(&self, q: [f64; 2]) -> f64 {
        match self {
            Object2d::Circle(c) => c.near(q),
            Object2d::Rectangle { rect, .. } => rect.near(q),
        }
    }

    /// Maximum possible distance from `q`.
    pub fn far(&self, q: [f64; 2]) -> f64 {
        match self {
            Object2d::Circle(c) => c.far(q),
            Object2d::Rectangle { rect, .. } => rect.far(q),
        }
    }

    /// Conservative bounding box (exact for rectangles).
    pub fn bounding_box(&self) -> Rect<2> {
        match self {
            Object2d::Circle(c) => Rect::new(
                [c.center[0] - c.radius, c.center[1] - c.radius],
                [c.center[0] + c.radius, c.center[1] + c.radius],
            ),
            Object2d::Rectangle { rect, .. } => Rect::new(rect.min, rect.max),
        }
    }

    /// Distance distribution from `q`, discretized onto `bins` bars.
    pub fn distance_distribution(&self, q: [f64; 2], bins: usize) -> Result<DistanceDistribution> {
        match self {
            Object2d::Circle(c) => circle_distance_distribution(c, q, bins),
            Object2d::Rectangle { rect, .. } => {
                let bins = bins.max(2);
                let near = rect.near(q);
                let far = rect.far(q);
                let w = (far - near) / bins as f64;
                let edges: Vec<f64> = (0..=bins)
                    .map(|i| if i == bins { far } else { near + i as f64 * w })
                    .collect();
                let masses: Vec<f64> = (0..bins)
                    .map(|i| {
                        (rect_distance_cdf(q, rect, edges[i + 1])
                            - rect_distance_cdf(q, rect, edges[i]))
                        .max(0.0)
                    })
                    .collect();
                let hist = HistogramPdf::from_masses(edges, masses)?;
                DistanceDistribution::from_pdf(&hist, 0.0)
            }
        }
    }
}

/// Engine knobs for the 2-D database.
#[derive(Debug, Clone, Copy)]
pub struct Engine2dConfig {
    /// Distance-histogram resolution per object.
    pub distance_bins: usize,
}

impl Default for Engine2dConfig {
    fn default() -> Self {
        Self { distance_bins: 48 }
    }
}

/// A 2-D object is stored under its conservative bounding box.
impl StoredObject<2> for Object2d {
    fn object_id(&self) -> ObjectId {
        self.id()
    }

    fn bounding_rect(&self) -> Rect<2> {
        self.bounding_box()
    }
}

/// An in-memory database of 2-D uncertain objects over the shared
/// persistent store (path-copying bbox R-tree + id map — see
/// [`crate::store`]). `Clone` is O(1); insert/remove are O(log n) path
/// copies, exactly like the 1-D database.
#[derive(Debug, Clone)]
pub struct UncertainDb2d {
    store: IndexedStore<Object2d, 2>,
    config: Engine2dConfig,
}

impl UncertainDb2d {
    /// Build with default configuration. Fails on duplicate ids.
    pub fn build(objects: Vec<Object2d>) -> Result<Self> {
        Self::with_config(objects, Engine2dConfig::default())
    }

    /// Build with explicit configuration.
    pub fn with_config(objects: Vec<Object2d>, config: Engine2dConfig) -> Result<Self> {
        Ok(Self {
            store: IndexedStore::build(objects, Params::default())?,
            config,
        })
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Materialize the stored objects (deterministic order; O(n)).
    pub fn objects(&self) -> Vec<Object2d> {
        self.store.objects()
    }

    /// Engine configuration.
    pub fn config(&self) -> &Engine2dConfig {
        &self.config
    }

    /// Insert a new object in place (O(log n) path copy). Fails on a
    /// duplicate id. New with the persistent store: the 2-D database now
    /// has the same dynamic-update surface as the 1-D one.
    pub fn insert(&mut self, object: Object2d) -> Result<()> {
        self.store.insert(object)
    }

    /// Remove an object by id in place, returning it if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<Object2d> {
        self.store.remove(id)
    }

    /// Partition `objects` into a domain-sharded 2-D database: bbox tiles
    /// along the widest axis, each shard with its own R-tree (see
    /// [`ShardedDb`]). `shards = 1` is equivalent to an unsharded build.
    pub fn build_sharded(
        objects: Vec<Object2d>,
        shards: usize,
    ) -> Result<ShardedDb<UncertainDb2d>> {
        ShardedDb::build(objects, Engine2dConfig::default(), shards)
    }

    /// As [`build_sharded`](Self::build_sharded) with an explicit
    /// partitioning scheme (see [`ShardBalance`]).
    pub fn build_sharded_with(
        objects: Vec<Object2d>,
        shards: usize,
        balance: ShardBalance,
    ) -> Result<ShardedDb<UncertainDb2d>> {
        ShardedDb::build_with(objects, Engine2dConfig::default(), shards, balance)
    }

    /// C-PNN over 2-D objects: the unified verify → refine pipeline, as in
    /// the 1-D engine.
    pub fn cpnn(&self, q: [f64; 2], threshold: f64, tolerance: f64) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &q,
            &QuerySpec::nn(threshold, tolerance, Strategy::Verified),
            &PipelineConfig::default(),
        )
    }

    /// Constrained probabilistic k-NN over 2-D objects: the C-PkNN
    /// extension through the shared pipeline — the same evaluation the
    /// `cpnn knn2d` command and the `knn2d` bench experiment run via
    /// [`pipeline::cpnn`] with `k > 1`.
    pub fn cknn(
        &self,
        q: [f64; 2],
        k: usize,
        threshold: f64,
        tolerance: f64,
    ) -> Result<CpnnResult> {
        pipeline::cpnn(
            self,
            &q,
            &QuerySpec::knn(k, threshold, tolerance, Strategy::Verified),
            &PipelineConfig::default(),
        )
    }

    /// Exact 2-D PNN probabilities, descending.
    pub fn pnn(&self, q: [f64; 2]) -> Result<PnnResult> {
        pipeline::pnn(self, &q, 1)
    }

    /// Exact 2-D probabilistic k-NN probabilities, descending (sum to
    /// `min(k, |C|)`).
    pub fn pknn(&self, q: [f64; 2], k: usize) -> Result<PnnResult> {
        pipeline::pnn(self, &q, k)
    }
}

/// Copy-on-write successors via the persistent store — the seam that
/// gives the 2-D database the same serving-layer update surface
/// ([`crate::server::QueryServer::insert`] and the write-coalescing lane)
/// as the 1-D one.
impl CowModel for UncertainDb2d {
    type Object = Object2d;

    fn object_id(object: &Object2d) -> ObjectId {
        object.id()
    }

    fn object_extent(object: &Object2d) -> Extent {
        let bbox = object.bounding_box();
        Extent::new(bbox.min().to_vec(), bbox.max().to_vec())
    }

    fn contains_id(&self, id: ObjectId) -> bool {
        self.store.contains(id)
    }

    fn with_inserted(&self, object: Object2d) -> Result<Self> {
        Ok(Self {
            store: self.store.with_inserted(object)?,
            config: self.config,
        })
    }

    fn with_removed(&self, id: ObjectId) -> (Self, Option<Object2d>) {
        let (store, removed) = self.store.with_removed(id);
        (
            Self {
                store,
                config: self.config,
            },
            removed,
        )
    }
}

/// One [`UncertainDb2d`] is one shard (its own bbox R-tree); a
/// [`ShardedDb`] of these tiles the plane along the widest axis.
impl ShardableModel for UncertainDb2d {
    type Config = Engine2dConfig;

    fn shard_config(&self) -> Engine2dConfig {
        self.config
    }

    fn shard_objects(&self) -> Vec<Object2d> {
        self.store.objects()
    }

    fn build_shard(objects: Vec<Object2d>, config: &Engine2dConfig) -> Result<Self> {
        Self::with_config(objects, *config)
    }

    fn model_extent(&self) -> Option<Extent> {
        self.store.extent()
    }
}

impl DistanceModel for UncertainDb2d {
    type Query = [f64; 2];

    fn total_objects(&self) -> usize {
        self.store.len()
    }

    fn check_query(&self, q: &[f64; 2]) -> Result<()> {
        if !(q[0].is_finite() && q[1].is_finite()) {
            return Err(CoreError::InvalidQueryPoint(q[0]));
        }
        Ok(())
    }

    fn filter(&self, q: &[f64; 2], k: usize) -> Result<Filtered> {
        let filter_start = Instant::now();
        // Conservative bbox pruning (bbox near ≤ region near; bbox far ≥
        // region far, so the bbox horizon over-estimates and never wrongly
        // prunes), then exact pruning with true region distances against
        // the k-th smallest far point.
        let (coarse, _) = self.store.candidates_k(q, k.max(1));
        let mut survivors: Vec<&Object2d> = coarse.iter().map(|c| c.item).collect();
        let mut fars: Vec<f64> = survivors.iter().map(|o| o.far(*q)).collect();
        let horizon = crate::candidate::k_horizon(&mut fars, k);
        survivors.retain(|o| o.near(*q) <= horizon);
        let filter_time = filter_start.elapsed();

        let mut items: Vec<(ObjectId, DistanceDistribution)> = Vec::with_capacity(survivors.len());
        for o in survivors {
            items.push((
                o.id(),
                o.distance_distribution(*q, self.config.distance_bins)?,
            ));
        }
        Ok(Filtered { items, filter_time })
    }

    fn quantize_query(&self, q: &[f64; 2], quantum: f64) -> [f64; 2] {
        [
            crate::cache::quantize_coord(q[0], quantum),
            crate::cache::quantize_coord(q[1], quantum),
        ]
    }

    fn cache_key(&self, q: &[f64; 2]) -> Option<u128> {
        Some(crate::cache::point_key_2d(*q))
    }

    fn query_coords(&self, q: &[f64; 2]) -> Option<Vec<f64>> {
        Some(q.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_db() -> UncertainDb2d {
        let objects = vec![
            Object2d::circle(ObjectId(0), [2.0, 0.0], 1.0).unwrap(),
            Object2d::rectangle(ObjectId(1), [-3.0, -1.0], [-1.0, 1.0]).unwrap(),
            Object2d::circle(ObjectId(2), [0.0, 5.0], 0.5).unwrap(),
            Object2d::rectangle(ObjectId(3), [40.0, 40.0], [41.0, 41.0]).unwrap(),
        ];
        UncertainDb2d::build(objects).unwrap()
    }

    #[test]
    fn duplicate_ids_rejected() {
        let objects = vec![
            Object2d::circle(ObjectId(0), [0.0, 0.0], 1.0).unwrap(),
            Object2d::circle(ObjectId(0), [5.0, 0.0], 1.0).unwrap(),
        ];
        assert!(UncertainDb2d::build(objects).is_err());
    }

    #[test]
    fn invalid_rectangle_rejected() {
        assert!(Object2d::rectangle(ObjectId(0), [1.0, 0.0], [0.0, 1.0]).is_err());
        assert!(Object2d::rectangle(ObjectId(0), [0.0, 0.0], [f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn far_objects_are_filtered() {
        let db = mixed_db();
        let res = db.pnn([0.0, 0.0]).unwrap();
        // Object 3 (far corner) can never be nearest.
        assert!(res.probabilities.iter().all(|(id, _)| id.0 != 3));
        let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn symmetric_mixed_shapes_split_probability() {
        // A disk and a square of equal area, mirrored about the query.
        let r = 1.0;
        let side = (std::f64::consts::PI * r * r).sqrt();
        let objects = vec![
            Object2d::circle(ObjectId(0), [3.0, 0.0], r).unwrap(),
            Object2d::rectangle(
                ObjectId(1),
                [-3.0 - side / 2.0, -side / 2.0],
                [-3.0 + side / 2.0, side / 2.0],
            )
            .unwrap(),
        ];
        let db = UncertainDb2d::build(objects).unwrap();
        let res = db.pnn([0.0, 0.0]).unwrap();
        // Not exactly 50/50 (shapes differ), but both substantial.
        for (_, p) in &res.probabilities {
            assert!(*p > 0.25 && *p < 0.75, "p = {p}");
        }
    }

    #[test]
    fn cpnn_2d_matches_exact_thresholding() {
        let db = mixed_db();
        let q = [0.0, 0.5];
        let exact = db.pnn(q).unwrap();
        for threshold in [0.15, 0.4, 0.8] {
            let res = db.cpnn(q, threshold, 0.0).unwrap();
            let mut want: Vec<ObjectId> = exact
                .probabilities
                .iter()
                .filter(|(_, p)| *p >= threshold)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(res.answers, want, "P = {threshold}");
        }
    }

    #[test]
    fn rectangle_inside_query_point_has_zero_near() {
        let o = Object2d::rectangle(ObjectId(0), [0.0, 0.0], [2.0, 2.0]).unwrap();
        assert_eq!(o.near([1.0, 1.0]), 0.0);
        assert!((o.far([1.0, 1.0]) - 2f64.sqrt()).abs() < 1e-12);
        let d = o.distance_distribution([1.0, 1.0], 32).unwrap();
        assert!((d.cdf(d.far()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cknn_2d_matches_exact_pknn_thresholding() {
        let db = mixed_db();
        let q = [0.0, 0.5];
        let exact = db.pknn(q, 2).unwrap();
        let total: f64 = exact.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 2.0).abs() < 1e-6, "sum = {total}");
        for threshold in [0.3, 0.6, 0.95] {
            let res = db.cknn(q, 2, threshold, 0.0).unwrap();
            let mut want: Vec<ObjectId> = exact
                .probabilities
                .iter()
                .filter(|(_, p)| *p >= threshold)
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(res.answers, want, "P = {threshold}");
        }
    }

    #[test]
    fn query_stats_are_populated() {
        let db = mixed_db();
        let res = db.cpnn([0.0, 0.0], 0.3, 0.01).unwrap();
        assert_eq!(res.stats.total_objects, 4);
        assert!(res.stats.candidates >= 2);
        assert!(!res.stats.stages.is_empty());
    }
}
