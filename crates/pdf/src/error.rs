//! Error type shared by the probability substrate.

use std::fmt;

/// Errors raised when constructing or evaluating probability distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum PdfError {
    /// The uncertainty region `[lo, hi]` is empty or inverted.
    EmptyRegion {
        /// Lower end of the offending region.
        lo: f64,
        /// Upper end of the offending region.
        hi: f64,
    },
    /// A parameter that must be strictly positive was not (e.g. `σ`, bar count).
    NonPositiveParameter {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A density or mass value was negative or not finite.
    InvalidDensity {
        /// Index of the offending histogram bar (if applicable).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Histogram edges were not strictly increasing.
    UnsortedEdges {
        /// Index of the first offending edge.
        index: usize,
    },
    /// The pdf integrates to (numerically) zero, so it cannot be normalized.
    ZeroMass,
    /// Mismatched array lengths (e.g. `edges.len() != densities.len() + 1`).
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A cdf knot sequence was not a valid cumulative distribution
    /// (non-monotone, outside `[0, 1]`, or inconsistent with its bar
    /// masses).
    InvalidCdf {
        /// Index of the first offending cdf knot.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdfError::EmptyRegion { lo, hi } => {
                write!(f, "empty or inverted uncertainty region [{lo}, {hi}]")
            }
            PdfError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            PdfError::InvalidDensity { index, value } => {
                write!(f, "invalid density {value} at index {index}")
            }
            PdfError::UnsortedEdges { index } => {
                write!(
                    f,
                    "histogram edges not strictly increasing at index {index}"
                )
            }
            PdfError::ZeroMass => write!(f, "pdf has zero total mass; cannot normalize"),
            PdfError::InvalidCdf { index, value } => {
                write!(f, "invalid cdf knot {value} at index {index}")
            }
            PdfError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for PdfError {}
