//! Exact qualification probabilities.
//!
//! Two evaluators:
//!
//! * [`basic_probabilities`] — the paper's **Basic** baseline (\[5\]):
//!   `p_i = ∫ d_i(r) · Π_{k≠i} (1 − D_k(r)) dr` evaluated by adaptive
//!   numerical integration straight over the distance distributions. This is
//!   deliberately the expensive path the paper benchmarks against.
//! * [`subregion_qualification`] / [`exact_probabilities`] — the
//!   subregion-decomposed form `p_i = Σ_j s_ij · q_ij` (paper Eq. 4), where
//!   each `q_ij` integrates a *polynomial* (every distance cdf is linear
//!   inside a subregion), evaluated with composite Gauss–Legendre panels.
//!   Incremental refinement (Sec. IV-D) reuses `subregion_qualification`.

use std::cell::Cell;

use cpnn_pdf::integrate::{adaptive_simpson, gauss_legendre, GlOrder};

use crate::candidate::CandidateSet;
use crate::subregion::{SubregionTable, MASS_EPS};

/// Exact subregion qualification probability `q_ij`: the chance `X_i` is the
/// nearest neighbor given `R_i ∈ S_j`.
///
/// With `t ∈ [0, 1]` parameterizing `S_j` and each competitor cdf linear in
/// `t` (`D_k = a_k + t·s_kj`), and `d_i` constant inside `S_j`:
/// `q_ij = ∫₀¹ Π_{k≠i} (1 − a_k − t·s_kj) dt`.
pub fn subregion_qualification(table: &SubregionTable, i: usize, j: usize) -> f64 {
    let n = table.n_objects();
    // Factors that are not identically 1 on this subregion.
    let active: Vec<(f64, f64)> = (0..n)
        .filter(|&k| k != i)
        .map(|k| (table.cdf_at(k, j), table.mass(k, j)))
        .filter(|&(a, m)| a > 0.0 || m > MASS_EPS)
        .collect();
    if active.is_empty() {
        return 1.0;
    }
    // The integrand is a polynomial of degree `active.len()`; 16-point GL is
    // exact to degree 31, so split into panels for very crowded subregions.
    let panels = active.len().div_ceil(24).max(1);
    let mut total = 0.0;
    let w = 1.0 / panels as f64;
    for p in 0..panels {
        let a = p as f64 * w;
        let b = a + w;
        total += gauss_legendre(
            |t| {
                active
                    .iter()
                    .map(|&(a_k, m_k)| (1.0 - a_k - t * m_k).max(0.0))
                    .product::<f64>()
            },
            a,
            b,
            GlOrder::Sixteen,
        );
    }
    total.clamp(0.0, 1.0)
}

/// Exact qualification probabilities for every candidate, via the subregion
/// decomposition (Eq. 4). Also returns the number of subregion integrations
/// performed.
pub fn exact_probabilities(table: &SubregionTable) -> (Vec<f64>, usize) {
    let n = table.n_objects();
    let l = table.left_regions();
    let mut probs = vec![0.0; n];
    let mut integrations = 0;
    for (i, slot) in probs.iter_mut().enumerate() {
        let mut p = 0.0;
        for j in 0..l {
            let s = table.mass(i, j);
            if s > MASS_EPS {
                p += s * subregion_qualification(table, i, j);
                integrations += 1;
            }
        }
        *slot = p.clamp(0.0, 1.0);
    }
    (probs, integrations)
}

/// The **Basic** method (\[5\]): per object, adaptive Simpson over
/// `[n_i, fmin]` of `d_i(r) · Π_{k≠i}(1 − D_k(r))`, evaluating the distance
/// pdfs/cdfs directly (binary search per evaluation — this is the cost the
/// verifiers avoid). Returns the probabilities and the total number of
/// integrand evaluations.
pub fn basic_probabilities(cands: &CandidateSet, tol: f64) -> (Vec<f64>, usize) {
    let members = cands.members();
    let n = members.len();
    let fmin = cands.fmin();
    let evals = Cell::new(0usize);
    let mut probs = vec![0.0; n];
    for (i, m) in members.iter().enumerate() {
        let lo = m.dist.near();
        let hi = fmin.min(m.dist.far());
        if hi <= lo {
            // Degenerate: all mass beyond fmin except a point.
            probs[i] = 0.0;
            continue;
        }
        let integrand = |r: f64| {
            evals.set(evals.get() + 1);
            let mut v = m.dist.density(r);
            if v == 0.0 {
                return 0.0;
            }
            for (k, other) in members.iter().enumerate() {
                if k != i {
                    v *= 1.0 - other.dist.cdf(r);
                    if v == 0.0 {
                        return 0.0;
                    }
                }
            }
            v
        };
        // The integrand has jump discontinuities at histogram bin edges;
        // integrating over a handful of fixed panels (adaptive within each)
        // prevents the error estimator from terminating early across a jump.
        const PANELS: usize = 8;
        let w = (hi - lo) / PANELS as f64;
        let mut p = 0.0;
        for k in 0..PANELS {
            let a = lo + k as f64 * w;
            let b = if k + 1 == PANELS { hi } else { a + w };
            p += adaptive_simpson(integrand, a, b, tol / PANELS as f64);
        }
        probs[i] = p.clamp(0.0, 1.0);
    }
    (probs, evals.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateSet;
    use crate::object::{ObjectId, UncertainObject};
    use crate::testutil::{fig7_exact, fig7_scenario};

    #[test]
    fn subregion_exact_matches_hand_computation() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let (probs, integrations) = exact_probabilities(&table);
        for (got, want) in probs.iter().zip(fig7_exact()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Active subregions: X1 has 4, X2 has 3, X3 has 1.
        assert_eq!(integrations, 8);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let (probs, _) = exact_probabilities(&table);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    #[test]
    fn basic_agrees_with_subregion_exact() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let (want, _) = exact_probabilities(&table);
        let (got, evals) = basic_probabilities(&cands, 1e-9);
        assert!(evals > 0);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn single_candidate_has_probability_one() {
        let objects = vec![UncertainObject::uniform(ObjectId(0), 2.0, 5.0).unwrap()];
        let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let (probs, _) = exact_probabilities(&table);
        assert!((probs[0] - 1.0).abs() < 1e-12);
        let (basic, _) = basic_probabilities(&cands, 1e-9);
        assert!((basic[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identical_objects_split_evenly() {
        let objects: Vec<UncertainObject> = (0..4)
            .map(|i| UncertainObject::uniform(ObjectId(i), 1.0, 3.0).unwrap())
            .collect();
        let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let (probs, _) = exact_probabilities(&table);
        for p in &probs {
            assert!((p - 0.25).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn dominated_object_has_zero_probability_mass_beyond_fmin() {
        // X0 = [1,2]; X1 = [2.5, 9]: X1's near (2.5) > fmin (2) → X1 is not
        // even a candidate.
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 1.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 2.5, 9.0).unwrap(),
        ];
        let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
        assert_eq!(cands.len(), 1);
        let table = SubregionTable::build(&cands);
        let (probs, _) = exact_probabilities(&table);
        assert!((probs[0] - 1.0).abs() < 1e-9);
    }

    /// Two objects: X1 uniform [0,1], X2 uniform [0,2], q = 0.
    /// p_2 = ∫₀¹ (1/2)(1−r) dr = 1/4; p_1 = 3/4. Analytic cross-check.
    #[test]
    fn analytic_two_object_case() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(1), 0.0, 1.0).unwrap(),
            UncertainObject::uniform(ObjectId(2), 0.0, 2.0).unwrap(),
        ];
        let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let (probs, _) = exact_probabilities(&table);
        // Candidate order: both near 0 — order by near then stable; find by checking values.
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(probs.iter().any(|p| (p - 0.75).abs() < 1e-9));
        assert!(probs.iter().any(|p| (p - 0.25).abs() < 1e-9));
    }
}
