//! The public [`RTree`] type: dynamic insertion, deletion, bulk loading,
//! range search, nearest-neighbor search and the PNN candidate filter.

use crate::bulk::str_bulk_load;
use crate::geometry::Rect;
use crate::node::{Child, LeafEntry, Node, Params};
use crate::split::quadratic_split;

/// An in-memory R-tree over items of type `T` in `D` dimensions.
///
/// This is the substrate for the paper's filtering phase — the original used
/// Hadjieleftheriou's spatial index library \[18\]; this one is built from
/// scratch with Guttman quadratic splits and STR bulk loading.
#[derive(Debug)]
pub struct RTree<T, const D: usize> {
    root: Node<T, D>,
    len: usize,
    params: Params,
}

impl<T, const D: usize> Default for RTree<T, D> {
    fn default() -> Self {
        Self::new(Params::default())
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// An empty tree with the given fan-out parameters.
    pub fn new(params: Params) -> Self {
        Self {
            root: Node::empty(),
            len: 0,
            params,
        }
    }

    /// Bulk-load a packed tree (STR) from `(rect, item)` pairs.
    pub fn bulk_load(items: Vec<(Rect<D>, T)>) -> Self {
        Self::bulk_load_with(items, Params::default())
    }

    /// Bulk-load with explicit parameters.
    pub fn bulk_load_with(items: Vec<(Rect<D>, T)>, params: Params) -> Self {
        let len = items.len();
        let records = items
            .into_iter()
            .map(|(rect, item)| LeafEntry { rect, item })
            .collect();
        Self {
            root: str_bulk_load(records, &params),
            len,
            params,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Total node count (for fill-factor diagnostics).
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Root MBR, or `None` when empty.
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.root.mbr()
    }

    /// Access the root node (crate-internal: used by search modules).
    pub(crate) fn root(&self) -> &Node<T, D> {
        &self.root
    }

    /// Insert an item with its bounding rectangle.
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        let entry = LeafEntry { rect, item };
        if let Some(sibling) = insert_rec(&mut self.root, entry, &self.params) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::empty());
            let left = Child {
                rect: old_root.mbr().expect("split root is non-empty"),
                node: Box::new(old_root),
            };
            let right = Child {
                rect: sibling.mbr().expect("split sibling is non-empty"),
                node: Box::new(sibling),
            };
            self.root = Node::Internal(vec![left, right]);
        }
        self.len += 1;
    }

    /// Remove one item whose stored rect equals `rect` and for which `pred`
    /// returns true. Returns the removed item, if found.
    ///
    /// Underfull nodes along the path are dissolved and their records
    /// reinserted (Guttman's condense-tree).
    pub fn remove_one<F: FnMut(&T) -> bool>(&mut self, rect: &Rect<D>, mut pred: F) -> Option<T> {
        let mut orphans: Vec<LeafEntry<T, D>> = Vec::new();
        let removed = remove_rec(&mut self.root, rect, &mut pred, &self.params, &mut orphans);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root with a single child.
            loop {
                match &mut self.root {
                    Node::Internal(children) if children.len() == 1 => {
                        let child = children.pop().expect("one child");
                        self.root = *child.node;
                    }
                    _ => break,
                }
            }
            for orphan in orphans {
                // Reinsert orphans through the normal path (len unchanged:
                // they were never counted as removed).
                if let Some(sibling) = insert_rec(&mut self.root, orphan, &self.params) {
                    let old_root = std::mem::replace(&mut self.root, Node::empty());
                    let left = Child {
                        rect: old_root.mbr().expect("non-empty"),
                        node: Box::new(old_root),
                    };
                    let right = Child {
                        rect: sibling.mbr().expect("non-empty"),
                        node: Box::new(sibling),
                    };
                    self.root = Node::Internal(vec![left, right]);
                }
            }
        }
        removed
    }

    /// Collect references to all items whose rects intersect `query`.
    pub fn search_intersecting(&self, query: &Rect<D>) -> Vec<(&Rect<D>, &T)> {
        let mut out = Vec::new();
        search_rec(&self.root, query, &mut out);
        out
    }

    /// Visit every `(rect, item)` pair in the tree (arbitrary order).
    pub fn for_each<F: FnMut(&Rect<D>, &T)>(&self, mut f: F) {
        fn walk<T, const D: usize, F: FnMut(&Rect<D>, &T)>(node: &Node<T, D>, f: &mut F) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        f(&e.rect, &e.item);
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        walk(&c.node, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Check structural invariants (tests/debugging): child MBRs contain
    /// their subtrees, all leaves at the same depth, fill bounds respected
    /// for non-root nodes.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn check<T, const D: usize>(
            node: &Node<T, D>,
            is_root: bool,
            params: &Params,
        ) -> Result<usize, String> {
            match node {
                Node::Leaf(entries) => {
                    if !is_root && entries.len() < params.min_entries {
                        return Err(format!("leaf underfull: {}", entries.len()));
                    }
                    if entries.len() > params.max_entries {
                        return Err(format!("leaf overfull: {}", entries.len()));
                    }
                    Ok(1)
                }
                Node::Internal(children) => {
                    if children.is_empty() {
                        return Err("empty internal node".into());
                    }
                    if !is_root && children.len() < params.min_entries {
                        return Err(format!("internal underfull: {}", children.len()));
                    }
                    if children.len() > params.max_entries {
                        return Err(format!("internal overfull: {}", children.len()));
                    }
                    let mut depth = None;
                    for c in children {
                        let actual = c.node.mbr().ok_or("empty child subtree")?;
                        if !c.rect.contains_rect(&actual) {
                            return Err("cached child rect does not contain subtree".into());
                        }
                        let d = check(&c.node, false, params)?;
                        if *depth.get_or_insert(d) != d {
                            return Err("leaves at different depths".into());
                        }
                    }
                    Ok(depth.unwrap_or(0) + 1)
                }
            }
        }
        check(&self.root, true, &self.params)?;
        let records = self.root.record_count();
        if records != self.len {
            return Err(format!(
                "record count {records} disagrees with tracked len {}",
                self.len
            ));
        }
        Ok(())
    }
}

/// Recursive insert; returns a split-off sibling if this node overflowed.
fn insert_rec<T, const D: usize>(
    node: &mut Node<T, D>,
    entry: LeafEntry<T, D>,
    params: &Params,
) -> Option<Node<T, D>> {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() > params.max_entries {
                let all = std::mem::take(entries);
                let (a, b) = quadratic_split(all, params.min_entries);
                *entries = a;
                Some(Node::Leaf(b))
            } else {
                None
            }
        }
        Node::Internal(children) => {
            let idx = choose_subtree(children, &entry.rect);
            children[idx].rect = children[idx].rect.union(&entry.rect);
            if let Some(sibling) = insert_rec(&mut children[idx].node, entry, params) {
                // The split shrank the original child's extent: recompute.
                children[idx].rect = children[idx].node.mbr().expect("split child is non-empty");
                let rect = sibling.mbr().expect("split sibling is non-empty");
                children.push(Child {
                    rect,
                    node: Box::new(sibling),
                });
                if children.len() > params.max_entries {
                    let all = std::mem::take(children);
                    let (a, b) = quadratic_split(all, params.min_entries);
                    *children = a;
                    return Some(Node::Internal(b));
                }
            }
            None
        }
    }
}

/// Guttman ChooseLeaf criterion: least enlargement, ties by smallest area.
fn choose_subtree<T, const D: usize>(children: &[Child<T, D>], rect: &Rect<D>) -> usize {
    let mut best = 0;
    let mut best_growth = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let growth = c.rect.enlargement(rect);
        let area = c.rect.area();
        if growth < best_growth || (growth == best_growth && area < best_area) {
            best = i;
            best_growth = growth;
            best_area = area;
        }
    }
    best
}

fn search_rec<'a, T, const D: usize>(
    node: &'a Node<T, D>,
    query: &Rect<D>,
    out: &mut Vec<(&'a Rect<D>, &'a T)>,
) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.rect.intersects(query) {
                    out.push((&e.rect, &e.item));
                }
            }
        }
        Node::Internal(children) => {
            for c in children {
                if c.rect.intersects(query) {
                    search_rec(&c.node, query, out);
                }
            }
        }
    }
}

/// Recursive delete with condense. Returns the removed item; underfull
/// children are dissolved into `orphans`.
fn remove_rec<T, const D: usize, F: FnMut(&T) -> bool>(
    node: &mut Node<T, D>,
    rect: &Rect<D>,
    pred: &mut F,
    params: &Params,
    orphans: &mut Vec<LeafEntry<T, D>>,
) -> Option<T> {
    match node {
        Node::Leaf(entries) => {
            let pos = entries
                .iter()
                .position(|e| e.rect == *rect && pred(&e.item))?;
            Some(entries.remove(pos).item)
        }
        Node::Internal(children) => {
            for i in 0..children.len() {
                if !children[i].rect.contains_rect(rect) && !children[i].rect.intersects(rect) {
                    continue;
                }
                if let Some(item) = remove_rec(&mut children[i].node, rect, pred, params, orphans) {
                    if children[i].node.slot_count() < params.min_entries {
                        // Dissolve the underfull child; reinsert its records.
                        let child = children.swap_remove(i);
                        child.node.drain_records(orphans);
                    } else if let Some(mbr) = children[i].node.mbr() {
                        children[i].rect = mbr;
                    }
                    return Some(item);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_tree(ranges: &[(f64, f64)]) -> RTree<usize, 1> {
        let mut t = RTree::default();
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            t.insert(Rect::interval(lo, hi), i);
        }
        t
    }

    #[test]
    fn insert_and_search_small() {
        let t = interval_tree(&[(0.0, 1.0), (2.0, 3.0), (2.5, 4.0), (10.0, 12.0)]);
        assert_eq!(t.len(), 4);
        let hits: Vec<usize> = t
            .search_intersecting(&Rect::interval(2.6, 3.5))
            .into_iter()
            .map(|(_, &i)| i)
            .collect();
        let mut hits = hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn grows_through_splits_and_stays_consistent() {
        let ranges: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = (i * 37 % 1000) as f64;
                (x, x + 5.0)
            })
            .collect();
        let t = interval_tree(&ranges);
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);
        t.check_invariants().unwrap();
        // Every inserted item must be findable via its own rect.
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let hits = t.search_intersecting(&Rect::interval(lo, hi));
            assert!(hits.iter().any(|(_, &id)| id == i), "item {i} not found");
        }
    }

    #[test]
    fn bulk_load_matches_incremental_search_results() {
        let ranges: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let x = ((i * 61) % 777) as f64;
                (x, x + 3.0)
            })
            .collect();
        let incremental = interval_tree(&ranges);
        let packed = RTree::bulk_load(
            ranges
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| (Rect::interval(lo, hi), i))
                .collect(),
        );
        packed.check_invariants().err(); // packed trees may under-fill interior nodes; only check consistency below
        for q in [(0.0, 10.0), (100.0, 120.0), (770.0, 800.0), (-5.0, -1.0)] {
            let rect = Rect::interval(q.0, q.1);
            let mut a: Vec<usize> = incremental
                .search_intersecting(&rect)
                .into_iter()
                .map(|(_, &i)| i)
                .collect();
            let mut b: Vec<usize> = packed
                .search_intersecting(&rect)
                .into_iter()
                .map(|(_, &i)| i)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn remove_deletes_exactly_one_and_keeps_invariants() {
        let ranges: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, i as f64 + 1.5)).collect();
        let mut t = interval_tree(&ranges);
        for i in (0..200).step_by(3) {
            let rect = Rect::interval(i as f64, i as f64 + 1.5);
            let removed = t.remove_one(&rect, |&id| id == i);
            assert_eq!(removed, Some(i));
        }
        assert_eq!(t.len(), 200 - 67);
        t.check_invariants().unwrap();
        // Removed items are gone; survivors remain.
        for i in 0..200 {
            let rect = Rect::interval(i as f64, i as f64 + 1.5);
            let found = t.search_intersecting(&rect).iter().any(|(_, &id)| id == i);
            assert_eq!(found, i % 3 != 0, "item {i}");
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = interval_tree(&[(0.0, 1.0)]);
        assert_eq!(t.remove_one(&Rect::interval(5.0, 6.0), |_| true), None);
        assert_eq!(t.remove_one(&Rect::interval(0.0, 1.0), |_| false), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree<usize, 1> = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.mbr(), None);
        assert!(t.search_intersecting(&Rect::interval(0.0, 1.0)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn for_each_visits_everything() {
        let t = interval_tree(&[(0.0, 1.0), (5.0, 6.0), (9.0, 11.0)]);
        let mut seen = Vec::new();
        t.for_each(|_, &i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
