//! The shard process: one [`QueryServer`] hosting one slab's flat model,
//! answering wire requests over a socket.
//!
//! A shard server is deliberately dumb: it runs the **filter phase
//! only** and ships the surviving candidates' distance histograms back
//! raw. Verify/refine — the expensive, configuration-sensitive part of
//! the pipeline — runs exactly once, router-side, over the merged
//! candidate set, which is what makes the routed answer provably
//! identical to the single-process one (see the crate docs).
//!
//! Update bursts ride the hosted server's coalesced write lane
//! ([`QueryServer::queue_insert`] / [`queue_remove`](QueryServer::queue_remove),
//! then one [`flush_writes`](QueryServer::flush_writes) per burst frame),
//! so a burst of `n` ops publishes one snapshot swap, mirroring the
//! single-process serve loop. When a storage backend is attached the
//! same flush appends the burst to the shard's own write-ahead journal,
//! and every [`ShardServeConfig::checkpoint_every`] bursts the shard
//! checkpoints and truncates — which is exactly why a killed shard
//! process restarts from its `--data-dir` without any global rebuild.
//!
//! Robustness contract (fixture-tested): malformed frames and requests
//! never panic the process. A frame-level error (bad checksum, oversized
//! prefix, torn stream) desynchronizes the byte stream, so the
//! connection is dropped after a best-effort typed
//! [`Response::Error`]; a message-level error (unknown tag, bad body,
//! wrong dimension) leaves framing intact, so the server replies with a
//! typed error and keeps the connection.

use std::io::BufReader;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cpnn_core::{QueryServer, ServerStats};

use crate::net::{ShardAddr, ShardListener, ShardStream};
use crate::wire::{read_frame, write_frame, Request, Response, ShardProcessStats, ShardStatus};
use crate::RoutedModel;

/// Tuning for a shard process's serve loop.
#[derive(Debug, Clone, Copy)]
pub struct ShardServeConfig {
    /// Checkpoint (and truncate the journal) every this many update
    /// bursts, `0` = never — matching the single-process serve loop's
    /// `--checkpoint-every`. No-op unless a storage backend is attached
    /// to the hosted server.
    pub checkpoint_every: u64,
}

impl Default for ShardServeConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 8,
        }
    }
}

/// Everything the per-connection handler threads share.
struct ServeShared<M: RoutedModel> {
    server: Arc<QueryServer<M>>,
    cfg: ShardServeConfig,
    /// Filter requests answered over the wire (reported by `Stats`).
    filters: AtomicU64,
    /// Update bursts since the last checkpoint.
    bursts_since_checkpoint: AtomicU64,
    stop: AtomicBool,
    /// Accepted connections, kept as independently owned handles so
    /// teardown (and crash simulation) can sever them mid-read.
    conns: Mutex<Vec<ShardStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running shard server: the hosted [`QueryServer`], its listener's
/// accept thread, and one handler thread per accepted connection.
///
/// [`kill`](Self::kill) tears the process down *abruptly* — sockets
/// severed mid-conversation, no farewell frames — which is how the
/// fault-injection tests simulate a crashed shard without leaving the
/// test process. [`shutdown`](Self::shutdown) is the graceful twin.
pub struct ShardServerHandle<M: RoutedModel> {
    shared: Arc<ServeShared<M>>,
    addr: ShardAddr,
    accept: Option<JoinHandle<()>>,
}

impl<M: RoutedModel> ShardServerHandle<M> {
    /// Serve `server` on `listener` (already bound). Returns once the
    /// accept thread is running; the handle's [`addr`](Self::addr) is
    /// the listener's resolved address (ephemeral TCP ports resolved).
    pub fn spawn(
        server: Arc<QueryServer<M>>,
        listener: ShardListener,
        cfg: ShardServeConfig,
    ) -> std::io::Result<Self> {
        let addr = listener.bound_addr()?;
        let shared = Arc::new(ServeShared {
            server,
            cfg,
            filters: AtomicU64::new(0),
            bursts_since_checkpoint: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("cpnn-shard-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The address the shard is serving on.
    pub fn addr(&self) -> &ShardAddr {
        &self.addr
    }

    /// The hosted server (for attaching storage, checkpointing, or
    /// inspecting state from tests).
    pub fn server(&self) -> &Arc<QueryServer<M>> {
        &self.shared.server
    }

    /// Counters: wire filters served plus the hosted server's own.
    pub fn stats(&self) -> ShardProcessStats {
        ShardProcessStats {
            filters: self.shared.filters.load(Ordering::Relaxed),
            server: self.shared.server.stats(),
        }
    }

    /// Simulate a crash: stop accepting and sever every live connection
    /// mid-read, with no farewell frames. Peers observe a torn stream /
    /// connection reset — exactly what a `kill -9` of a real shard
    /// process produces. The hosted server is dropped with the handle;
    /// its durable state (checkpoint + journal in the backend's
    /// `--data-dir`) is whatever the crash moment left, ready for
    /// recovery by a restarted shard.
    pub fn kill(mut self) {
        self.teardown();
    }

    /// Graceful stop: stop accepting, sever connections, join handler
    /// threads, and report final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.teardown();
        self.shared.server.stats()
    }

    fn teardown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let conns = self.shared.conns.lock().expect("conn list unpoisoned");
            for conn in conns.iter() {
                let _ = conn.shutdown_both();
            }
        }
        // Unblock the accept thread (blocking accept has no timeout on
        // either transport): one throwaway dial.
        let _ = ShardStream::connect(&self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().expect("handler list"));
        for h in handlers {
            let _ = h.join();
        }
        if let ShardAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl<M: RoutedModel> Drop for ShardServerHandle<M> {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.teardown();
        }
    }
}

fn accept_loop<M: RoutedModel>(listener: ShardListener, shared: Arc<ServeShared<M>>) {
    loop {
        let stream = match listener.accept() {
            _ if shared.stop.load(Ordering::SeqCst) => return,
            Ok(s) => s,
            // Transient accept failures (e.g. the peer vanished between
            // SYN and accept) must not kill the shard.
            Err(_) => continue,
        };
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        shared
            .conns
            .lock()
            .expect("conn list unpoisoned")
            .push(clone);
        let conn_shared = Arc::clone(&shared);
        let handler = std::thread::Builder::new()
            .name("cpnn-shard-conn".into())
            .spawn(move || handle_conn(stream, conn_shared));
        if let Ok(h) = handler {
            shared
                .handlers
                .lock()
                .expect("handler list unpoisoned")
                .push(h);
        }
    }
}

fn handle_conn<M: RoutedModel>(stream: ShardStream, shared: Arc<ServeShared<M>>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    serve_conn(&mut reader, &mut writer, &shared);
    // Actively shut the socket down (not just drop this clone): teardown's
    // tracking clone still holds the fd, and without a shutdown the peer
    // would never see EOF on a dropped connection.
    let _ = writer.shutdown_both();
}

fn serve_conn<M: RoutedModel>(
    reader: &mut BufReader<ShardStream>,
    writer: &mut ShardStream,
    shared: &ServeShared<M>,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(reader) {
            Ok(Some(p)) => p,
            // Clean EOF at a frame boundary: the peer hung up.
            Ok(None) => return,
            Err(e) => {
                // A structurally broken frame desynchronizes the stream:
                // send a best-effort typed error, then drop the
                // connection. Torn streams and transport errors get no
                // farewell (nobody is listening).
                if !e.is_disconnect() {
                    let reply = Response::Error(format!("dropping connection: {e}"));
                    let _ = write_frame(writer, &reply.encode());
                }
                return;
            }
        };
        let reply = match Request::<M>::decode(&payload) {
            // Message-level errors leave framing intact: reply typed,
            // keep serving this connection.
            Err(e) => Response::Error(format!("bad request: {e}")),
            Ok(req) => respond(shared, req),
        };
        if write_frame(writer, &reply.encode()).is_err() {
            return;
        }
    }
}

fn status<M: RoutedModel>(server: &QueryServer<M>) -> ShardStatus {
    let snap = server.snapshot();
    ShardStatus {
        version: snap.version,
        objects: snap.model.total_objects() as u64,
        extent: snap.model.model_extent(),
    }
}

fn respond<M: RoutedModel>(shared: &ServeShared<M>, req: Request<M>) -> Response {
    let server = &shared.server;
    match req {
        // Request::decode already validated magic, protocol version, and
        // dimension — a decoded Hello is an accepted handshake.
        Request::Hello => Response::Hello(status(server)),
        Request::Filter { coords, k } => {
            shared.filters.fetch_add(1, Ordering::Relaxed);
            let Some(q) = M::query_from_coords(&coords) else {
                return Response::Error(format!(
                    "query has {} coordinates, shard is {}-dimensional",
                    coords.len(),
                    M::DIM
                ));
            };
            let snap = server.snapshot();
            match snap
                .model
                .check_query(&q)
                .and_then(|_| snap.model.filter(&q, k as usize))
            {
                Ok(filtered) => Response::Candidates {
                    version: snap.version,
                    items: filtered.items,
                },
                Err(e) => Response::Error(format!("filter failed: {e}")),
            }
        }
        Request::Update(ops) => {
            let tickets: Vec<_> = ops
                .into_iter()
                .map(|op| match op {
                    crate::wire::UpdateOp::Insert(object) => server.queue_insert(object),
                    crate::wire::UpdateOp::Remove(id) => server.queue_remove(id),
                })
                .collect();
            server.flush_writes();
            let outcomes = tickets
                .into_iter()
                .map(|t| t.wait().result.map_err(|e| e.to_string()))
                .collect();
            let since = shared
                .bursts_since_checkpoint
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            if shared.cfg.checkpoint_every > 0 && since >= shared.cfg.checkpoint_every {
                shared.bursts_since_checkpoint.store(0, Ordering::Relaxed);
                // Best-effort: a failed checkpoint leaves the journal
                // long but the reply correct.
                let _ = server.checkpoint_now();
            }
            Response::Update {
                status: status(server),
                outcomes,
            }
        }
        Request::Stats => Response::Stats(ShardProcessStats {
            filters: shared.filters.load(Ordering::Relaxed),
            server: server.stats(),
        }),
        Request::Ids => {
            let snap = server.snapshot();
            let ids = snap
                .model
                .shard_objects()
                .iter()
                .map(|o| M::object_id(o).0)
                .collect();
            Response::Ids(ids)
        }
    }
}
