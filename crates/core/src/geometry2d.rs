//! 2-D geometry for rectangular uncertainty regions.
//!
//! A uniform pdf over an axis-aligned rectangle has distance cdf
//! `D(r) = area(disk(q, r) ∩ rect) / area(rect)` — the rectangle analogue
//! of the circular lens of [`crate::distance2d`]. The disk–rectangle
//! intersection area is evaluated by integrating the chord-overlap length
//! along one axis with the crate's own adaptive quadrature, which keeps the
//! code simple and is exact to the integration tolerance (the cdf is then
//! discretized anyway).

use cpnn_pdf::integrate::adaptive_simpson;

/// An axis-aligned rectangle `[min, max]` in 2-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect2 {
    /// Lower-left corner.
    pub min: [f64; 2],
    /// Upper-right corner.
    pub max: [f64; 2],
}

impl Rect2 {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics on inverted or non-finite rectangles.
    pub fn new(min: [f64; 2], max: [f64; 2]) -> Self {
        for d in 0..2 {
            assert!(
                min[d].is_finite() && max[d].is_finite() && min[d] < max[d],
                "invalid rectangle on axis {d}: [{}, {}]",
                min[d],
                max[d]
            );
        }
        Self { min, max }
    }

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        (self.max[0] - self.min[0]) * (self.max[1] - self.min[1])
    }

    /// Minimum distance from `q` to the rectangle (0 inside).
    pub fn near(&self, q: [f64; 2]) -> f64 {
        let mut s = 0.0;
        for (d, &x) in q.iter().enumerate() {
            let diff = if x < self.min[d] {
                self.min[d] - x
            } else if x > self.max[d] {
                x - self.max[d]
            } else {
                0.0
            };
            s += diff * diff;
        }
        s.sqrt()
    }

    /// Maximum distance from `q` to the rectangle (farthest corner).
    pub fn far(&self, q: [f64; 2]) -> f64 {
        let mut s = 0.0;
        for (d, &x) in q.iter().enumerate() {
            let diff = (x - self.min[d]).abs().max((x - self.max[d]).abs());
            s += diff * diff;
        }
        s.sqrt()
    }

    /// Center point.
    pub fn center(&self) -> [f64; 2] {
        [
            0.5 * (self.min[0] + self.max[0]),
            0.5 * (self.min[1] + self.max[1]),
        ]
    }
}

/// Area of `disk(q, r) ∩ rect`.
///
/// Integrates, over `y` in the rectangle's vertical overlap with the disk,
/// the horizontal chord-overlap length
/// `max(0, min(x_hi, q_x + w(y)) − max(x_lo, q_x − w(y)))` with
/// `w(y) = √(r² − (y − q_y)²)`.
pub fn disk_rect_intersection_area(q: [f64; 2], r: f64, rect: &Rect2) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let y_lo = rect.min[1].max(q[1] - r);
    let y_hi = rect.max[1].min(q[1] + r);
    if y_lo >= y_hi {
        return 0.0;
    }
    let chord = |y: f64| {
        let dy = y - q[1];
        let w2 = r * r - dy * dy;
        if w2 <= 0.0 {
            return 0.0;
        }
        let w = w2.sqrt();
        let lo = rect.min[0].max(q[0] - w);
        let hi = rect.max[0].min(q[0] + w);
        (hi - lo).max(0.0)
    };
    adaptive_simpson(chord, y_lo, y_hi, 1e-10).max(0.0)
}

/// Distance cdf of a uniform rectangle from `q`:
/// `Pr[|X − q| ≤ r] = area(disk(q, r) ∩ rect) / area(rect)`.
pub fn rect_distance_cdf(q: [f64; 2], rect: &Rect2, r: f64) -> f64 {
    (disk_rect_intersection_area(q, r, rect) / rect.area()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    #[should_panic(expected = "invalid rectangle")]
    fn inverted_rect_panics() {
        let _ = Rect2::new([1.0, 0.0], [0.0, 1.0]);
    }

    #[test]
    fn near_far_distances() {
        let rect = Rect2::new([1.0, 1.0], [3.0, 2.0]);
        // Query inside.
        assert_eq!(rect.near([2.0, 1.5]), 0.0);
        // Query left: near is horizontal gap.
        assert!((rect.near([0.0, 1.5]) - 1.0).abs() < 1e-12);
        // Far: farthest corner (3, 2) from (0, 0): √13.
        assert!((rect.far([0.0, 0.0]) - 13f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn disk_containing_rect_gives_rect_area() {
        let rect = Rect2::new([-1.0, -1.0], [1.0, 1.0]);
        let a = disk_rect_intersection_area([0.0, 0.0], 10.0, &rect);
        assert!((a - 4.0).abs() < 1e-7, "a = {a}");
    }

    #[test]
    fn rect_containing_disk_gives_disk_area() {
        let rect = Rect2::new([-10.0, -10.0], [10.0, 10.0]);
        let a = disk_rect_intersection_area([0.0, 0.0], 2.0, &rect);
        assert!((a - 4.0 * PI).abs() < 1e-6, "a = {a}");
    }

    #[test]
    fn disjoint_disk_gives_zero() {
        let rect = Rect2::new([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(disk_rect_intersection_area([0.0, 0.0], 1.0, &rect), 0.0);
    }

    #[test]
    fn half_plane_case() {
        // Disk centered on a rect edge that spans far beyond it: half disk.
        let rect = Rect2::new([0.0, -10.0], [10.0, 10.0]);
        let a = disk_rect_intersection_area([0.0, 0.0], 1.0, &rect);
        assert!((a - PI / 2.0).abs() < 1e-6, "a = {a}");
    }

    #[test]
    fn quarter_disk_at_corner() {
        let rect = Rect2::new([0.0, 0.0], [10.0, 10.0]);
        let a = disk_rect_intersection_area([0.0, 0.0], 2.0, &rect);
        assert!((a - PI).abs() < 1e-6, "a = {a}");
    }

    #[test]
    fn cdf_monotone_and_normalized() {
        let rect = Rect2::new([2.0, 3.0], [5.0, 4.0]);
        let q = [0.0, 0.0];
        let far = rect.far(q);
        let mut prev = 0.0;
        for i in 0..=30 {
            let r = far * i as f64 / 30.0;
            let c = rect_distance_cdf(q, &rect, r);
            assert!(c >= prev - 1e-12, "r = {r}");
            prev = c;
        }
        assert!((rect_distance_cdf(q, &rect, far) - 1.0).abs() < 1e-7);
        assert_eq!(rect_distance_cdf(q, &rect, rect.near(q) * 0.99), 0.0);
    }
}
