//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the (small) `rand` 0.8 API surface the repository uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic given a seed, which is all the experiment harness and the
//! Monte-Carlo baselines require. Swap back to the real crate by replacing
//! the `[patch]`-style path dependency in each manifest.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s (and `u32`s derived
/// from them). Object-safe, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution by
/// [`Rng::gen`] (`f64` in `[0, 1)`, full-range integers, `bool`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types supporting uniform sampling from a half-open `lo..hi` range via
/// [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draw uniformly from `[range.start, range.end)`. Panics when empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        let v = range.start + u * (range.end - range.start);
        // Guard against round-up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty integer sample range");
                let width = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift uniform mapping (bias < 2^-64: irrelevant
                // for test workload generation).
                let v = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                range.start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32, u16, u8);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64. Statistically strong, 4×64-bit state,
    /// and — the property everything here relies on — fully deterministic
    /// per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of U[0,1) over 10k draws: within 0.02 of 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&x));
            let n = rng.gen_range(2usize..5);
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        // The Pdf trait samples through `&mut dyn RngCore`.
        let mut rng = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut rng;
        let u: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&u));
    }
}
