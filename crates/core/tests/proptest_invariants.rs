//! Property tests for the paper's central soundness invariants, on random
//! workloads:
//!
//! 1. every verifier's bound always contains the exact qualification
//!    probability (the whole C-PNN framework rests on this);
//! 2. qualification probabilities form a distribution (sum to one);
//! 3. all evaluation strategies return the same C-PNN answer set when the
//!    tolerance is zero;
//! 4. Basic (whole-range adaptive integration) agrees with the subregion
//!    decomposition;
//! 5. verifier bounds only tighten as the pipeline progresses.

use cpnn_core::classify::Label;
use cpnn_core::exact::{basic_probabilities, exact_probabilities};
use cpnn_core::framework::{classify_all, default_verifiers};
use cpnn_core::verifiers::VerificationState;
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    CandidateSet, Classifier, CpnnQuery, ObjectId, SubregionTable, UncertainDb, UncertainObject,
};
use proptest::prelude::*;

/// Random mix of uniform and 2–4-bar histogram objects on [-50, 50].
fn objects_strategy(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    let one = (
        -50.0f64..50.0,
        0.5f64..20.0,
        prop::collection::vec(0.05f64..1.0, 1..4),
    );
    prop::collection::vec(one, 2..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, width, bars))| {
                if bars.len() == 1 {
                    UncertainObject::uniform(ObjectId(i as u64), lo, lo + width).unwrap()
                } else {
                    let n = bars.len();
                    let edges: Vec<f64> =
                        (0..=n).map(|k| lo + width * k as f64 / n as f64).collect();
                    let pdf = cpnn_pdf::HistogramPdf::from_masses(edges, bars).unwrap();
                    UncertainObject::from_histogram(ObjectId(i as u64), pdf)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn verifier_bounds_always_contain_exact_probability(
        objects in objects_strategy(14),
        q in -60.0f64..60.0,
    ) {
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let (exact, _) = exact_probabilities(&table);

        let mut state = VerificationState::new(&table);
        for v in default_verifiers() {
            v.apply(&table, &mut state);
            for (i, p) in exact.iter().enumerate() {
                prop_assert!(
                    state.bounds[i].contains(*p, 1e-7),
                    "{} violated for object {i}: exact {p}, bound {}",
                    v.name(),
                    state.bounds[i]
                );
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one(objects in objects_strategy(12), q in -60.0f64..60.0) {
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let (exact, _) = exact_probabilities(&table);
        let total: f64 = exact.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn strategies_agree_on_answers(
        objects in objects_strategy(10),
        q in -60.0f64..60.0,
        threshold in 0.05f64..0.95,
    ) {
        let db = UncertainDb::build(objects).unwrap();
        let query = CpnnQuery::new(q, threshold, 0.0);
        let basic = db.cpnn(&query, EvalStrategy::Basic).unwrap();
        let refine = db.cpnn(&query, EvalStrategy::RefineOnly).unwrap();
        let vr = db.cpnn(&query, EvalStrategy::Verified).unwrap();
        // Guard against knife-edge thresholds where integration tolerance
        // legitimately flips an answer: skip cases with a probability within
        // 1e-4 of the threshold.
        let knife_edge = basic
            .reports
            .iter()
            .any(|r| (r.bound.lo() - threshold).abs() < 1e-4);
        prop_assume!(!knife_edge);
        prop_assert_eq!(&basic.answers, &refine.answers);
        prop_assert_eq!(&basic.answers, &vr.answers);
    }

    #[test]
    fn basic_matches_subregion_decomposition(
        objects in objects_strategy(10),
        q in -60.0f64..60.0,
    ) {
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let (subregion, _) = exact_probabilities(&table);
        // Basic's accuracy is bounded by its integration tolerance on a
        // discontinuous integrand — the paper's own caveat about [5]/[9]:
        // "the accuracy of the answer probabilities depends on the precision
        // of the integration or number of samples used".
        let (basic, _) = basic_probabilities(&cands, 1e-9);
        for (i, (a, b)) in basic.iter().zip(&subregion).enumerate() {
            prop_assert!((a - b).abs() < 2e-4, "object {i}: basic {a} vs subregion {b}");
        }
    }

    #[test]
    fn bounds_tighten_monotonically(
        objects in objects_strategy(12),
        q in -60.0f64..60.0,
    ) {
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        let mut prev: Vec<(f64, f64)> =
            state.bounds.iter().map(|b| (b.lo(), b.hi())).collect();
        for v in default_verifiers() {
            v.apply(&table, &mut state);
            for (i, b) in state.bounds.iter().enumerate() {
                prop_assert!(b.lo() >= prev[i].0 - 1e-12);
                prop_assert!(b.hi() <= prev[i].1 + 1e-12);
            }
            prev = state.bounds.iter().map(|b| (b.lo(), b.hi())).collect();
        }
    }

    #[test]
    fn subregion_table_is_a_valid_decomposition(
        objects in objects_strategy(14),
        q in -60.0f64..60.0,
    ) {
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let l = table.left_regions();
        // End-points strictly increasing; last = fmin = horizon.
        for w in table.endpoints().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!((table.fmin() - cands.horizon()).abs() < 1e-9);
        for i in 0..table.n_objects() {
            // Masses + rightmost form a distribution.
            let total: f64 = (0..l).map(|j| table.mass(i, j)).sum::<f64>() + table.rightmost(i);
            prop_assert!((total - 1.0).abs() < 1e-6, "object {i}: {total}");
            // cdf at end-points is monotone and consistent with masses.
            for j in 0..l {
                prop_assert!(table.cdf_at(i, j + 1) >= table.cdf_at(i, j) - 1e-12);
                prop_assert!(
                    (table.cdf_at(i, j + 1) - table.cdf_at(i, j) - table.mass(i, j)).abs()
                        < 1e-9
                );
            }
        }
        // Counts match the mass matrix.
        for j in 0..l {
            let want = (0..table.n_objects())
                .filter(|&i| table.mass(i, j) > 1e-12)
                .count();
            prop_assert_eq!(table.count(j), want);
        }
    }

    #[test]
    fn classified_objects_are_final(
        objects in objects_strategy(10),
        q in -60.0f64..60.0,
        threshold in 0.1f64..0.9,
    ) {
        // Once a verifier classifies an object, refinement must agree:
        // Fail objects really are below P, Satisfy objects really clear it
        // (up to tolerance = 0 semantics on the exact value).
        let cands = CandidateSet::build(&objects, q, 0).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let (exact, _) = exact_probabilities(&table);
        let classifier = Classifier::new(threshold, 0.0).unwrap();
        let mut state = VerificationState::new(&table);
        for v in default_verifiers() {
            v.apply(&table, &mut state);
            classify_all(&classifier, &mut state);
        }
        for (i, p) in exact.iter().enumerate() {
            match state.labels[i] {
                Label::Fail => prop_assert!(*p < threshold + 1e-7, "object {i}: {p}"),
                Label::Satisfy => prop_assert!(*p >= threshold - 1e-7, "object {i}: {p}"),
                Label::Unknown => {}
            }
        }
    }
}
