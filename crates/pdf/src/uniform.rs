//! Uniform uncertainty pdf — the distribution used for the paper's Long
//! Beach experiments ("the 53,144 intervals … are treated as uncertainty
//! regions with uniform pdfs", Sec. V-A).

use crate::error::PdfError;
use crate::traits::Pdf;
use crate::Result;

/// A uniform distribution on the closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformPdf {
    lo: f64,
    hi: f64,
}

impl UniformPdf {
    /// Create a uniform pdf on `[lo, hi]`. Fails if the region is empty,
    /// inverted, or non-finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(PdfError::EmptyRegion { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Lower end of the region.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper end of the region.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Pdf for UniformPdf {
    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn density(&self, x: f64) -> f64 {
        if x >= self.lo && x <= self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.lo + p.clamp(0.0, 1.0) * (self.hi - self.lo)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_region() {
        assert!(UniformPdf::new(0.0, 1.0).is_ok());
        assert!(UniformPdf::new(1.0, 1.0).is_err());
        assert!(UniformPdf::new(2.0, 1.0).is_err());
        assert!(UniformPdf::new(f64::NAN, 1.0).is_err());
        assert!(UniformPdf::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn density_and_cdf_shape() {
        let u = UniformPdf::new(2.0, 6.0).unwrap();
        assert_eq!(u.density(1.9), 0.0);
        assert_eq!(u.density(4.0), 0.25);
        assert_eq!(u.density(6.1), 0.0);
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.cdf(6.0), 1.0);
        assert_eq!(u.cdf(100.0), 1.0);
    }

    #[test]
    fn moments_are_exact() {
        let u = UniformPdf::new(-1.0, 3.0).unwrap();
        assert!((u.mean() - 1.0).abs() < 1e-15);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let u = UniformPdf::new(10.0, 20.0).unwrap();
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!((u.cdf(u.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_region_and_cover_it() {
        let u = UniformPdf::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x = u.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            mean += x;
        }
        mean /= N as f64;
        assert!((mean - 0.5).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    fn mass_between_is_proportional_to_length() {
        let u = UniformPdf::new(0.0, 10.0).unwrap();
        assert!((u.mass_between(2.0, 4.5) - 0.25).abs() < 1e-15);
        assert_eq!(u.mass_between(5.0, 5.0), 0.0);
        assert_eq!(u.mass_between(7.0, 3.0), 0.0);
    }
}
