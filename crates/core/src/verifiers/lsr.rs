//! The Lower-Subregion (L-SR) verifier (paper Sec. IV-C, Lemma 2).
//!
//! For object `i` with `R_i ∈ S_j`:
//!
//! * `Pr[E]` — the probability every *other* object lies at distance ≥ `e_j`
//!   — is exactly `Π_{k≠i} (1 − D_k(e_j))`;
//! * given `E`, at most `c_j − 1` other objects can share `S_j` with `i`,
//!   and conditioned on the count they are exchangeable (each distance pdf
//!   is constant inside a subregion), so `Pr[N | E] ≥ 1/c_j` (Lemma 3).
//!
//! Hence `q_ij.l = (1/c_j) · Π_{k≠i}(1 − D_k(e_j))` and
//! `p_i.l = Σ_j s_ij · q_ij.l` (Eq. 4). Cost: `O(|C|·M)` using exclude-one
//! products (the paper's `Y_j` trick, Eqs. 2–3).
//!
//! Note the product here runs over **all** `k ≠ i`: under the paper's
//! assumption (pdf non-zero throughout `U_k`) the extra factors are exactly
//! 1, and with zero-density histogram bars the full product is still a valid
//! (if occasionally looser) lower bound: extra factors in `[0, 1]` can
//! only shrink the product, never overstate `p_i.l`.

use crate::classify::Label;
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{VerificationState, Verifier};

/// The L-SR verifier. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerSubregion;

impl Verifier for LowerSubregion {
    fn name(&self) -> &'static str {
        "L-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let shared = state.kernel.try_shared_products(table);
        // Labels are fixed for the whole pass, so decide once whether
        // whole-column vector staging pays: it computes q for *every* row,
        // where the fused scalar path only touches the unlabeled ones. Both
        // evaluate the identical expression (`fill_excl_scaled_scalar`'s),
        // so the choice is invisible in the output.
        let active = state
            .labels
            .iter()
            .filter(|&&lb| lb == Label::Unknown)
            .count();
        let stage = 2 * active >= n;
        for j in 0..l {
            let cj = table.count(j);
            if cj == 0 {
                continue;
            }
            if !shared {
                state.kernel.excl.recompute_survival(table.cdf_col(j));
            }
            let inv_cj = 1.0 / cj as f64;
            let mass = table.mass_col(j);
            if stage {
                // Stage the whole column through the vector kernel, then
                // apply with the scalar label/mass gates.
                state.kernel.stage_lsr(n, shared, j, inv_cj);
                for (i, &m) in mass.iter().enumerate() {
                    if state.labels[i] != Label::Unknown || m <= MASS_EPS {
                        continue;
                    }
                    let q = state.kernel.q_col[i];
                    let cell = &mut state.qij_lo[i * l + j];
                    if q > *cell {
                        *cell = q;
                    }
                }
            } else {
                let st = &mut *state;
                let (pref, suff) = st.kernel.col_products(shared, j);
                for i in 0..n {
                    if st.labels[i] != Label::Unknown || mass[i] <= MASS_EPS {
                        continue;
                    }
                    let q = (pref[i] * suff[i + 1] * inv_cj).clamp(0.0, 1.0);
                    let cell = &mut st.qij_lo[i * l + j];
                    if q > *cell {
                        *cell = q;
                    }
                }
            }
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig7_exact, fig7_scenario};

    #[test]
    fn lsr_lower_bounds_match_hand_computation() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut state);
        // Hand-computed in testutil docs.
        let want = [0.348_958_333_333_333_3, 0.28125, 0.04375];
        for (i, w) in want.iter().enumerate() {
            assert!(
                (state.bounds[i].lo() - w).abs() < 1e-12,
                "object {i}: {} vs {w}",
                state.bounds[i].lo()
            );
        }
    }

    #[test]
    fn lsr_per_subregion_values() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut state);
        let l = table.left_regions();
        // q_11.l = 1 (c_1 = 1, no competitor mass before e_1).
        assert!((state.qij_lo[0] - 1.0).abs() < 1e-12);
        // q_12.l = ½·(1−0)(1−0) = 0.5
        assert!((state.qij_lo[1] - 0.5).abs() < 1e-12);
        // q_23.l = ½·(1−0.3)(1−0) = 0.35 (object index 1, region 2).
        assert!((state.qij_lo[l + 2] - 0.35).abs() < 1e-12);
        // q_34.l = ⅓·(1−0.475)(1−0.5) = 0.0875 (object 2, region 3).
        assert!((state.qij_lo[2 * l + 3] - 0.0875).abs() < 1e-12);
    }

    #[test]
    fn lsr_lower_bound_never_exceeds_exact() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut state);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(
                state.bounds[i].lo() <= p + 1e-9,
                "object {i}: lower {} > exact {p}",
                state.bounds[i].lo()
            );
        }
    }

    #[test]
    fn lsr_single_candidate_proves_certainty() {
        let objects =
            vec![
                crate::object::UncertainObject::uniform(crate::object::ObjectId(0), 1.0, 2.0)
                    .unwrap(),
            ];
        let cands = crate::candidate::CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut state);
        assert!((state.bounds[0].lo() - 1.0).abs() < 1e-12);
    }
}
