//! Asynchronous query serving: a long-lived worker pool with
//! snapshot-swap updates.
//!
//! [`crate::batch::BatchExecutor`] answers a *batch* the caller assembled
//! up front; a standing service (the moving-object workloads of the
//! related literature, and the paper's own interactive-use motivation,
//! Sec. I) instead absorbs a continuous query *stream* while the
//! underlying uncertain objects change. [`QueryServer`] provides exactly
//! that on plain `std` primitives (no external runtime):
//!
//! * **submission queue** — callers [`submit`](QueryServer::submit)
//!   queries one at a time (or in micro-batches via
//!   [`submit_batch`](QueryServer::submit_batch)) into an `std::mpsc`
//!   channel and receive a [`Ticket`] that resolves to the result through
//!   a per-request response channel — no up-front batching;
//! * **persistent workers** — `threads` long-lived `std::thread` workers
//!   drain the queue, each owning a [`QueryScratch`] so steady-state
//!   throughput matches the batch executor (same reuse of
//!   verification/refinement buffers across queries);
//! * **snapshot-swap updates** — the database lives behind an [`Arc`] in
//!   a versioned [`Snapshot`]. Writers never mutate it in place: an
//!   [`update`](QueryServer::update) builds a *new* model and swaps the
//!   `Arc` atomically. For any [`CowModel`](crate::store::CowModel) (the 1-D/2-D databases and
//!   [`ShardedDb`]) the successor is a **path copy** —
//!   [`QueryServer::insert`] / [`QueryServer::remove`] are O(log n)
//!   structural edits, never rebuilds. A worker pins the snapshot it
//!   dequeued a job with, so every response is evaluated against exactly
//!   one consistent database version — reads never block on writes and
//!   never observe a half-applied update (property-tested in
//!   `tests/proptest_server.rs`).
//! * **write-coalescing lane** — bursty writers enqueue updates without
//!   publishing ([`queue_insert`](QueryServer::queue_insert) /
//!   [`queue_remove`](QueryServer::queue_remove), each returning a
//!   [`Ticket`]); [`flush_writes`](QueryServer::flush_writes) drains the
//!   whole burst into **one** snapshot publish — one version bump, one
//!   cache-invalidation pass, N applied updates. Per-op outcomes resolve
//!   through the tickets at flush time.
//! * **incremental cache invalidation** — every publish records the
//!   regions it touched in a bounded journal; workers re-pinning onto a
//!   newer snapshot drop only the cached verification state whose
//!   candidate horizon intersects those regions
//!   ([`crate::cache::VerifyCache::advance_version`]) instead of clearing
//!   their whole cache.
//! * **shared cache tier** — when the config enables both cache knobs,
//!   all workers share one [`crate::cache::SharedVerifyCache`] L2: a
//!   local miss consults it, a local fill publishes upward, so a query
//!   warmed by one worker hits on every worker. Publishes fan the same
//!   region-scoped invalidation out to every tier segment *before* the
//!   new snapshot becomes visible.
//! * **durability (opt-in)** — with a [`crate::storage::StorageBackend`]
//!   [attached](QueryServer::attach_storage), every publish is made
//!   durable **before** it becomes visible: coalesced bursts append one
//!   write-ahead journal record each, arbitrary
//!   [`update`](QueryServer::update) closures (unjournalable footprint)
//!   checkpoint the full successor model, and
//!   [`checkpoint_now`](QueryServer::checkpoint_now) truncates the
//!   journal on demand. A server restarted from
//!   [`crate::storage::FileBackend::recover`] resumes via
//!   [`start_at`](QueryServer::start_at) with the recovered version, so
//!   clients see one uninterrupted citation sequence across the crash.
//!
//! Results for a given snapshot version are bitwise identical to a
//! sequential [`crate::pipeline::cpnn`] run at any thread count: each
//! query's evaluation (including Monte-Carlo seeding) is deterministic
//! and independent.
//!
//! # Example
//!
//! ```
//! use cpnn_core::server::QueryServer;
//! use cpnn_core::{
//!     CpnnQuery, ObjectId, PipelineConfig, QuerySpec, Strategy, UncertainDb, UncertainObject,
//! };
//!
//! let db = UncertainDb::build(vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
//! ])
//! .unwrap();
//! let server = QueryServer::start(db, 2, PipelineConfig::default());
//!
//! // Stream queries; each ticket resolves independently.
//! let ticket = server.submit(0.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified));
//! let served = ticket.wait();
//! assert_eq!(served.result.unwrap().answers, vec![ObjectId(1)]);
//! assert_eq!(served.snapshot_version, 0);
//!
//! // Updates swap in a new snapshot; later queries see the new version.
//! let snap = server
//!     .insert(UncertainObject::uniform(ObjectId(3), 0.1, 0.2).unwrap())
//!     .unwrap();
//! assert_eq!(snap.version, 1);
//! let served = server
//!     .submit(0.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified))
//!     .wait();
//! assert_eq!(served.snapshot_version, 1);
//! assert_eq!(served.result.unwrap().answers, vec![ObjectId(3)]);
//! let stats = server.shutdown();
//! assert_eq!(stats.served, 2);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::cache::SharedVerifyCache;
use crate::error::CoreError;
use crate::error::Result;
use crate::object::ObjectId;
use crate::persist::PersistentModel;
use crate::pipeline::{
    cpnn_with, CpnnResult, DistanceModel, PipelineConfig, QueryScratch, QuerySpec,
};
use crate::shard::Extent;
#[cfg(doc)]
use crate::shard::ShardedDb;
use crate::storage::{self, StorageBackend};

/// How many published versions the region journal remembers. A worker
/// that fell further behind than this simply clears its whole cache — the
/// journal bounds memory, not correctness.
const JOURNAL_CAP: usize = 128;

/// A versioned, immutable database snapshot.
///
/// Version `0` is the model the server [started](QueryServer::start) with
/// (a server [recovered](QueryServer::start_at) from durable storage
/// starts at its pre-crash version instead); every successful
/// [`QueryServer::update`] increments it by one. Holding a
/// `Snapshot` keeps that database version alive (it is an [`Arc`]) without
/// blocking the server from swapping in newer ones.
#[derive(Debug)]
pub struct Snapshot<M> {
    /// Monotone snapshot version (0 = the initial model).
    pub version: u64,
    /// The immutable model this version pins.
    pub model: Arc<M>,
}

impl<M> Clone for Snapshot<M> {
    fn clone(&self) -> Self {
        Self {
            version: self.version,
            model: Arc::clone(&self.model),
        }
    }
}

/// One served response: the query result plus the version of the snapshot
/// it was evaluated against.
#[derive(Debug)]
pub struct Served {
    /// The query outcome (per-query errors surface here, exactly as in a
    /// sequential run).
    pub result: Result<CpnnResult>,
    /// Which [`Snapshot::version`] answered this request.
    pub snapshot_version: u64,
}

/// Handle to one in-flight response (a single-use receiver).
#[derive(Debug)]
pub struct Ticket<T = Served>(Receiver<T>);

impl<T> Ticket<T> {
    /// Block until the response arrives.
    ///
    /// # Panics
    /// Panics if the serving worker died before responding (workers only
    /// terminate at shutdown, after the queue has drained).
    pub fn wait(self) -> T {
        self.0
            .recv()
            .expect("server worker alive while ticket pending")
    }

    /// Non-blocking poll: the response if it is ready, `None` if not yet.
    ///
    /// # Panics
    /// Panics if the serving worker died before responding (same contract
    /// as [`wait`](Self::wait)) — a dead worker must not look like a
    /// not-ready response to a polling loop.
    pub fn try_wait(&self) -> Option<T> {
        match self.0.try_recv() {
            Ok(v) => Some(v),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("server worker alive while ticket pending")
            }
        }
    }
}

/// Aggregate counters reported at [`QueryServer::shutdown`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Individual query responses sent (micro-batch members count one each).
    pub served: u64,
    /// Snapshot swaps applied (a coalesced burst counts once).
    pub updates: u64,
    /// Write-lane bursts published by [`QueryServer::flush_writes`] (each
    /// is one snapshot swap covering one or more applied updates).
    pub coalesced_batches: u64,
    /// Individual updates applied through the write lane (members of
    /// coalesced batches; direct [`QueryServer::insert`]/[`remove`](QueryServer::remove)
    /// calls are not counted here — they are their own swaps).
    pub applied_updates: u64,
    /// Local (per-worker) verification-cache hits across all workers (0
    /// unless the server's [`PipelineConfig`] enabled the cache; see
    /// [`crate::cache`]).
    pub cache_hits: u64,
    /// Verification-cache misses across all workers (neither tier had
    /// the entry).
    pub cache_misses: u64,
    /// Local misses answered by the server's shared
    /// [`SharedVerifyCache`] tier — state another worker computed and
    /// published (0 unless `shared_cache` was enabled too). Attributed
    /// to the worker that served the reply.
    pub shared_hits: u64,
    /// Entry hits that replayed a memoized verification outcome,
    /// skipping verify/refine entirely.
    pub outcome_hits: u64,
    /// Write-ahead journal records appended (0 unless a storage backend
    /// is [attached](QueryServer::attach_storage); one per durable burst
    /// or direct insert/remove).
    pub wal_records: u64,
    /// Checkpoints written through the attached storage backend
    /// (explicit [`QueryServer::checkpoint_now`] calls plus implicit
    /// checkpoints forced by unjournalable updates).
    pub checkpoints: u64,
}

/// Outcome of one queued write, resolved when its burst is flushed.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// Per-op result (e.g. a duplicate-id insert fails while the rest of
    /// its burst still applies).
    pub result: Result<()>,
    /// The snapshot version this op is visible in (for a failed op: the
    /// version current when its burst published).
    pub snapshot_version: u64,
    /// How many ops shared the burst (1 = no coalescing happened).
    pub batch: usize,
}

/// What [`QueryServer::flush_writes`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReport {
    /// Ops drained from the queue.
    pub queued: usize,
    /// Ops that applied successfully.
    pub applied: usize,
    /// The version the burst published under, `None` when nothing was
    /// queued or every op failed (no swap happened).
    pub published: Option<u64>,
}

enum Job<M: DistanceModel> {
    One {
        q: M::Query,
        spec: QuerySpec,
        reply: Sender<Served>,
    },
    /// A micro-batch: all members are evaluated by one worker against one
    /// pinned snapshot (a consistent multi-query read).
    Batch {
        jobs: Vec<(M::Query, QuerySpec)>,
        reply: Sender<Vec<Served>>,
    },
}

struct Shared<M> {
    /// The current snapshot. The lock is held only to clone or swap the
    /// `Arc` — never across query evaluation or snapshot rebuilding — so
    /// readers are effectively lock-free.
    current: Mutex<Snapshot<M>>,
    /// Mirror of `current.version`, updated *after* the swap. Workers keep
    /// a locally pinned snapshot and re-pin only when this moves, so the
    /// steady-state read path touches neither the lock nor the shared
    /// refcount (no cache-line ping-pong between workers).
    version: AtomicU64,
    /// Serializes writers so copy-on-write rebuilds never race (readers are
    /// unaffected).
    writer: Mutex<()>,
    /// Bounded history of `(version, regions touched by that publish)`.
    /// `None` regions mean the footprint is unknown (an arbitrary
    /// [`QueryServer::update`] closure) — workers crossing such a version
    /// fall back to a full cache clear. Entries are pushed *before* the
    /// version atomic moves, so any observed version is already journaled.
    journal: Mutex<VecDeque<(u64, Option<Vec<Extent>>)>>,
    served: AtomicU64,
    updates: AtomicU64,
    coalesced_batches: AtomicU64,
    applied_updates: AtomicU64,
    /// Per-worker verification-cache hits/misses, flushed after every job
    /// so [`QueryServer::stats`] reads are current.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shared_hits: AtomicU64,
    outcome_hits: AtomicU64,
    wal_records: AtomicU64,
    checkpoints: AtomicU64,
    /// The process-wide L2 every worker's scratch consults on local
    /// misses, when the server's config enables both cache tiers. The
    /// writer advances it inside [`publish`](Self::publish), *before*
    /// the new snapshot becomes visible, so no worker is ever pinned to
    /// a version whose segments have not been walked.
    shared_cache: Option<Arc<SharedVerifyCache>>,
}

impl<M> Shared<M> {
    fn pin(&self) -> Snapshot<M> {
        self.current
            .lock()
            .expect("snapshot lock unpoisoned")
            .clone()
    }

    /// Swap `next` in and publish its version. Caller must hold the
    /// writer lock; `regions` is this publish's update footprint for the
    /// journal (`None` = unknown, forces full cache clears downstream).
    fn publish(&self, next: Snapshot<M>, regions: Option<Vec<Extent>>) {
        let version = next.version;
        // Fan the invalidation out to the shared cache tier *before* the
        // snapshot swap: workers only evaluate at the new version after
        // the swap lands, so by then every segment has been walked (a
        // racing publish into an already-walked segment carries the old
        // version and is dropped by the per-segment version check).
        if let Some(tier) = &self.shared_cache {
            tier.advance_version(version, regions.as_deref());
        }
        // Journal *before* swapping the snapshot in: a worker can pin
        // whatever sits behind `current` the moment the swap lands (it
        // re-pins on any version movement, not just this one), so the
        // journal entry must already be there — otherwise the worker's
        // regions_between lookup would miss and force a spurious full
        // cache clear.
        let mut journal = self.journal.lock().expect("journal lock unpoisoned");
        journal.push_back((version, regions));
        while journal.len() > JOURNAL_CAP {
            journal.pop_front();
        }
        drop(journal);
        let mut current = self.current.lock().expect("snapshot lock unpoisoned");
        debug_assert_eq!(
            current.version + 1,
            version,
            "writers are serialized, so the base cannot move underneath us"
        );
        *current = next;
        drop(current);
        // Publish last: a worker that observes the new version finds both
        // the snapshot and its journal entry.
        self.version.store(version, Ordering::Release);
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// The concatenated update regions for versions `(old, new]`, or
    /// `None` when any of them is missing from the journal or has an
    /// unknown footprint (→ the caller must fully clear its cache).
    fn regions_between(&self, old: u64, new: u64) -> Option<Vec<Extent>> {
        let journal = self.journal.lock().expect("journal lock unpoisoned");
        let mut out = Vec::new();
        for v in old + 1..=new {
            match journal.iter().find(|(ver, _)| *ver == v) {
                Some((_, Some(regions))) => out.extend(regions.iter().cloned()),
                _ => return None,
            }
        }
        Some(out)
    }
}

/// A queued write's application: current model in, successor model plus
/// the regions the write touched out.
type ApplyWrite<M> = Box<dyn FnOnce(&M) -> Result<(M, Vec<Extent>)> + Send>;

/// One queued write: a copy-on-write application returning the successor
/// model plus the regions it touched, and the reply channel its
/// [`UpdateOutcome`] resolves through at flush time.
struct QueuedWrite<M> {
    apply: ApplyWrite<M>,
    reply: Sender<UpdateOutcome>,
    /// The op pre-encoded for the write-ahead journal (encoded at queue
    /// time, where `M::Object` is still in scope), `None` when no
    /// backend was attached when the op was queued.
    wal: Option<Vec<u8>>,
}

/// A long-lived query-serving worker pool over an immutable, swappable
/// database snapshot. See the [module docs](self) for the full design.
pub struct QueryServer<M: DistanceModel> {
    shared: Arc<Shared<M>>,
    /// `Some` while serving; taken (and dropped, closing the queue) at
    /// shutdown.
    tx: Option<Sender<Job<M>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// The write-coalescing lane: queued (unpublished) updates, drained
    /// into one snapshot publish by [`flush_writes`](Self::flush_writes).
    queued: Mutex<Vec<QueuedWrite<M>>>,
    /// Durable storage sink, when [attached](Self::attach_storage).
    /// Written to under the writer lock, strictly *before* the publish
    /// each write covers (write-ahead).
    storage: Mutex<Option<Box<dyn StorageBackend<M>>>>,
}

impl<M> QueryServer<M>
where
    M: DistanceModel + Send + Sync + 'static,
    M::Query: Send + 'static,
{
    /// Start a server over `model` with `threads` persistent workers
    /// (`0` = one per available core) evaluating under `cfg`.
    ///
    /// Accepts the model by value or pre-wrapped in an [`Arc`] (so callers
    /// benchmarking several servers over one large database don't rebuild
    /// it).
    pub fn start(model: impl Into<Arc<M>>, threads: usize, cfg: PipelineConfig) -> Self {
        Self::start_at(model, 0, threads, cfg)
    }

    /// As [`start`](Self::start), but the initial snapshot carries
    /// `initial_version` instead of 0 — the entry point for serving a
    /// database recovered from durable storage
    /// ([`crate::storage::FileBackend::recover`]), where response
    /// citations must continue the pre-crash version sequence.
    pub fn start_at(
        model: impl Into<Arc<M>>,
        initial_version: u64,
        threads: usize,
        cfg: PipelineConfig,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        // One shared L2 tier per server, started at the initial version
        // so recovered servers keep one coherent version sequence.
        let shared_cache = (cfg.cache.is_enabled() && cfg.shared_cache.is_enabled())
            .then(|| Arc::new(SharedVerifyCache::new_at(cfg.shared_cache, initial_version)));
        let shared = Arc::new(Shared {
            current: Mutex::new(Snapshot {
                version: initial_version,
                model: model.into(),
            }),
            version: AtomicU64::new(initial_version),
            writer: Mutex::new(()),
            journal: Mutex::new(VecDeque::new()),
            served: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            applied_updates: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            outcome_hits: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            shared_cache,
        });
        let (tx, rx) = mpsc::channel::<Job<M>>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared, &cfg))
            })
            .collect();
        Self {
            shared,
            tx: Some(tx),
            workers,
            threads,
            queued: Mutex::new(Vec::new()),
            storage: Mutex::new(None),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pin the current snapshot (clones the `Arc`; the momentary lock is
    /// never held across evaluation or rebuilding).
    pub fn snapshot(&self) -> Snapshot<M> {
        self.shared.pin()
    }

    /// Enqueue one query; returns immediately with a [`Ticket`] for the
    /// response. The worker that dequeues it pins whatever snapshot is
    /// current *at dequeue time*.
    pub fn submit(&self, q: M::Query, spec: QuerySpec) -> Ticket {
        let (reply, ticket) = mpsc::channel();
        self.sender()
            .send(Job::One { q, spec, reply })
            .expect("serving queue open while server alive");
        Ticket(ticket)
    }

    /// Enqueue a micro-batch evaluated by a single worker against a single
    /// pinned snapshot: all responses share one `snapshot_version` (a
    /// consistent multi-query read under concurrent updates).
    pub fn submit_batch(&self, jobs: Vec<(M::Query, QuerySpec)>) -> Ticket<Vec<Served>> {
        let (reply, ticket) = mpsc::channel();
        self.sender()
            .send(Job::Batch { jobs, reply })
            .expect("serving queue open while server alive");
        Ticket(ticket)
    }
}

/// Update, flush, and lifecycle surface — available for any model (no
/// `Send`/`Sync` bounds: nothing here crosses a thread).
impl<M: DistanceModel> QueryServer<M> {
    /// Swap in a new snapshot built from the current one (copy-on-write).
    ///
    /// `rebuild` receives the current model and returns its replacement;
    /// on success the new snapshot (version = old + 1) becomes current and
    /// is returned. Writers are serialized against each other; readers are
    /// never blocked — in-flight queries keep the snapshot they pinned and
    /// finish against it.
    ///
    /// The update's footprint is unknown to the server, so workers
    /// crossing this version clear their verification caches entirely;
    /// [`insert`](Self::insert)/[`remove`](Self::remove) record their
    /// touched regions and invalidate incrementally instead.
    pub fn update<F>(&self, rebuild: F) -> Result<Snapshot<M>>
    where
        F: FnOnce(&M) -> Result<M>,
    {
        self.update_tracked(|model| rebuild(model).map(|next| (next, None)), None)
    }

    /// [`update`](Self::update) with a known region footprint: `rebuild`
    /// additionally reports which regions it touched, which lets workers
    /// invalidate their caches incrementally. `wal_op` is the update
    /// pre-encoded for the write-ahead journal; `None` (an arbitrary
    /// closure whose effect cannot be journaled) forces a full checkpoint
    /// when a storage backend is attached.
    fn update_tracked<F>(&self, rebuild: F, wal_op: Option<Vec<u8>>) -> Result<Snapshot<M>>
    where
        F: FnOnce(&M) -> Result<(M, Option<Vec<Extent>>)>,
    {
        let _writers = self.shared.writer.lock().expect("writer lock unpoisoned");
        let base = self.shared.pin();
        let (model, regions) = rebuild(&base.model)?;
        let next = Snapshot {
            version: base.version + 1,
            model: Arc::new(model),
        };
        // Write-ahead: durable before visible. A storage failure fails
        // the whole update — the swap below never happens.
        self.persist_ahead(&next, wal_op.map(|op| vec![op]))?;
        self.shared.publish(next.clone(), regions);
        Ok(next)
    }

    /// The write-ahead hook: with a backend attached, make `next` durable
    /// — append `ops` as one journal record, or checkpoint the full model
    /// when the ops are unknown (`None`) — before the caller publishes
    /// it. No-op without a backend. Callers hold the writer lock.
    fn persist_ahead(&self, next: &Snapshot<M>, ops: Option<Vec<Vec<u8>>>) -> Result<()> {
        let mut storage = self.storage.lock().expect("storage lock unpoisoned");
        let Some(sink) = storage.as_mut() else {
            return Ok(());
        };
        let result = match &ops {
            Some(ops) => sink.append_burst(next.version, ops).map(|()| {
                self.shared.wal_records.fetch_add(1, Ordering::Relaxed);
            }),
            None => sink.checkpoint(&next.model, next.version).map(|()| {
                self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
            }),
        };
        result.map_err(|e| CoreError::Storage(e.to_string()))
    }

    /// Attach a durable storage sink: every subsequent publish becomes
    /// durable **before** it becomes visible — coalesced bursts and
    /// direct inserts/removes append one write-ahead journal record
    /// each; arbitrary [`update`](Self::update) closures (unjournalable
    /// footprint) checkpoint the full successor model instead. Attach
    /// before accepting writes: ops queued earlier carry no journal
    /// encoding, so their burst degrades to a full checkpoint.
    pub fn attach_storage(&self, backend: Box<dyn StorageBackend<M>>) {
        *self.storage.lock().expect("storage lock unpoisoned") = Some(backend);
    }

    /// Whether a storage backend is attached.
    pub fn storage_attached(&self) -> bool {
        self.storage
            .lock()
            .expect("storage lock unpoisoned")
            .is_some()
    }

    /// Checkpoint the current snapshot through the attached backend,
    /// which truncates its journal (recovery cost drops back to the
    /// checkpoint read). Returns the checkpointed version, or `None`
    /// when no backend is attached.
    pub fn checkpoint_now(&self) -> Result<Option<u64>> {
        let _writers = self.shared.writer.lock().expect("writer lock unpoisoned");
        let base = self.shared.pin();
        let mut storage = self.storage.lock().expect("storage lock unpoisoned");
        let Some(sink) = storage.as_mut() else {
            return Ok(None);
        };
        sink.checkpoint(&base.model, base.version)
            .map_err(|e| CoreError::Storage(e.to_string()))?;
        self.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(Some(base.version))
    }

    /// Drain every queued write (see [`queue_insert`](Self::queue_insert))
    /// into **one** snapshot publish: ops apply in queue order onto a
    /// single successor model, the swap happens once, and every op's
    /// [`Ticket`] resolves with its [`UpdateOutcome`]. An op that fails
    /// (e.g. a duplicate-id insert) reports its error without blocking the
    /// rest of the burst. No-op (and no version bump) when nothing is
    /// queued or every op failed.
    ///
    /// With a storage backend [attached](Self::attach_storage), the
    /// burst's applied ops are appended to the write-ahead journal as
    /// **one** fsync'd record *before* the publish; if that append fails
    /// the burst is not published and every op's ticket reports the
    /// storage error.
    pub fn flush_writes(&self) -> FlushReport {
        // Take the writer lock *before* draining the queue, so a flush is
        // linearizable: by the time any flush_writes returns, every write
        // queued before the call is published (possibly by a concurrent
        // flusher that held the lock — and therefore finished — first).
        let _writers = self.shared.writer.lock().expect("writer lock unpoisoned");
        let burst: Vec<QueuedWrite<M>> =
            std::mem::take(&mut *self.queued.lock().expect("write queue unpoisoned"));
        let total = burst.len();
        if total == 0 {
            return FlushReport {
                queued: 0,
                applied: 0,
                published: None,
            };
        }
        let base = self.shared.pin();
        let mut acc: Option<M> = None;
        let mut regions: Vec<Extent> = Vec::new();
        let mut applied = 0usize;
        let mut replies: Vec<(Sender<UpdateOutcome>, Result<()>)> = Vec::with_capacity(total);
        let mut wal_ops: Vec<Vec<u8>> = Vec::with_capacity(total);
        let mut unencoded = 0usize;
        for write in burst {
            let current: &M = acc.as_ref().unwrap_or(&base.model);
            match (write.apply)(current) {
                Ok((next, touched)) => {
                    acc = Some(next);
                    regions.extend(touched);
                    applied += 1;
                    replies.push((write.reply, Ok(())));
                    // The journal records exactly the ops that *applied*
                    // (failed ops changed nothing, so replay must not see
                    // them).
                    match write.wal {
                        Some(op) => wal_ops.push(op),
                        None => unencoded += 1,
                    }
                }
                Err(e) => replies.push((write.reply, Err(e))),
            }
        }
        let mut published = None;
        if let Some(model) = acc {
            let next = Snapshot {
                version: base.version + 1,
                model: Arc::new(model),
            };
            // Write-ahead: one journal record per published burst. Ops
            // queued before a backend was attached carry no encoding; the
            // burst then degrades to a full checkpoint (still ahead of
            // the publish).
            let ops = (unencoded == 0).then_some(wal_ops);
            match self.persist_ahead(&next, ops) {
                Ok(()) => {
                    self.shared.publish(next, Some(regions));
                    self.shared
                        .coalesced_batches
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .applied_updates
                        .fetch_add(applied as u64, Ordering::Relaxed);
                    published = Some(base.version + 1);
                }
                Err(e) => {
                    // The burst could not be made durable, so it was not
                    // published: every op in it — including ones that
                    // applied cleanly in memory — reports the storage
                    // error, and the discarded successor model is dropped.
                    applied = 0;
                    for (_, result) in replies.iter_mut() {
                        if result.is_ok() {
                            *result = Err(e.clone());
                        }
                    }
                }
            }
        }
        let version = published.unwrap_or(base.version);
        for (reply, result) in replies {
            // A dropped ticket (fire-and-forget writer) is fine.
            let _ = reply.send(UpdateOutcome {
                result,
                snapshot_version: version,
                batch: total,
            });
        }
        FlushReport {
            queued: total,
            applied,
            published,
        }
    }

    /// Counters so far (also returned by [`shutdown`](Self::shutdown)).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.shared.served.load(Ordering::Relaxed),
            updates: self.shared.updates.load(Ordering::Relaxed),
            coalesced_batches: self.shared.coalesced_batches.load(Ordering::Relaxed),
            applied_updates: self.shared.applied_updates.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
            shared_hits: self.shared.shared_hits.load(Ordering::Relaxed),
            outcome_hits: self.shared.outcome_hits.load(Ordering::Relaxed),
            wal_records: self.shared.wal_records.load(Ordering::Relaxed),
            checkpoints: self.shared.checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Flush any queued writes, close the queue, drain every pending job,
    /// join the workers, and report totals. Dropping the server does the
    /// same without the report.
    pub fn shutdown(mut self) -> ServerStats {
        self.flush_writes();
        self.join_workers();
        self.stats()
    }

    fn sender(&self) -> &Sender<Job<M>> {
        self.tx.as_ref().expect("sender taken only at shutdown")
    }

    fn join_workers(&mut self) {
        // Dropping the sender closes the queue; workers finish what is
        // enqueued and exit on the resulting RecvError.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            w.join().expect("serving worker exits cleanly");
        }
    }
}

impl<M: DistanceModel> Drop for QueryServer<M> {
    fn drop(&mut self) {
        // Resolve queued write tickets (flush needs no Send/Sync bounds),
        // then close the queue and join. `join_workers` is inlined: Drop
        // cannot rely on the Send/Sync bounds of the inherent impl, but
        // dropping the sender and joining needs neither.
        self.flush_writes();
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Update surface for any [`PersistentModel`] (every [`CowModel`](crate::store::CowModel) in the
/// crate implements it) — the 1-D/2-D databases (O(log n) store path
/// copies) and [`ShardedDb`] (path copy of the owning shard only, all
/// other shard `Arc`s shared between snapshots). Snapshot atomicity is
/// unchanged: readers pin a whole model version and never observe a
/// half-applied update (property-tested in `tests/proptest_server.rs` /
/// `tests/proptest_shard.rs`). The [`PersistentModel`] bound (rather
/// than bare [`CowModel`](crate::store::CowModel)) lets these ops encode themselves for the
/// write-ahead journal when a storage backend is attached.
impl<M> QueryServer<M>
where
    M: DistanceModel + PersistentModel + Send + Sync + 'static,
    M::Query: Send + 'static,
    M::Object: Send + 'static,
{
    /// Copy-on-write insert: path-copies the structures around `object`
    /// and swaps the successor in immediately (its own version bump).
    /// Fails on a duplicate id (the snapshot is untouched). For bursty
    /// writers prefer [`queue_insert`](Self::queue_insert) +
    /// [`flush_writes`](Self::flush_writes).
    pub fn insert(&self, object: M::Object) -> Result<Snapshot<M>> {
        let wal = self
            .storage_attached()
            .then(|| storage::encode_insert_op::<M>(&object));
        let region = M::object_extent(&object);
        self.update_tracked(
            move |db| {
                db.with_inserted(object)
                    .map(|next| (next, Some(vec![region])))
            },
            wal,
        )
    }

    /// Copy-on-write remove: as [`insert`](Self::insert). Removing an
    /// absent id still swaps (contents unchanged, version advanced), and
    /// records an empty footprint so caches survive untouched.
    pub fn remove(&self, id: ObjectId) -> Result<Snapshot<M>> {
        let wal = self
            .storage_attached()
            .then(|| storage::encode_remove_op(id));
        self.update_tracked(
            move |db| {
                let (next, removed) = db.with_removed(id);
                let regions = removed.as_ref().map(M::object_extent).into_iter().collect();
                Ok((next, Some(regions)))
            },
            wal,
        )
    }

    /// Queue an insert on the write-coalescing lane **without**
    /// publishing. The returned ticket resolves when a
    /// [`flush_writes`](Self::flush_writes) drains the burst (shutdown and
    /// drop flush too, so tickets never dangle).
    pub fn queue_insert(&self, object: M::Object) -> Ticket<UpdateOutcome> {
        let wal = self
            .storage_attached()
            .then(|| storage::encode_insert_op::<M>(&object));
        let region = M::object_extent(&object);
        self.queue_write(
            Box::new(move |db: &M| db.with_inserted(object).map(|next| (next, vec![region]))),
            wal,
        )
    }

    /// Queue a remove on the write-coalescing lane; see
    /// [`queue_insert`](Self::queue_insert).
    pub fn queue_remove(&self, id: ObjectId) -> Ticket<UpdateOutcome> {
        let wal = self
            .storage_attached()
            .then(|| storage::encode_remove_op(id));
        self.queue_write(
            Box::new(move |db: &M| {
                let (next, removed) = db.with_removed(id);
                Ok((
                    next,
                    removed.as_ref().map(M::object_extent).into_iter().collect(),
                ))
            }),
            wal,
        )
    }

    fn queue_write(&self, apply: ApplyWrite<M>, wal: Option<Vec<u8>>) -> Ticket<UpdateOutcome> {
        let (reply, ticket) = mpsc::channel();
        self.queued
            .lock()
            .expect("write queue unpoisoned")
            .push(QueuedWrite { apply, reply, wal });
        Ticket(ticket)
    }
}

fn worker_loop<M>(rx: &Mutex<Receiver<Job<M>>>, shared: &Shared<M>, cfg: &PipelineConfig)
where
    M: DistanceModel,
{
    let mut scratch = QueryScratch::new();
    // Every worker consults the same shared L2 on local misses; shared
    // hits flush through *this* worker's counters, so they are
    // attributed to the worker that served the reply.
    if let Some(tier) = &shared.shared_cache {
        scratch.attach_shared(Arc::clone(tier));
    }
    // Last cache counters flushed to `shared` (deltas go out after every
    // job so `stats()` reads stay current).
    let mut flushed = crate::cache::CacheStats::default();
    // The worker's locally pinned snapshot: refreshed from `shared` only
    // when the published version moves, so steady-state serving touches
    // neither the snapshot lock nor the shared `Arc` refcount.
    let mut pinned = shared.pin();
    loop {
        // Take the queue lock only for the dequeue itself, never across
        // query evaluation.
        let job = match rx.lock().expect("queue lock unpoisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained: shutdown
        };
        if shared.version.load(Ordering::Acquire) != pinned.version {
            let old = pinned.version;
            pinned = shared.pin();
            // Pin the evaluated version on the scratch *before* evaluating:
            // no response is ever served from state computed against a
            // version other than the one it cites. When the journal knows
            // the full region footprint of every crossed version, the
            // worker's verification cache is invalidated *incrementally* —
            // only entries whose candidate horizon intersects an updated
            // region drop; otherwise (journal gap or an untracked update)
            // the cache clears entirely.
            let regions = shared.regions_between(old, pinned.version);
            scratch.advance_snapshot(pinned.version, regions.as_deref());
        } else {
            scratch.set_snapshot_version(pinned.version);
        }
        match job {
            Job::One { q, spec, reply } => {
                let result = cpnn_with(&*pinned.model, &q, &spec, cfg, &mut scratch);
                shared.served.fetch_add(1, Ordering::Relaxed);
                // Counters flush *before* the reply: once a ticket
                // resolves, `stats()` already covers its query.
                flush_cache_counters(shared, &scratch, &mut flushed);
                // A dropped ticket (fire-and-forget caller) is fine.
                let _ = reply.send(Served {
                    result,
                    snapshot_version: pinned.version,
                });
            }
            Job::Batch { jobs, reply } => {
                let served: Vec<Served> = jobs
                    .into_iter()
                    .map(|(q, spec)| Served {
                        result: cpnn_with(&*pinned.model, &q, &spec, cfg, &mut scratch),
                        snapshot_version: pinned.version,
                    })
                    .collect();
                shared
                    .served
                    .fetch_add(served.len() as u64, Ordering::Relaxed);
                flush_cache_counters(shared, &scratch, &mut flushed);
                let _ = reply.send(served);
            }
        }
    }
}

/// Push the delta between a worker's scratch counters and its last flush
/// into the shared totals.
fn flush_cache_counters<M>(
    shared: &Shared<M>,
    scratch: &QueryScratch,
    flushed: &mut crate::cache::CacheStats,
) {
    let now = scratch.cache_stats();
    shared
        .cache_hits
        .fetch_add(now.hits - flushed.hits, Ordering::Relaxed);
    shared
        .cache_misses
        .fetch_add(now.misses - flushed.misses, Ordering::Relaxed);
    shared
        .shared_hits
        .fetch_add(now.shared_hits - flushed.shared_hits, Ordering::Relaxed);
    shared
        .outcome_hits
        .fetch_add(now.outcome_hits - flushed.outcome_hits, Ordering::Relaxed);
    *flushed = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, UncertainDb};
    use crate::object::UncertainObject;
    use crate::pipeline::{cpnn, Strategy};
    use crate::shard::ShardedDb;

    fn db(n: u64) -> UncertainDb {
        let objects: Vec<UncertainObject> = (0..n)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 100.0;
                UncertainObject::uniform(ObjectId(i), lo, lo + 3.0 + (i % 5) as f64).unwrap()
            })
            .collect();
        UncertainDb::build(objects).unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::nn(0.3, 0.01, Strategy::Verified)
    }

    #[test]
    fn streamed_results_match_sequential_at_any_thread_count() {
        let db = Arc::new(db(40));
        let cfg = EngineConfig::default().pipeline();
        let points: Vec<f64> = (0..30).map(|i| (i as f64 * 13.7) % 110.0 - 5.0).collect();
        let expected: Vec<CpnnResult> = points
            .iter()
            .map(|q| cpnn(&*db, q, &spec(), &cfg).unwrap())
            .collect();
        for threads in [1, 2, 4, 8] {
            let server = QueryServer::<UncertainDb>::start(Arc::clone(&db), threads, cfg);
            let tickets: Vec<Ticket> = points.iter().map(|&q| server.submit(q, spec())).collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let served = t.wait();
                assert_eq!(served.snapshot_version, 0);
                let got = served.result.unwrap();
                assert_eq!(
                    got.answers, expected[i].answers,
                    "query {i}, {threads} threads"
                );
                assert_eq!(got.reports.len(), expected[i].reports.len());
                for (a, b) in got.reports.iter().zip(&expected[i].reports) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.bound.lo(), b.bound.lo());
                    assert_eq!(a.bound.hi(), b.bound.hi());
                }
            }
            let stats = server.shutdown();
            assert_eq!(stats.served, points.len() as u64);
            assert_eq!(stats.updates, 0);
        }
    }

    #[test]
    fn micro_batch_pins_one_snapshot_and_preserves_order() {
        let server = QueryServer::start(db(25), 4, PipelineConfig::default());
        let jobs: Vec<(f64, QuerySpec)> = (0..10).map(|i| (i as f64 * 9.0, spec())).collect();
        let ticket = server.submit_batch(jobs.clone());
        server
            .insert(UncertainObject::uniform(ObjectId(900), 0.0, 1.0).unwrap())
            .unwrap();
        let served = ticket.wait();
        assert_eq!(served.len(), jobs.len());
        let v = served[0].snapshot_version;
        assert!(served.iter().all(|s| s.snapshot_version == v));
        // Order inside the batch is submission order.
        let snap = server.snapshot();
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn updates_advance_versions_and_change_answers() {
        let server = QueryServer::start(db(10), 2, PipelineConfig::default());
        let before = server.submit(0.0, spec()).wait();
        assert_eq!(before.snapshot_version, 0);
        let snap = server
            .insert(UncertainObject::uniform(ObjectId(777), 0.05, 0.15).unwrap())
            .unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.len(), 11);
        let after = server.submit(0.0, spec()).wait();
        assert_eq!(after.snapshot_version, 1);
        assert!(after.result.unwrap().answers.contains(&ObjectId(777)));
        let removed = server.remove(ObjectId(777)).unwrap();
        assert_eq!(removed.version, 2);
        let back = server.submit(0.0, spec()).wait();
        assert_eq!(back.snapshot_version, 2);
        assert_eq!(back.result.unwrap().answers, before.result.unwrap().answers);
        let stats = server.shutdown();
        assert_eq!(stats.served, 3);
        assert_eq!(stats.updates, 2);
    }

    #[test]
    fn duplicate_insert_fails_without_touching_the_snapshot() {
        let server = QueryServer::start(db(5), 1, PipelineConfig::default());
        let err = server.insert(UncertainObject::uniform(ObjectId(2), 0.0, 1.0).unwrap());
        assert!(err.is_err());
        assert_eq!(server.snapshot().version, 0);
        assert_eq!(server.stats().updates, 0);
    }

    #[test]
    fn per_query_errors_surface_in_their_ticket() {
        let server = QueryServer::start(db(5), 2, PipelineConfig::default());
        let bad = server.submit(f64::NAN, spec()).wait();
        assert!(bad.result.is_err());
        let good = server.submit(10.0, spec()).wait();
        assert!(good.result.is_ok());
    }

    #[test]
    fn pinned_snapshot_outlives_later_updates() {
        let server = QueryServer::start(db(8), 1, PipelineConfig::default());
        let pinned = server.snapshot();
        server.remove(ObjectId(0)).unwrap();
        server.remove(ObjectId(1)).unwrap();
        assert_eq!(pinned.version, 0);
        assert_eq!(pinned.model.len(), 8);
        assert_eq!(server.snapshot().model.len(), 6);
    }

    #[test]
    fn sharded_server_updates_rebuild_only_the_owning_shard() {
        let sharded = ShardedDb::<UncertainDb>::from_model(&db(40), 4).unwrap();
        let server = QueryServer::start(sharded, 2, PipelineConfig::default());
        let v0 = server.snapshot();
        let snap = server
            .insert(UncertainObject::uniform(ObjectId(700), 0.05, 0.15).unwrap())
            .unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.len(), 41);
        // Per-shard COW: all but one shard Arc is shared with v0.
        let shared = (0..4)
            .filter(|&s| std::ptr::eq(v0.model.shard_model(s), snap.model.shard_model(s)))
            .count();
        assert_eq!(shared, 3);
        let served = server.submit(0.1, spec()).wait();
        assert_eq!(served.snapshot_version, 1);
        assert!(served.result.unwrap().answers.contains(&ObjectId(700)));
        let removed = server.remove(ObjectId(700)).unwrap();
        assert_eq!(removed.model.len(), 40);
        let dup = server.insert(UncertainObject::uniform(ObjectId(3), 0.0, 1.0).unwrap());
        assert!(dup.is_err());
        assert_eq!(server.snapshot().version, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let server = QueryServer::start(db(30), 2, PipelineConfig::default());
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| server.submit(i as f64 * 2.0, spec()))
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.served, 50);
        for t in tickets {
            // Workers drained the queue before exiting, so every response
            // is already buffered in its channel.
            assert!(t.try_wait().is_some());
        }
    }
}
