//! Verification-cache experiment — beyond the paper: throughput of the
//! batch executor on a skewed, repeated-query workload with the
//! per-thread [`VerifyCache`](cpnn_core::VerifyCache) off and on, across
//! hot-spot counts (which set the achievable hit rate), one quantization
//! row, and a thread sweep comparing the per-thread tier alone against
//! the process-wide [`SharedVerifyCache`](cpnn_core::SharedVerifyCache)
//! layered behind it.
//!
//! The workload is Zipf-skewed repeat traffic
//! ([`cpnn_datagen::zipfian_query_points`]): a handful of hot query
//! points dominate the stream, exactly the regime the ROADMAP's caching
//! item targets. With the cache on, repeats skip filter + init (distance
//! distributions and the subregion table come from the LRU); the shared
//! tier additionally memoizes verification *outcomes*, so repeats in the
//! same threshold band skip verify + refine too. Answers are
//! bit-identical in every mode — asserted per row against the uncached
//! run. The quantization row jitters every point around its hot spot and
//! snaps with `quantum` wider than the jitter, showing nearby-point
//! traffic collapsing onto shared entries.
//!
//! The thread sweep is the PR 8 headline: per-thread caches *divide* the
//! hot set across T workers (each worker must re-miss every hot point),
//! while the shared tier lets one worker's miss warm all of them — so
//! the effective hit rate holds (and outcome memoization compounds) as
//! T grows.

use cpnn_core::{BatchExecutor, CacheConfig, CpnnQuery, SharedCacheConfig, Strategy};
use cpnn_datagen::zipfian_query_points;

use crate::experiments::{longbeach_db, DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Hot-spot counts to sweep (fewer hot spots → higher hit rate).
const HOT_SPOT_SWEEP: [usize; 3] = [8, 64, 512];
/// Worker-thread counts for the shared-tier sweep.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Zipf exponent of the rank-frequency law.
const ZIPF_EXPONENT: f64 = 1.1;
/// Cache capacity under test (entries per worker thread, and again for
/// the shared tier).
const CAPACITY: usize = 1_024;

/// Counters and throughput of one measured batch run (best-of-2
/// throughput; counters and answers from the last run).
struct Measured {
    qps: f64,
    hits: u64,
    shared_hits: u64,
    misses: u64,
    outcome_hits: u64,
    answers: Vec<Vec<cpnn_core::ObjectId>>,
}

impl Measured {
    /// Effective hit rate: local + shared hits over all lookups.
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.shared_hits + self.misses;
        (self.hits + self.shared_hits) as f64 / total.max(1) as f64
    }
}

fn measure(
    db: &cpnn_core::UncertainDb,
    queries: &[f64],
    threads: usize,
    cache: CacheConfig,
    shared: SharedCacheConfig,
) -> Measured {
    let batch: Vec<CpnnQuery> = queries
        .iter()
        .map(|&q| CpnnQuery::new(q, DEFAULT_P, DEFAULT_DELTA))
        .collect();
    let mut cfg = db.config().pipeline();
    cfg.cache = cache;
    cfg.shared_cache = shared;
    let mut m = Measured {
        qps: 0.0,
        hits: 0,
        shared_hits: 0,
        misses: 0,
        outcome_hits: 0,
        answers: Vec::new(),
    };
    for _ in 0..2 {
        let out = BatchExecutor::new(threads).run_cpnn(db, &batch, Strategy::Verified, &cfg);
        assert_eq!(out.summary.errors, 0, "benchmark queries are valid");
        if out.summary.throughput() >= m.qps {
            m.qps = out.summary.throughput();
        }
        m.hits = out.summary.cache_hits;
        m.shared_hits = out.summary.shared_hits;
        m.misses = out.summary.cache_misses;
        m.outcome_hits = out.summary.outcome_hits;
        m.answers = out
            .results
            .iter()
            .map(|r| r.as_ref().expect("valid query").answers.clone())
            .collect();
    }
    m
}

/// Run the experiment. Columns: hot-spot count, quantum, worker threads,
/// uncached / per-thread-cached / shared-cached throughput, the effective
/// hit rates of both cached modes, and the outcome-memo short-circuits of
/// the shared mode ("—" where a mode is not measured on that row).
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let n_queries = if quick { 2_000 } else { 10_000 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Cache",
        &format!(
            "VerifyCache on Zipf({ZIPF_EXPONENT}) repeat traffic: uncached vs. per-thread vs. \
             per-thread + shared tier across hot-spot counts and worker threads, {n_queries} \
             queries"
        ),
        &[
            "hot spots",
            "quantum",
            "threads",
            "uncached q/s",
            "cached q/s",
            "shared q/s",
            "hit rate",
            "shared hit rate",
            "memo hits",
        ],
    );
    table.note(format!(
        "|T| = {}, P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, cache capacity \
         {CAPACITY}/worker (+{CAPACITY} shared), best-of-2; answers asserted identical in every \
         mode on every row (quantum-0 rows) / vs. the snapped stream (quantum row); thread-sweep \
         rows fix 64 hot spots on a longer trace and layer the shared tier behind the per-thread \
         caches",
        db.len()
    ));
    let l1 = CacheConfig::new(CAPACITY, 0.0);
    for hot_spots in HOT_SPOT_SWEEP {
        let queries = zipfian_query_points(
            0xCACE,
            n_queries,
            0.0,
            10_000.0,
            hot_spots,
            ZIPF_EXPONENT,
            0.0,
        );
        let off = measure(
            &db,
            &queries,
            threads,
            CacheConfig::disabled(),
            SharedCacheConfig::disabled(),
        );
        let on = measure(&db, &queries, threads, l1, SharedCacheConfig::disabled());
        assert_eq!(
            off.answers, on.answers,
            "cached answers must equal uncached at quantum 0"
        );
        table.push_row(vec![
            hot_spots.to_string(),
            "0".into(),
            threads.to_string(),
            format!("{:.0}", off.qps),
            format!("{:.0}", on.qps),
            "—".into(),
            format!("{:.1}%", 100.0 * on.hit_rate()),
            "—".into(),
            "—".into(),
        ]);
    }
    // Quantization row: jittered traffic (±2 units around each hot spot)
    // with a 10-unit grid — nearby points share entries, and every cached
    // answer must equal uncached evaluation of the *snapped* stream.
    let quantum = 10.0;
    let jittered = zipfian_query_points(0xCACE, n_queries, 0.0, 10_000.0, 64, ZIPF_EXPONENT, 2.0);
    let snapped: Vec<f64> = jittered
        .iter()
        .map(|&q| cpnn_core::cache::quantize_coord(q, quantum))
        .collect();
    let off = measure(
        &db,
        &jittered,
        threads,
        CacheConfig::disabled(),
        SharedCacheConfig::disabled(),
    );
    let snapped_run = measure(
        &db,
        &snapped,
        threads,
        CacheConfig::disabled(),
        SharedCacheConfig::disabled(),
    );
    let on = measure(
        &db,
        &jittered,
        threads,
        CacheConfig::new(CAPACITY, quantum),
        SharedCacheConfig::disabled(),
    );
    assert_eq!(
        snapped_run.answers, on.answers,
        "quantized answers must equal uncached evaluation of the snapped stream"
    );
    table.push_row(vec![
        "64±2".into(),
        format!("{quantum}"),
        threads.to_string(),
        format!("{:.0}", off.qps),
        format!("{:.0}", on.qps),
        "—".into(),
        format!("{:.1}%", 100.0 * on.hit_rate()),
        "—".into(),
        "—".into(),
    ]);
    // Thread sweep (the PR 8 headline): one Zipf trace, T ∈ {1, 2, 4, 8}.
    // Per-thread caches split the hot set T ways (every worker re-misses
    // every hot point), so their hit rate *decays* with T; the shared tier
    // restores it — one worker's miss warms all — and its outcome memo
    // skips verify/refine on every repeat in the same threshold band. The
    // trace is longer than the hot-spot sweep's so every worker overlaps
    // every hot point (cached queries are microsecond-fast: a short trace
    // drains before the last workers spin up, hiding the contrast).
    let sweep_n = if quick { 20_000 } else { 50_000 };
    let queries = zipfian_query_points(0xCACE, sweep_n, 0.0, 10_000.0, 64, ZIPF_EXPONENT, 0.0);
    let shared_cfg = SharedCacheConfig::new(CAPACITY);
    for t in THREAD_SWEEP {
        let off = measure(
            &db,
            &queries,
            t,
            CacheConfig::disabled(),
            SharedCacheConfig::disabled(),
        );
        let local = measure(&db, &queries, t, l1, SharedCacheConfig::disabled());
        let shared = measure(&db, &queries, t, l1, shared_cfg);
        assert_eq!(
            off.answers, local.answers,
            "per-thread-cached answers must equal uncached at quantum 0 ({t} threads)"
        );
        assert_eq!(
            off.answers, shared.answers,
            "shared-cached answers must equal uncached at quantum 0 ({t} threads)"
        );
        // Second-sight admission means a hot point costs the shared tier
        // two misses (the admitting sightings); per-thread caches cost one
        // miss *per worker*. The structural gap therefore opens at T ≥ 4 —
        // at T = 2 the two modes tie modulo work-stealing noise.
        if t >= 4 {
            assert!(
                shared.hit_rate() > local.hit_rate(),
                "shared tier must lift the effective hit rate at {t} threads \
                 (shared {:.3} vs. local {:.3})",
                shared.hit_rate(),
                local.hit_rate()
            );
            assert!(
                shared.outcome_hits > 0,
                "repeat traffic must short-circuit verify/refine via the outcome memo"
            );
        }
        table.push_row(vec![
            "64".into(),
            "0".into(),
            t.to_string(),
            format!("{:.0}", off.qps),
            format!("{:.0}", local.qps),
            format!("{:.0}", shared.qps),
            format!("{:.1}%", 100.0 * local.hit_rate()),
            format!("{:.1}%", 100.0 * shared.hit_rate()),
            shared.outcome_hits.to_string(),
        ]);
    }
    table
}
