//! Column-major verification kernels.
//!
//! Every verifier inner loop sweeps all objects at a fixed end-point `j`,
//! which the SoA [`SubregionTable`] exposes as contiguous slices
//! ([`SubregionTable::cdf_col`] / [`SubregionTable::mass_col`]). The
//! primitives here consume those slices with branch-free, unit-stride loops
//! the compiler can autovectorize, and they write into **reusable** buffers
//! ([`KernelScratch`]) so the hot path performs zero heap allocations per
//! subregion.
//!
//! Determinism contract: each kernel evaluates *exactly* the same floating-
//! point expression sequence as its scalar predecessor (retained in
//! [`crate::verifiers::reference`] and as naive loops in this module's
//! tests), so verdicts and bounds are bit-identical across the kernel,
//! cached, sharded, and batched paths.

use cpnn_pdf::integrate::{gauss_legendre, GlOrder};

use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{simd, ExcludeOneProduct};

/// Reusable kernel buffers, threaded through the pipeline inside
/// [`crate::verifiers::VerificationState`] (and hence per-query scratch).
///
/// Buffers grow to the high-water mark of the tables they meet and are
/// reused thereafter; `Default` starts empty. Every kernel entry point
/// resizes what it needs, so no explicit reset is required between queries.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Exclude-one survival product at the current end-point — the
    /// fallback when the table is too large for the shared column tables.
    pub(crate) excl: ExcludeOneProduct,
    /// Exclude-one product at the next end-point (U-SR's `Y_{j+1}`).
    pub(crate) excl_next: ExcludeOneProduct,
    /// Shared exclude-one survival products, one column per end-point:
    /// `col_prefix[j·(n+1) + i] = Π_{k<i} (1 − D_k(e_j))` and the matching
    /// suffix table. Built at most once per query
    /// ([`Self::try_shared_products`]) — L-SR, U-SR, and FL-SR all read
    /// the same end-point columns, so sharing halves the product work the
    /// per-verifier ping-pong used to redo.
    pub(crate) col_prefix: Vec<f64>,
    /// Suffix half of the shared product table (same layout).
    pub(crate) col_suffix: Vec<f64>,
    /// Column stride of the product tables (`n + 1`).
    pub(crate) col_stride: usize,
    /// Whether the product tables describe the current query's table.
    pub(crate) products_ready: bool,
    /// Truncated Poisson-binomial state at the current end-point.
    pub(crate) dp: Vec<f64>,
    /// Poisson-binomial state at the next end-point.
    pub(crate) dp_next: Vec<f64>,
    /// Spare DP buffer for exclude-one fallbacks and integrand evaluation.
    pub(crate) dp_spare: Vec<f64>,
    /// Gathered integrand coefficients: competitor cdf values at `e_j`.
    pub(crate) coef_cdf: Vec<f64>,
    /// Gathered integrand coefficients: competitor subregion masses.
    pub(crate) coef_mass: Vec<f64>,
    /// Refinement visit order (indices of massive subregions).
    pub(crate) regions: Vec<usize>,
    /// SIMD staging buffer: per-object `q_ij` values for the current
    /// end-point column, filled by the vector kernels of
    /// [`crate::verifiers::simd`] and consumed by the scalar
    /// label/mass-gated application loops. Pool-reused like every other
    /// scratch buffer (`Vec<f64>` is 8-byte aligned; the kernels use
    /// explicitly unaligned loads, penalty-free on every SSE2+ micro-arch).
    pub(crate) q_col: Vec<f64>,
    /// Second SIMD staging buffer (SR-k stages lower and upper tails for
    /// the same column pair in one pass).
    pub(crate) q_hi_col: Vec<f64>,
}

/// Upper size (in `f64`s per half-table) of the shared survival product
/// tables. Beyond this the tables spill out of L2 and the three passes
/// (build + two reading verifiers) cost more in memory traffic than the
/// per-column ping-pong recompute they replace, so the verifiers fall back
/// to [`ExcludeOneProduct::recompute_survival`]. 8192 f64s = 64 KiB per
/// half; both choices produce bit-identical products.
const SHARED_PRODUCTS_MAX: usize = 8192;

impl KernelScratch {
    /// Rotate the Poisson-binomial state pair.
    pub(crate) fn swap_pb(&mut self) {
        std::mem::swap(&mut self.dp, &mut self.dp_next);
    }

    /// Rotate the fallback product pair: `Y_{j+1}` becomes the next `Y_j`.
    pub(crate) fn swap_products(&mut self) {
        std::mem::swap(&mut self.excl, &mut self.excl_next);
    }

    /// Build the shared exclude-one survival product tables for every
    /// end-point column of `table`, unless they are already up to date for
    /// this query ([`crate::verifiers::VerificationState::reset`] clears the
    /// flag) or the table exceeds [`SHARED_PRODUCTS_MAX`] (returns `false`;
    /// callers then recompute per column). Each column runs the exact
    /// multiplication chain of [`ExcludeOneProduct::recompute_survival`], so
    /// the staging kernels consume bit-identical products either way.
    pub(crate) fn try_shared_products(&mut self, table: &SubregionTable) -> bool {
        let n = table.n_objects();
        let cols = table.left_regions() + 1;
        let stride = n + 1;
        if cols * stride > SHARED_PRODUCTS_MAX {
            return false;
        }
        if self.products_ready {
            return true;
        }
        self.col_stride = stride;
        self.col_prefix.clear();
        self.col_prefix.resize(cols * stride, 0.0);
        self.col_suffix.clear();
        self.col_suffix.resize(cols * stride, 0.0);
        // Vector tiers run several independent column chains in lockstep;
        // per column the chain order is the scalar one, so the products are
        // bit-identical at every dispatch tier.
        simd::shared_products(
            table.cdf_all(),
            n,
            cols,
            &mut self.col_prefix,
            &mut self.col_suffix,
        );
        self.products_ready = true;
        true
    }

    /// The exclude-one `(prefix, suffix)` product slices for end-point
    /// column `col`: the shared column table when `shared`, else the
    /// ping-pong fallback product (already recomputed by the caller). The
    /// fused scalar verifier paths consume these directly when few rows
    /// are still unlabeled and whole-column staging would not pay.
    pub(crate) fn col_products(&self, shared: bool, col: usize) -> (&[f64], &[f64]) {
        if shared {
            let base = col * self.col_stride;
            (
                &self.col_prefix[base..base + self.col_stride],
                &self.col_suffix[base..base + self.col_stride],
            )
        } else {
            self.excl.parts()
        }
    }

    /// The two `(prefix, suffix)` product pairs U-SR's trapezoid reads for
    /// the column pair `(j, j+1)`: `(pc, sc)` at the near end-point and
    /// `(pn, sn)` at the far one. Shared mode slices the column table;
    /// non-shared mode returns the ping-pong pair (`excl` = `Y_j`,
    /// `excl_next` = `Y_{j+1}`, both recomputed by the caller). Used by the
    /// fused scalar U-SR path when staging would not pay.
    pub(crate) fn usr_products(&self, shared: bool, j: usize) -> (&[f64], &[f64], &[f64], &[f64]) {
        if shared {
            let base = j * self.col_stride;
            let base_next = (j + 1) * self.col_stride;
            (
                &self.col_prefix[base..base + self.col_stride],
                &self.col_suffix[base..base + self.col_stride],
                &self.col_prefix[base_next..base_next + self.col_stride],
                &self.col_suffix[base_next..base_next + self.col_stride],
            )
        } else {
            let (pc, sc) = self.excl.parts();
            let (pn, sn) = self.excl_next.parts();
            (pc, sc, pn, sn)
        }
    }

    /// Stage L-SR lower bounds for end-point column `j` into `q_col`:
    /// `q_col[i] = (prefix[i] · suffix[i+1] · inv_cj).clamp(0, 1)` via the
    /// active vector tier. `shared` selects the shared column table at `j`
    /// versus the ping-pong fallback product (`excl`, already recomputed by
    /// the caller). Lives on `KernelScratch` so the borrows split per field.
    pub(crate) fn stage_lsr(&mut self, n: usize, shared: bool, j: usize, inv_cj: f64) {
        ensure_len(&mut self.q_col, n);
        let (pref, suff) = if shared {
            let base = j * self.col_stride;
            (
                &self.col_prefix[base..base + self.col_stride],
                &self.col_suffix[base..base + self.col_stride],
            )
        } else {
            self.excl.parts()
        };
        simd::fill_excl_scaled(pref, suff, inv_cj, &mut self.q_col);
    }

    /// Stage FL-SR lower bounds for end-point column `col` into `q_col`:
    /// `q_col[i] = (prefix[i] · suffix[i+1]).clamp(0, 1)`. Non-shared mode
    /// reads `excl` (recomputed at `col` by the caller).
    pub(crate) fn stage_excl(&mut self, n: usize, shared: bool, col: usize) {
        ensure_len(&mut self.q_col, n);
        let (pref, suff) = if shared {
            let base = col * self.col_stride;
            (
                &self.col_prefix[base..base + self.col_stride],
                &self.col_suffix[base..base + self.col_stride],
            )
        } else {
            self.excl.parts()
        };
        simd::fill_excl(pref, suff, &mut self.q_col);
    }

    /// Stage U-SR trapezoid upper bounds for the column pair `(j, j+1)` into
    /// `q_col`: `q_col[i] = 0.5·(Y_{j+1}(i) + Y_j(i))`, unclamped — the
    /// application loop clamps per cell against its own lower bound.
    /// Non-shared mode reads the ping-pong pair (`excl` = `Y_j`,
    /// `excl_next` = `Y_{j+1}`, both recomputed by the caller).
    pub(crate) fn stage_usr(&mut self, n: usize, shared: bool, j: usize) {
        ensure_len(&mut self.q_col, n);
        let (pc, sc, pn, sn) = if shared {
            let base = j * self.col_stride;
            let base_next = (j + 1) * self.col_stride;
            (
                &self.col_prefix[base..base + self.col_stride],
                &self.col_suffix[base..base + self.col_stride],
                &self.col_prefix[base_next..base_next + self.col_stride],
                &self.col_suffix[base_next..base_next + self.col_stride],
            )
        } else {
            let (pc, sc) = self.excl.parts();
            let (pn, sn) = self.excl_next.parts();
            (pc, sc, pn, sn)
        };
        simd::fill_usr(pc, sc, pn, sn, &mut self.q_col);
    }

    /// Stage SR-k exclude-one tails for the current column pair:
    /// `q_col[i] = Pr[≤ limit | excl. i]` from the `dp_next` state with
    /// probabilities `lo_probs` (lower bounds at `e_{j+1}`), and `q_hi_col`
    /// likewise from `dp` with `hi_probs` (upper bounds at `e_j`). Every
    /// object is staged — the application loop skips labeled ones.
    pub(crate) fn stage_knn_tails(&mut self, lo_probs: &[f64], hi_probs: &[f64]) {
        ensure_len(&mut self.q_col, lo_probs.len());
        simd::pb_tails_excluding_many(&self.dp_next, lo_probs, &mut self.q_col, &mut self.dp_spare);
        ensure_len(&mut self.q_hi_col, hi_probs.len());
        simd::pb_tails_excluding_many(&self.dp, hi_probs, &mut self.q_hi_col, &mut self.dp_spare);
    }
}

/// Size a staging buffer to exactly `n` without touching its contents when
/// it already fits: the staging kernels overwrite every element, so the
/// per-column `clear` + zero-fill the naive `resize` pattern pays would be
/// pure memset overhead in the verify inner loop.
#[inline]
fn ensure_len(buf: &mut Vec<f64>, n: usize) {
    if buf.len() != n {
        buf.clear();
        buf.resize(n, 0.0);
    }
}

/// Survival kernel: `out[k] = 1 − cdf_col[k]`, a single branch-free
/// unit-stride map over a cdf column.
///
/// The subregion verifiers now fuse this map directly into the product pass
/// ([`ExcludeOneProduct::recompute_survival`]); this standalone form remains
/// as the primitive for callers that need the factor vector itself.
pub fn survival_into(cdf_col: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(cdf_col.len(), 0.0);
    simd::fill_survival(cdf_col, out);
}

/// Poisson-binomial DP column step: rebuild `dp` in place so that
/// `dp[c] = Pr[exactly c of the events in `probs` occur]` for `c ≤ limit`,
/// with overflow mass absorbed. Identical convolution order and arithmetic
/// as [`crate::knn::poisson_binomial_at_most`].
pub fn pb_into(dp: &mut Vec<f64>, probs: &[f64], limit: usize) {
    dp.clear();
    dp.resize(limit + 1, 0.0);
    dp[0] = 1.0;
    for &p in probs {
        let p = p.clamp(0.0, 1.0);
        simd::pb_row_update(dp, p);
    }
}

/// Tail `Pr[≤ limit]` of the state in `dp` with factor `i` removed by
/// O(limit) deconvolution; falls back to a direct skip-one recompute (into
/// `spare`, no allocation) when `probs[i] ≈ 1` would make the division
/// ill-conditioned. Matches the legacy `PbState::tail_excluding` bit for
/// bit, including the fallback's unclamped sum.
pub fn pb_tail_excluding(dp: &[f64], probs: &[f64], i: usize, spare: &mut Vec<f64>) -> f64 {
    let p = probs[i].clamp(0.0, 1.0);
    if p > 0.999 {
        let limit = dp.len() - 1;
        spare.clear();
        spare.resize(limit + 1, 0.0);
        spare[0] = 1.0;
        for (m, &raw) in probs.iter().enumerate() {
            if m == i {
                continue;
            }
            let q = raw.clamp(0.0, 1.0);
            simd::pb_row_update(spare, q);
        }
        return spare.iter().sum::<f64>();
    }
    let q = 1.0 - p;
    let mut prev = 0.0;
    let mut tail = 0.0;
    for &d in dp {
        let excl = ((d - p * prev) / q).clamp(0.0, 1.0);
        tail += excl;
        prev = excl;
    }
    tail.clamp(0.0, 1.0)
}

/// Kernel form of the 1-NN qualification integrand
/// ([`crate::exact::subregion_qualification`]): gather the active
/// competitor coefficients from the `j`-th columns into scratch, then
/// integrate `Π (1 − a_k − t·s_kj)` with the same Gauss–Legendre panels.
/// Bit-identical to the naive version; zero allocations once warm.
pub fn nn_qualification(
    table: &SubregionTable,
    i: usize,
    j: usize,
    scr: &mut KernelScratch,
) -> f64 {
    let cdf = table.cdf_col(j);
    let mass = table.mass_col(j);
    scr.coef_cdf.clear();
    scr.coef_mass.clear();
    for k in 0..cdf.len() {
        if k == i {
            continue;
        }
        let (a, m) = (cdf[k], mass[k]);
        if a > 0.0 || m > MASS_EPS {
            scr.coef_cdf.push(a);
            scr.coef_mass.push(m);
        }
    }
    let active = scr.coef_cdf.len();
    if active == 0 {
        return 1.0;
    }
    let panels = active.div_ceil(24).max(1);
    let w = 1.0 / panels as f64;
    let coef_cdf = &scr.coef_cdf;
    let coef_mass = &scr.coef_mass;
    let mut total = 0.0;
    for p in 0..panels {
        let a = p as f64 * w;
        total += gauss_legendre(
            |t| {
                coef_cdf
                    .iter()
                    .zip(coef_mass)
                    .map(|(&a_k, &m_k)| (1.0 - a_k - t * m_k).max(0.0))
                    .product::<f64>()
            },
            a,
            a + w,
            GlOrder::Sixteen,
        );
    }
    total.clamp(0.0, 1.0)
}

/// Kernel form of the k-NN qualification integrand
/// ([`crate::knn::knn_subregion_qualification`]): gather competitor
/// coefficients, then integrate the Poisson-binomial tail with the DP
/// running in the spare scratch buffer. Bit-identical to the naive version.
pub fn knn_qualification(
    table: &SubregionTable,
    i: usize,
    j: usize,
    k: usize,
    scr: &mut KernelScratch,
) -> f64 {
    let n = table.n_objects();
    if k >= n {
        return 1.0; // fewer competitors than slots
    }
    let cdf = table.cdf_col(j);
    let mass = table.mass_col(j);
    scr.coef_cdf.clear();
    scr.coef_mass.clear();
    for kk in 0..n {
        if kk == i {
            continue;
        }
        scr.coef_cdf.push(cdf[kk]);
        scr.coef_mass.push(mass[kk]);
    }
    let limit = k - 1;
    let active = scr.coef_cdf.len();
    let panels = active.div_ceil(24).max(1);
    let w = 1.0 / panels as f64;
    let coef_cdf = &scr.coef_cdf;
    let coef_mass = &scr.coef_mass;
    let dp = &mut scr.dp_spare;
    let mut total = 0.0;
    for p in 0..panels {
        let a = p as f64 * w;
        total += gauss_legendre(
            |t| {
                dp.clear();
                dp.resize(limit + 1, 0.0);
                dp[0] = 1.0;
                for (a_k, m_k) in coef_cdf.iter().zip(coef_mass) {
                    let pr = (a_k + t * m_k).clamp(0.0, 1.0);
                    simd::pb_row_update(dp, pr);
                }
                dp.iter().sum::<f64>().clamp(0.0, 1.0)
            },
            a,
            a + w,
            GlOrder::Sixteen,
        );
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::subregion_qualification;
    use crate::knn::{knn_subregion_qualification, poisson_binomial_at_most};
    use crate::subregion::SubregionTable;
    use crate::testutil::fig7_scenario;

    /// Naive scalar reference for the survival kernel.
    fn survival_naive(cdf_col: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        for &c in cdf_col {
            out.push(1.0 - c);
        }
        out
    }

    #[test]
    fn survival_matches_naive_bitwise() {
        let col = [0.0, 0.15, 0.3, 0.999, 1.0];
        let mut out = Vec::new();
        survival_into(&col, &mut out);
        for (a, b) in out.iter().zip(survival_naive(&col)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Reuse clears first.
        survival_into(&col[..2], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pb_into_matches_naive_tail_bitwise() {
        let probs = [0.2, 0.5, 0.9, 0.0, 1.0, 0.33];
        for limit in 0..4 {
            let mut dp = Vec::new();
            pb_into(&mut dp, &probs, limit);
            let tail = dp.iter().sum::<f64>().clamp(0.0, 1.0);
            let naive = poisson_binomial_at_most(probs.iter().copied(), limit);
            assert_eq!(tail.to_bits(), naive.to_bits(), "limit {limit}");
        }
    }

    #[test]
    fn pb_tail_excluding_matches_skip_one_recompute() {
        // Includes a p = 1.0 factor to exercise the fallback path.
        let probs = [0.2, 0.5, 1.0, 0.05, 0.9995];
        let limit = 2;
        let mut dp = Vec::new();
        pb_into(&mut dp, &probs, limit);
        let mut spare = Vec::new();
        for i in 0..probs.len() {
            let got = pb_tail_excluding(&dp, &probs, i, &mut spare);
            let rest: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|&(m, _)| m != i)
                .map(|(_, &p)| p)
                .collect();
            let want = poisson_binomial_at_most(rest.iter().copied(), limit);
            assert!((got - want).abs() < 1e-9, "i = {i}: {got} vs {want}");
        }
    }

    #[test]
    fn nn_qualification_matches_naive_bitwise() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut scr = KernelScratch::default();
        for i in 0..table.n_objects() {
            for j in 0..table.left_regions() {
                let got = nn_qualification(&table, i, j, &mut scr);
                let want = subregion_qualification(&table, i, j);
                assert_eq!(got.to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn knn_qualification_matches_naive_bitwise() {
        let (_, objects) = fig7_scenario();
        for k in 1..=3 {
            let cands = crate::candidate::CandidateSet::build_k(&objects, 0.0, 0, k).unwrap();
            let table = SubregionTable::build(&cands);
            let mut scr = KernelScratch::default();
            for i in 0..table.n_objects() {
                for j in 0..table.left_regions() {
                    let got = knn_qualification(&table, i, j, k, &mut scr);
                    let want = knn_subregion_qualification(&table, i, j, k);
                    assert_eq!(got.to_bits(), want.to_bits(), "({i},{j}) k={k}");
                }
            }
        }
    }

    #[test]
    fn scratch_buffers_are_reused_not_reallocated() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut scr = KernelScratch::default();
        // Warm every buffer once.
        let _ = nn_qualification(&table, 0, 3, &mut scr);
        let _ = knn_qualification(&table, 0, 3, 2, &mut scr);
        let ptrs = (
            scr.coef_cdf.as_ptr(),
            scr.coef_mass.as_ptr(),
            scr.dp_spare.as_ptr(),
        );
        // Re-run the kernels: the backing allocations must not move.
        for j in 0..table.left_regions() {
            let _ = nn_qualification(&table, 1, j, &mut scr);
            let _ = knn_qualification(&table, 1, j, 2, &mut scr);
        }
        assert_eq!(ptrs.0, scr.coef_cdf.as_ptr());
        assert_eq!(ptrs.1, scr.coef_mass.as_ptr());
        assert_eq!(ptrs.2, scr.dp_spare.as_ptr());
    }
}
