//! Properties of the asynchronous [`QueryServer`] on random workloads:
//!
//! 1. **streaming parity** — a query stream served by any number of worker
//!    threads (T ∈ {1, 2, 4, 8}) returns exactly the answers, labels, and
//!    probability bounds of sequential evaluation, in submission order;
//! 2. **snapshot atomicity** — under interleaved `insert`/`remove`
//!    updates, every response is consistent with *exactly one* snapshot
//!    version (the one its worker pinned at dequeue time): re-evaluating
//!    the query sequentially against that recorded version reproduces the
//!    response bit-for-bit, so no response ever observes a half-applied
//!    (torn) update;
//! 3. **micro-batch atomicity** — all members of a `submit_batch` share
//!    one snapshot version even while updates race the batch.

use std::sync::Arc;

use cpnn_core::pipeline::cpnn;
use cpnn_core::server::QueryServer;
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    CpnnResult, ObjectId, PipelineConfig, QuerySpec, Snapshot, UncertainDb, UncertainObject,
};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Random uniform-pdf objects with ids `0..n` on a bounded domain.
fn objects(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

fn spec() -> QuerySpec {
    QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified)
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(
        got.reports.len(),
        want.reports.len(),
        "reports differ: {}",
        ctx
    );
    for (a, b) in got.reports.iter().zip(&want.reports) {
        prop_assert_eq!(a.id, b.id, "id: {}", ctx);
        prop_assert_eq!(a.label, b.label, "label of {:?}: {}", a.id, ctx);
        prop_assert_eq!(
            a.bound.lo(),
            b.bound.lo(),
            "lower bound of {:?}: {}",
            a.id,
            ctx
        );
        prop_assert_eq!(
            a.bound.hi(),
            b.bound.hi(),
            "upper bound of {:?}: {}",
            a.id,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: streamed ≡ sequential, at every thread count.
    #[test]
    fn streamed_stream_equals_sequential_evaluation(
        objs in objects(16),
        points in prop::collection::vec(-60.0f64..60.0, 1..24),
    ) {
        let db = Arc::new(UncertainDb::build(objs).unwrap());
        let cfg = PipelineConfig::default();
        let expected: Vec<CpnnResult> = points
            .iter()
            .map(|q| cpnn(&*db, q, &spec(), &cfg).unwrap())
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let server = QueryServer::<UncertainDb>::start(Arc::clone(&db), threads, cfg);
            let tickets: Vec<_> = points.iter().map(|&q| server.submit(q, spec())).collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let served = ticket.wait();
                prop_assert_eq!(served.snapshot_version, 0);
                let got = served.result.unwrap();
                assert_same(&got, &expected[i], &format!("query {i}, T = {threads}"))?;
            }
            let stats = server.shutdown();
            prop_assert_eq!(stats.served, points.len() as u64);
        }
    }

    /// Property 2: under interleaved inserts/removes, every response is
    /// consistent with exactly one snapshot version — never a mix.
    #[test]
    fn concurrent_updates_never_tear_a_snapshot(
        objs in objects(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..20),
        threads in 1usize..9,
        update_stride in 1usize..4,
    ) {
        let base = objs.len() as u64;
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let server = QueryServer::start(db, threads, cfg);

        // Every version the server ever serves from, recorded exactly once:
        // v0 up front, each later version from its `update` return value.
        let mut versions: Vec<Snapshot<UncertainDb>> = vec![server.snapshot()];
        let mut tickets = Vec::new();
        let mut inserted: u64 = 0;
        // Interleave: queries enqueue (and start evaluating on the worker
        // pool) while the main thread keeps swapping snapshots underneath
        // them, alternating insert and remove.
        for (i, &q) in points.iter().enumerate() {
            tickets.push((q, server.submit(q, spec())));
            if i % update_stride == 0 {
                let snap = if i % (2 * update_stride) == 0 {
                    inserted += 1;
                    server
                        .insert(
                            UncertainObject::uniform(
                                ObjectId(base + inserted),
                                q - 1.0,
                                q + 1.0,
                            )
                            .unwrap(),
                        )
                        .unwrap()
                } else {
                    server.remove(ObjectId(base + inserted)).unwrap()
                };
                versions.push(snap);
            }
        }
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let v = served.snapshot_version as usize;
            prop_assert!(v < versions.len(), "unknown version {v}");
            prop_assert_eq!(versions[v].version, v as u64);
            // Consistency with exactly the pinned version: sequential
            // re-evaluation against that snapshot reproduces the response.
            let want = cpnn(&*versions[v].model, &q, &spec(), &cfg).unwrap();
            let got = served.result.unwrap();
            assert_same(&got, &want, &format!("query {i} at v{v}, T = {threads}"))?;
        }
    }

    /// Property 3: a micro-batch is a consistent read — one snapshot
    /// version for all members, even while updates race it.
    #[test]
    fn micro_batches_are_atomic_under_updates(
        objs in objects(10),
        points in prop::collection::vec(-60.0f64..60.0, 2..12),
        threads in 1usize..5,
    ) {
        let base = objs.len() as u64;
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let server = QueryServer::start(db, threads, cfg);
        let mut versions: Vec<Snapshot<UncertainDb>> = vec![server.snapshot()];

        let jobs: Vec<(f64, QuerySpec)> = points.iter().map(|&q| (q, spec())).collect();
        let ticket = server.submit_batch(jobs);
        versions.push(
            server
                .insert(UncertainObject::uniform(ObjectId(base + 1), 0.0, 1.0).unwrap())
                .unwrap(),
        );
        versions.push(server.remove(ObjectId(base + 1)).unwrap());

        let served = ticket.wait();
        prop_assert_eq!(served.len(), points.len());
        let v = served[0].snapshot_version;
        for (i, s) in served.iter().enumerate() {
            prop_assert_eq!(
                s.snapshot_version, v,
                "batch member {} saw v{}, batch pinned v{}",
                i, s.snapshot_version, v
            );
        }
        let pinned = &versions[v as usize];
        for (q, s) in points.iter().zip(&served) {
            let want = cpnn(&*pinned.model, q, &spec(), &cfg).unwrap();
            prop_assert_eq!(&s.result.as_ref().unwrap().answers, &want.answers);
        }
    }
}
