//! Properties of the persistent (path-copying) storage stack on random
//! workloads:
//!
//! 1. **persistent ≡ bulk-rebuilt** — an interleaved insert/remove
//!    sequence applied through path-copying updates yields query results
//!    bit-identical to a fresh bulk-load of the same final object set,
//!    for 1-D, 2-D, k-NN, and sharded databases;
//! 2. **old-snapshot safety** — handles pinned before later updates keep
//!    answering exactly as a fresh build of their historical contents
//!    (structural sharing never lets a newer version bleed into an older
//!    one);
//! 3. **server path-copy atomicity** — a `QueryServer` applying the same
//!    op sequence (direct and write-coalesced) serves every response
//!    exactly as sequential evaluation against the snapshot version it
//!    cites.

use cpnn_core::pipeline::{cpnn, PipelineConfig};
use cpnn_core::{
    CowModel, CpnnQuery, CpnnResult, Object2d, ObjectId, QuerySpec, ShardBalance, ShardedDb,
    Strategy, UncertainDb, UncertainDb2d, UncertainObject,
};
use proptest::prelude::*;
use proptest::Strategy as _;
use proptest::TestCaseError;

/// One step of a random update workload.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh object at (lo, width-index).
    Insert(f64, f64),
    /// Remove the `i`-th still-live object (modulo live count).
    Remove(usize),
}

fn ops(max: usize) -> impl proptest::Strategy<Value = Vec<Op>> {
    // ~60% inserts, ~40% removals (the shim has no `prop_oneof!`; a
    // discriminant field selects the variant instead).
    prop::collection::vec((0u32..5, -80.0f64..80.0, 0.5f64..10.0, 0usize..64), 1..max).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, lo, w, idx)| {
                    if kind < 3 {
                        Op::Insert(lo, w)
                    } else {
                        Op::Remove(idx)
                    }
                })
                .collect()
        },
    )
}

fn objects_1d(n: usize) -> Vec<UncertainObject> {
    (0..n)
        .map(|i| {
            let lo = (i as f64 * 7.3) % 60.0 - 30.0;
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + 2.0 + (i % 4) as f64).unwrap()
        })
        .collect()
}

/// Apply `ops` to a live id ledger, returning the object each op resolves
/// to (inserts get fresh ids starting at `base`).
fn resolve_ops(
    ops: &[Op],
    live: &mut Vec<UncertainObject>,
    base: u64,
) -> Vec<(bool, UncertainObject)> {
    let mut fresh = 0u64;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Insert(lo, w) => {
                let o = UncertainObject::uniform(ObjectId(base + fresh), *lo, lo + w).unwrap();
                fresh += 1;
                live.push(o.clone());
                out.push((true, o));
            }
            Op::Remove(i) => {
                if live.is_empty() {
                    continue;
                }
                let victim = live.remove(i % live.len());
                out.push((false, victim));
            }
        }
    }
    out
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1 (1-D + k-NN): path-copied updates ≡ fresh bulk build of
    /// the same final object set, bit for bit, for C-PNN and C-PkNN.
    #[test]
    fn persistent_equals_bulk_rebuilt_1d(
        seq in ops(24),
        points in prop::collection::vec(-90.0f64..90.0, 2..5),
    ) {
        let initial = objects_1d(20);
        let mut live = initial.clone();
        let resolved = resolve_ops(&seq, &mut live, 1_000);
        let mut db = UncertainDb::build(initial).unwrap();
        for (is_insert, o) in &resolved {
            if *is_insert {
                db.insert(o.clone()).unwrap();
            } else {
                let removed = db.remove(o.id()).expect("victim is live");
                prop_assert_eq!(removed.id(), o.id());
            }
        }
        prop_assert_eq!(db.len(), live.len());
        let fresh = UncertainDb::build(live).unwrap();
        for &q in &points {
            let a = db.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
            let b = fresh.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("cpnn q = {q}"))?;
            let a = db.cknn(q, 2, 0.4, 0.0).unwrap();
            let b = fresh.cknn(q, 2, 0.4, 0.0).unwrap();
            assert_same(&a, &b, &format!("cknn q = {q}"))?;
        }
    }

    /// Property 1 (2-D): the 2-D database's new dynamic updates agree
    /// with fresh builds too.
    #[test]
    fn persistent_equals_bulk_rebuilt_2d(
        inserts in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0, 0.5f64..5.0), 1..12),
        removals in prop::collection::vec(0usize..48, 0..10),
        points in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..4),
    ) {
        let initial: Vec<Object2d> = (0..16)
            .map(|i| {
                let x = (i as f64 * 9.7) % 60.0 - 30.0;
                let y = (i as f64 * 5.3) % 40.0 - 20.0;
                if i % 3 == 0 {
                    Object2d::rectangle(ObjectId(i), [x, y], [x + 3.0, y + 2.0]).unwrap()
                } else {
                    Object2d::circle(ObjectId(i), [x, y], 1.0 + (i % 3) as f64).unwrap()
                }
            })
            .collect();
        let mut live = initial.clone();
        let mut db = UncertainDb2d::build(initial).unwrap();
        for (i, &(x, y, r)) in inserts.iter().enumerate() {
            let o = Object2d::circle(ObjectId(1_000 + i as u64), [x, y], r).unwrap();
            live.push(o);
            db.insert(o).unwrap();
        }
        for &r in &removals {
            if live.is_empty() { break; }
            let victim = live.remove(r % live.len());
            prop_assert_eq!(db.remove(victim.id()).map(|o| o.id()), Some(victim.id()));
        }
        let fresh = UncertainDb2d::build(live).unwrap();
        for &(x, y) in &points {
            let a = db.cpnn([x, y], 0.3, 0.01).unwrap();
            let b = fresh.cpnn([x, y], 0.3, 0.01).unwrap();
            assert_same(&a, &b, &format!("2d q = ({x}, {y})"))?;
            let a = db.cknn([x, y], 2, 0.4, 0.0).unwrap();
            let b = fresh.cknn([x, y], 2, 0.4, 0.0).unwrap();
            assert_same(&a, &b, &format!("2d knn q = ({x}, {y})"))?;
        }
    }

    /// Property 1 (sharded, both balancing schemes): per-shard path
    /// copies ≡ fresh sharded and fresh flat builds.
    #[test]
    fn persistent_equals_bulk_rebuilt_sharded(
        seq in ops(20),
        points in prop::collection::vec(-90.0f64..90.0, 2..5),
        shards in prop::sample::select(vec![1usize, 3, 8]),
        quantile in prop::bool::ANY,
    ) {
        let balance = if quantile { ShardBalance::Quantile } else { ShardBalance::Width };
        let initial = objects_1d(24);
        let mut live = initial.clone();
        let resolved = resolve_ops(&seq, &mut live, 1_000);
        let mut db =
            ShardedDb::<UncertainDb>::build_with(initial, Default::default(), shards, balance)
                .unwrap();
        for (is_insert, o) in &resolved {
            if *is_insert {
                db.insert(o.clone()).unwrap();
            } else {
                prop_assert_eq!(db.remove(o.id()).map(|r| r.id()), Some(o.id()));
            }
        }
        let flat = UncertainDb::build(live).unwrap();
        for &q in &points {
            let a = db.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
            let b = flat.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("sharded q = {q}, {shards} shards, {balance:?}"))?;
        }
    }

    /// Property 2: snapshots pinned at every step of an update sequence
    /// answer exactly as fresh builds of their historical contents, even
    /// after the head has moved far past them.
    #[test]
    fn old_snapshots_answer_their_own_history(
        seq in ops(16),
        points in prop::collection::vec(-90.0f64..90.0, 2..4),
    ) {
        let initial = objects_1d(16);
        let mut live = initial.clone();
        let mut db = UncertainDb::build(initial).unwrap();
        // (pinned handle, its historical contents)
        let mut history: Vec<(UncertainDb, Vec<UncertainObject>)> =
            vec![(db.clone(), live.clone())];
        let resolved = resolve_ops(&seq, &mut live, 1_000);
        let mut contents = history[0].1.clone();
        for (is_insert, o) in &resolved {
            if *is_insert {
                db.insert(o.clone()).unwrap();
                contents.push(o.clone());
            } else {
                db.remove(o.id()).expect("victim is live");
                contents.retain(|x| x.id() != o.id());
            }
            history.push((db.clone(), contents.clone()));
        }
        // Check a spread of pinned versions (first, middle, last).
        let picks = [0, history.len() / 2, history.len() - 1];
        for &v in &picks {
            let (snap, contents) = &history[v];
            let fresh = UncertainDb::build(contents.clone()).unwrap();
            prop_assert_eq!(snap.len(), fresh.len(), "version {}", v);
            for &q in &points {
                let a = snap.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
                let b = fresh.cpnn(&CpnnQuery::new(q, 0.3, 0.01), Strategy::Verified).unwrap();
                assert_same(&a, &b, &format!("version {v}, q = {q}"))?;
            }
        }
    }

    /// Property 2 (COW seam): `with_inserted`/`with_removed` leave the
    /// receiver untouched, byte for byte, at every step.
    #[test]
    fn cow_successors_never_disturb_the_receiver(
        seq in ops(12),
        q in -90.0f64..90.0,
    ) {
        let initial = objects_1d(12);
        let mut live = initial.clone();
        let resolved = resolve_ops(&seq, &mut live, 1_000);
        let mut cur = UncertainDb::build(initial).unwrap();
        let spec = CpnnQuery::new(q, 0.3, 0.01);
        for (is_insert, o) in &resolved {
            let before = cur.cpnn(&spec, Strategy::Verified).unwrap();
            let next = if *is_insert {
                cur.with_inserted(o.clone()).unwrap()
            } else {
                let (next, removed) = cur.with_removed(o.id());
                prop_assert!(removed.is_some());
                next
            };
            let after = cur.cpnn(&spec, Strategy::Verified).unwrap();
            assert_same(&after, &before, "receiver changed under a COW op")?;
            cur = next;
        }
    }

    /// Property 3: a server applying the ops through BOTH update lanes
    /// (direct swaps and coalesced bursts) serves every query exactly as
    /// sequential evaluation against the version it cites.
    #[test]
    fn server_path_copied_versions_serve_consistently(
        seq in ops(12),
        points in prop::collection::vec(-90.0f64..90.0, 2..6),
        threads in 1usize..4,
        coalesce in prop::bool::ANY,
    ) {
        use cpnn_core::server::QueryServer;
        use cpnn_core::Snapshot;
        let initial = objects_1d(14);
        let mut live = initial.clone();
        let resolved = resolve_ops(&seq, &mut live, 1_000);
        let db = UncertainDb::build(initial).unwrap();
        let server = QueryServer::start(db, threads, PipelineConfig::default());
        let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
        let mut versions: Vec<Snapshot<UncertainDb>> = vec![server.snapshot()];
        let mut tickets = Vec::new();
        for (i, (is_insert, o)) in resolved.iter().enumerate() {
            for &q in &points {
                tickets.push((q, server.submit(q, spec)));
            }
            if coalesce {
                let t = if *is_insert {
                    server.queue_insert(o.clone())
                } else {
                    server.queue_remove(o.id())
                };
                if i % 2 == 1 {
                    // Flush every other op: bursts of 1–2 coalesced writes.
                    let report = server.flush_writes();
                    prop_assert!(report.published.is_some());
                    versions.push(server.snapshot());
                }
                let _ = t;
            } else {
                let snap = if *is_insert {
                    server.insert(o.clone()).unwrap()
                } else {
                    server.remove(o.id()).unwrap()
                };
                versions.push(snap);
            }
        }
        // Trailing flush so every queued write publishes.
        if server.flush_writes().published.is_some() {
            versions.push(server.snapshot());
        }
        let uncached = PipelineConfig::default();
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let snap = versions
                .iter()
                .find(|s| s.version == served.snapshot_version)
                .expect("every cited version was captured");
            let want = cpnn(&*snap.model, &q, &spec, &uncached).unwrap();
            assert_same(&served.result.unwrap(), &want, &format!("query {i} at v{}", snap.version))?;
        }
        server.shutdown();
    }
}

/// Non-proptest regression: a coalesced burst publishes exactly one
/// version covering every member, and a mid-burst failure (duplicate id)
/// fails alone.
#[test]
fn coalesced_burst_publishes_once_with_per_op_outcomes() {
    use cpnn_core::server::QueryServer;
    let db = UncertainDb::build(objects_1d(10)).unwrap();
    let server = QueryServer::start(db, 1, PipelineConfig::default());
    let t1 = server.queue_insert(UncertainObject::uniform(ObjectId(100), 0.0, 1.0).unwrap());
    let t2 = server.queue_insert(UncertainObject::uniform(ObjectId(3), 0.0, 1.0).unwrap()); // dup
    let t3 = server.queue_remove(ObjectId(0));
    let report = server.flush_writes();
    assert_eq!(report.queued, 3);
    assert_eq!(report.applied, 2);
    assert_eq!(report.published, Some(1));
    let (o1, o2, o3) = (t1.wait(), t2.wait(), t3.wait());
    assert!(o1.result.is_ok());
    assert!(o2.result.is_err(), "duplicate insert fails alone");
    assert!(o3.result.is_ok());
    assert_eq!(o1.snapshot_version, 1);
    assert_eq!(o3.snapshot_version, 1);
    assert_eq!(o1.batch, 3);
    let stats = server.stats();
    assert_eq!(stats.updates, 1, "one swap for the whole burst");
    assert_eq!(stats.coalesced_batches, 1);
    assert_eq!(stats.applied_updates, 2);
    let snap = server.snapshot();
    assert_eq!(snap.version, 1);
    assert_eq!(snap.model.len(), 10); // +1 insert, -1 remove
    assert!(snap.model.contains_id(ObjectId(100)));
    assert!(!snap.model.contains_id(ObjectId(0)));
    server.shutdown();
}

/// Non-proptest regression: an all-failed burst publishes nothing.
#[test]
fn all_failed_burst_does_not_bump_the_version() {
    use cpnn_core::server::QueryServer;
    let db = UncertainDb::build(objects_1d(5)).unwrap();
    let server = QueryServer::start(db, 1, PipelineConfig::default());
    let t = server.queue_insert(UncertainObject::uniform(ObjectId(2), 0.0, 1.0).unwrap());
    let report = server.flush_writes();
    assert_eq!(
        (report.queued, report.applied, report.published),
        (1, 0, None)
    );
    assert!(t.wait().result.is_err());
    assert_eq!(server.snapshot().version, 0);
    assert_eq!(server.stats().updates, 0);
    server.shutdown();
}
