//! Table III — verifier complexities, checked empirically.
//!
//! The paper states RS costs `O(|C|)` while L-SR and U-SR cost `O(|C|·M)`,
//! and that verification as a whole (`O(|C|(log|C| + M))`) is far cheaper
//! than exact evaluation (`O(|C|²·M)`). We time each verifier in isolation
//! on candidate sets of controlled size and report the scaling.

use std::time::{Duration, Instant};

use cpnn_core::verifiers::{
    LowerSubregion, RightmostSubregion, UpperSubregion, VerificationState, Verifier,
};
use cpnn_core::{CandidateSet, ObjectId, SubregionTable, UncertainObject};

use crate::report::{ms, Table};

/// Build a candidate set of exactly `c` mutually overlapping objects.
fn candidate_set(c: usize) -> CandidateSet {
    // Intervals [i·δ, W + i·δ] all containing the query point 0..W.
    let objects: Vec<UncertainObject> = (0..c)
        .map(|i| {
            let lo = 1.0 + 0.05 * i as f64;
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + 50.0).expect("valid region")
        })
        .collect();
    CandidateSet::build(&objects, 0.0, 0).expect("valid candidate set")
}

fn time_verifier(v: &dyn Verifier, table: &SubregionTable, reps: usize) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let mut state = VerificationState::new(table);
        let start = Instant::now();
        v.apply(table, &mut state);
        total += start.elapsed();
    }
    total / reps as u32
}

/// Run the scaling experiment.
pub fn run(quick: bool) -> Table {
    let sizes: Vec<usize> = if quick {
        vec![16, 32, 64, 128]
    } else {
        vec![16, 32, 64, 128, 256, 512]
    };
    let reps = if quick { 20 } else { 50 };
    let mut table = Table::new(
        "Table III",
        "verifier cost scaling with |C| (and M)",
        &[
            "|C|",
            "M",
            "RS (ms)",
            "L-SR (ms)",
            "U-SR (ms)",
            "exact eval (ms)",
        ],
    );
    table.note("paper: RS = O(|C|); L-SR, U-SR = O(|C|·M); exact = O(|C|²·M)");
    for &c in &sizes {
        let cands = candidate_set(c);
        let sub = SubregionTable::build(&cands);
        let rs = time_verifier(&RightmostSubregion, &sub, reps);
        let lsr = time_verifier(&LowerSubregion, &sub, reps);
        let usr = time_verifier(&UpperSubregion, &sub, reps);
        let exact_start = Instant::now();
        let (_, _) = cpnn_core::exact::exact_probabilities(&sub);
        let exact = exact_start.elapsed();
        table.push_row(vec![
            c.to_string(),
            sub.subregion_count().to_string(),
            ms(rs),
            ms(lsr),
            ms(usr),
            ms(exact),
        ]);
    }
    table
}
