//! Ablations of design choices the paper leaves implicit:
//!
//! * **verifier chains** — is the RS → L-SR → U-SR order (ascending cost)
//!   actually the right trade-off? We time alternative chains end-to-end;
//! * **refinement order** — largest-mass-first vs. left-to-right subregion
//!   visiting during incremental refinement;
//! * **distance-histogram resolution** — how the `max_distance_bins` knob
//!   (our representation of the paper's "distance pdf as a histogram")
//!   trades verification cost for bound tightness on Gaussian data.

use cpnn_core::{EngineConfig, RefinementOrder, Strategy, UncertainDb};
use cpnn_datagen::{gaussian_variant, longbeach::longbeach_with, LongBeachConfig};

use crate::experiments::{longbeach_db, workload_queries, DEFAULT_DELTA, DEFAULT_P};
use crate::harness::run_queries;
use crate::report::{frac, ms, Table};

/// Ablation A: alternative verifier chains.
///
/// Chains are simulated through the public engine by comparing `Verified`
/// (full chain) against `RefineOnly` (empty chain); the per-stage timings
/// of the full chain come from the stage reports in Fig. 12's data. Here we
/// report the end-to-end effect of verification at several thresholds.
pub fn verifier_chain(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Ablation A",
        "does verification pay for itself? (VR vs Refine-only)",
        &[
            "P",
            "VR (ms)",
            "Refine (ms)",
            "VR integ.",
            "Refine integ.",
            "resolved by verif.",
        ],
    );
    table.note("verification is profitable whenever its integ. saving outweighs its pass cost");
    for p in [0.1, 0.3, 0.5, 0.7] {
        let vr = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Verified);
        let refine = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::RefineOnly);
        table.push_row(vec![
            format!("{p:.1}"),
            ms(vr.avg_total),
            ms(refine.avg_total),
            format!("{:.1}", vr.avg_integrations),
            format!("{:.1}", refine.avg_integrations),
            frac(vr.resolved_fraction),
        ]);
    }
    table
}

/// Ablation B: refinement subregion-visiting order.
pub fn refinement_order(quick: bool) -> Table {
    let data = longbeach_with(
        0xC0FFEE,
        LongBeachConfig {
            count: if quick { 8_000 } else { 53_144 },
            ..LongBeachConfig::default()
        },
    );
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Ablation B",
        "refinement order: largest-mass-first vs left-to-right",
        &[
            "P",
            "desc-mass integ.",
            "left-right integ.",
            "desc (ms)",
            "ltr (ms)",
        ],
    );
    table.note("fewer integrations per refined object = earlier classification");
    for p in [0.2, 0.3, 0.4, 0.5] {
        let mut results = Vec::new();
        for order in [
            RefinementOrder::DescendingMass,
            RefinementOrder::LeftToRight,
        ] {
            let config = EngineConfig {
                refinement_order: order,
                ..EngineConfig::default()
            };
            let db = UncertainDb::with_config(data.clone(), config).expect("valid data");
            results.push(run_queries(
                &db,
                &queries,
                p,
                DEFAULT_DELTA,
                Strategy::Verified,
            ));
        }
        table.push_row(vec![
            format!("{p:.1}"),
            format!("{:.1}", results[0].avg_integrations),
            format!("{:.1}", results[1].avg_integrations),
            ms(results[0].avg_total),
            ms(results[1].avg_total),
        ]);
    }
    table
}

/// Ablation D: the FL-SR extra verifier (beyond the paper) — does adding a
/// second lower-bound pass pay off on this workload?
pub fn extended_chain(quick: bool) -> Table {
    let data = longbeach_with(
        0xC0FFEE,
        LongBeachConfig {
            count: if quick { 8_000 } else { 53_144 },
            ..LongBeachConfig::default()
        },
    );
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Ablation D",
        "paper chain (RS,L-SR,U-SR) vs extended (+FL-SR)",
        &[
            "P",
            "paper (ms)",
            "+FL-SR (ms)",
            "paper integ.",
            "+FL-SR integ.",
        ],
    );
    table.note("FL-SR adds one O(|C|·M) pass; it pays off when it saves refinement integrations");
    for p in [0.05, 0.1, 0.3] {
        let mut results = Vec::new();
        for extended in [false, true] {
            let config = EngineConfig {
                extended_verifiers: extended,
                ..EngineConfig::default()
            };
            let db = UncertainDb::with_config(data.clone(), config).expect("valid data");
            results.push(run_queries(
                &db,
                &queries,
                p,
                DEFAULT_DELTA,
                Strategy::Verified,
            ));
        }
        table.push_row(vec![
            format!("{p:.2}"),
            ms(results[0].avg_total),
            ms(results[1].avg_total),
            format!("{:.1}", results[0].avg_integrations),
            format!("{:.1}", results[1].avg_integrations),
        ]);
    }
    table
}

/// Ablation C: distance-histogram resolution on Gaussian data.
pub fn distance_bins(quick: bool) -> Table {
    let base = longbeach_with(
        0xC0FFEE,
        LongBeachConfig {
            count: if quick { 3_000 } else { 10_000 },
            ..LongBeachConfig::default()
        },
    );
    let gauss = gaussian_variant(&base, 300);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Ablation C",
        "distance-histogram resolution (Gaussian pdfs)",
        &["max bins", "VR (ms)", "avg M", "resolved by verif."],
    );
    table.note("coarser distance histograms = smaller M = cheaper verifiers, looser bounds");
    for bins in [16usize, 32, 64, 128] {
        let config = EngineConfig {
            max_distance_bins: bins,
            ..EngineConfig::default()
        };
        let db = UncertainDb::with_config(gauss.clone(), config).expect("valid data");
        // Average M over a few queries (M is per-query).
        let mut m_total = 0usize;
        for &q in queries.iter().take(5) {
            let res = db
                .cpnn(
                    &cpnn_core::CpnnQuery::new(q, DEFAULT_P, DEFAULT_DELTA),
                    Strategy::Verified,
                )
                .expect("query succeeds");
            m_total += res.stats.subregions;
        }
        let s = run_queries(&db, &queries, DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
        table.push_row(vec![
            bins.to_string(),
            ms(s.avg_total),
            format!("{:.0}", m_total as f64 / 5.0),
            frac(s.resolved_fraction),
        ]);
    }
    table
}
