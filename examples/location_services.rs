//! Location-based services: dead-reckoning vehicles on a highway (paper
//! Sec. I). Each vehicle's last report is stale, so its position is a
//! Gaussian uncertainty region ([2], [3]: "a normalized Gaussian
//! distribution is used to model the measurement error of a location").
//! Dispatch wants the vehicles most likely to be nearest to an incident,
//! with at least 30% confidence.
//!
//! Run with: `cargo run --example location_services --release`

use cpnn::core::{CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject};
use cpnn::datagen::query_points_in;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2,000 vehicles along a 100 km highway (positions in meters). The
    // uncertainty width grows with time since the last location update.
    let mut rng = StdRng::seed_from_u64(2008);
    let vehicles: Vec<UncertainObject> = (0..2_000)
        .map(|i| {
            let pos = rng.gen_range(0.0..100_000.0);
            let staleness = rng.gen_range(5.0..120.0); // seconds since update
            let width = 3.0 * staleness; // ~3 m/s drift bound
                                         // Paper configuration: Gaussian with σ = width/6, 300-bar histogram.
            UncertainObject::gaussian(ObjectId(i), pos - width / 2.0, pos + width / 2.0, 300)
                .expect("valid region")
        })
        .collect();
    let db = UncertainDb::build(vehicles)?;

    let incident = 42_357.0;
    println!("Incident at {incident} m; dispatching nearest vehicle.\n");

    let query = CpnnQuery::new(incident, 0.30, 0.01);
    let res = db.cpnn(&query, Strategy::Verified)?;
    println!(
        "candidates after R-tree filtering: {} of {}",
        res.stats.candidates, res.stats.total_objects
    );
    println!("answers with ≥30% confidence: {:?}", res.answers);
    for r in res.reports.iter().filter(|r| r.bound.hi() > 0.05) {
        println!("  vehicle {}: bound {} → {:?}", r.id, r.bound, r.label);
    }
    println!(
        "\nphase times: filter {:?}, init {:?}, verify {:?}, refine {:?}",
        res.stats.filter_time, res.stats.init_time, res.stats.verify_time, res.stats.refine_time
    );

    // A small workload of incidents — how often do the verifiers finish the
    // query alone (no integration at all)?
    let incidents = query_points_in(11, 25, 0.0, 100_000.0);
    let mut resolved = 0;
    for q in &incidents {
        let r = db.cpnn(&CpnnQuery::new(*q, 0.30, 0.01), Strategy::Verified)?;
        if r.stats.resolved_by_verification {
            resolved += 1;
        }
    }
    println!(
        "\nverifiers alone resolved {resolved}/{} incident queries",
        incidents.len()
    );
    Ok(())
}
