//! Fig. 13 — *Effect of tolerance Δ*: fraction of queries fully resolved by
//! verification (no refinement needed) as Δ grows.
//!
//! Paper shape: monotone increase; ~10% more queries finish at Δ = 0.16
//! than at Δ = 0.

use cpnn_core::Strategy;

use crate::experiments::{longbeach_db, workload_queries};
use crate::harness::run_queries;
use crate::report::{frac, ms, Table};

/// Threshold for the tolerance sweep.
///
/// The paper runs this at its default P = 0.3; our verifiers (with exact
/// full-candidate products) already resolve 100% of queries there, which
/// would make the sweep a flat line. P = 0.1 is the regime where our
/// verification leaves queries unfinished (~73% resolved at Δ = 0), i.e.
/// the regime the paper's Fig. 13 actually probes. Documented in
/// the table note.
const SWEEP_P: f64 = 0.1;

/// Run the experiment.
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 13",
        "queries finished after verification vs. tolerance Δ",
        &[
            "Δ",
            "finished fraction",
            "VR time (ms)",
            "avg refine integ.",
        ],
    );
    table.note("paper: ≈10% more queries complete at Δ = 0.16 than at Δ = 0");
    table.note(format!(
        "run at P = {SWEEP_P}, below the paper's default 0.3: the regime where \
         our verifiers leave queries unfinished, so the tolerance sweep has \
         something to resolve (see the SWEEP_P doc comment)"
    ));
    for delta in [0.0, 0.04, 0.08, 0.12, 0.16, 0.2] {
        let s = run_queries(&db, &queries, SWEEP_P, delta, Strategy::Verified);
        table.push_row(vec![
            format!("{delta:.2}"),
            frac(s.resolved_fraction),
            ms(s.avg_total),
            format!("{:.1}", s.avg_integrations),
        ]);
    }
    table
}
