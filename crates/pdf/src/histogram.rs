//! Piecewise-constant (histogram) pdfs — the paper's canonical form for
//! arbitrary uncertainty distributions (Fig. 1(b): "The pdf, represented as
//! a histogram, is an arbitrary distribution").
//!
//! A histogram pdf's cdf is piecewise *linear*, which is exactly the property
//! the subregion machinery relies on ("We represent a distance pdf of each
//! object as a histogram. The corresponding distance cdf is then a piecewise
//! linear function", Sec. IV-A).

use crate::error::PdfError;
use crate::integrate::{gauss_legendre, GlOrder};
use crate::traits::Pdf;
use crate::Result;

/// An arbitrary pdf stored as a histogram: `n` bars over strictly increasing
/// edges, normalized to total mass one.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPdf {
    /// `n + 1` strictly increasing bin edges.
    edges: Vec<f64>,
    /// `n` non-negative densities (bar heights).
    density: Vec<f64>,
    /// `n + 1` cumulative masses; `cdf[0] = 0`, `cdf[n] = 1`.
    cdf: Vec<f64>,
}

impl HistogramPdf {
    /// Build from explicit bin edges and (unnormalized) bar heights.
    ///
    /// Heights are rescaled so the total mass is one.
    pub fn from_densities(edges: Vec<f64>, density: Vec<f64>) -> Result<Self> {
        Self::validate_edges(&edges)?;
        if density.len() + 1 != edges.len() {
            return Err(PdfError::LengthMismatch {
                expected: edges.len() - 1,
                actual: density.len(),
            });
        }
        for (i, &d) in density.iter().enumerate() {
            if !(d >= 0.0) || !d.is_finite() {
                return Err(PdfError::InvalidDensity { index: i, value: d });
            }
        }
        let mut mass = 0.0;
        for (i, &d) in density.iter().enumerate() {
            mass += d * (edges[i + 1] - edges[i]);
        }
        if !(mass > 0.0) {
            return Err(PdfError::ZeroMass);
        }
        let density: Vec<f64> = density.into_iter().map(|d| d / mass).collect();
        let cdf = Self::accumulate(&edges, &density);
        Ok(Self {
            edges,
            density,
            cdf,
        })
    }

    /// Build from explicit bin edges and per-bin probability masses.
    pub fn from_masses(edges: Vec<f64>, masses: Vec<f64>) -> Result<Self> {
        Self::validate_edges(&edges)?;
        if masses.len() + 1 != edges.len() {
            return Err(PdfError::LengthMismatch {
                expected: edges.len() - 1,
                actual: masses.len(),
            });
        }
        let density: Vec<f64> = masses
            .iter()
            .enumerate()
            .map(|(i, &m)| m / (edges[i + 1] - edges[i]))
            .collect();
        Self::from_densities(edges, density)
    }

    /// Single-bar histogram — the exact representation of a uniform pdf.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self> {
        Self::from_densities(vec![lo, hi], vec![1.0])
    }

    /// Reassemble a histogram from the exact parts a previous instance
    /// exposed through [`edges`](Self::edges), [`densities`](Self::densities),
    /// and [`cdf_at_edges`](Self::cdf_at_edges) — the transport codec for
    /// shipping an already-normalized histogram across a process boundary
    /// **bit for bit**.
    ///
    /// Unlike [`from_densities`](Self::from_densities) this constructor
    /// never renormalizes (renormalizing divides every density by the
    /// computed mass, which is not an identity in floating point even for
    /// an already-normalized histogram) and never re-accumulates the cdf;
    /// every invariant is *checked* instead: edges strictly increasing and
    /// finite, densities non-negative and finite, cdf knots a monotone
    /// sequence in `[0, 1]` starting at 0, ending at exactly 1, and
    /// consistent with the bar masses to within accumulation rounding.
    /// `parts → from_raw_parts → accessors` is the identity, so a decoded
    /// distribution compares equal (`PartialEq` on the raw `f64` vectors)
    /// to the one encoded.
    pub fn from_raw_parts(edges: Vec<f64>, density: Vec<f64>, cdf: Vec<f64>) -> Result<Self> {
        Self::validate_edges(&edges)?;
        if density.len() + 1 != edges.len() {
            return Err(PdfError::LengthMismatch {
                expected: edges.len() - 1,
                actual: density.len(),
            });
        }
        for (i, &d) in density.iter().enumerate() {
            if !(d >= 0.0) || !d.is_finite() {
                return Err(PdfError::InvalidDensity { index: i, value: d });
            }
        }
        if cdf.len() != edges.len() {
            return Err(PdfError::LengthMismatch {
                expected: edges.len(),
                actual: cdf.len(),
            });
        }
        if cdf[0] != 0.0 {
            return Err(PdfError::InvalidCdf {
                index: 0,
                value: cdf[0],
            });
        }
        if *cdf.last().expect("cdf has >= 2 knots") != 1.0 {
            return Err(PdfError::InvalidCdf {
                index: cdf.len() - 1,
                value: *cdf.last().expect("cdf has >= 2 knots"),
            });
        }
        for (i, w) in cdf.windows(2).enumerate() {
            if !w[1].is_finite() || w[1] < w[0] || w[1] > 1.0 {
                return Err(PdfError::InvalidCdf {
                    index: i + 1,
                    value: w[1],
                });
            }
            // The step must match the bar mass up to accumulation rounding
            // (`accumulate` sums `d·width` in order; a foreign cdf that
            // disagrees beyond rounding is not this histogram's cdf).
            let mass = density[i] * (edges[i + 1] - edges[i]);
            if (w[1] - w[0] - mass).abs() > 1e-9 + 1e-9 * mass.abs() {
                return Err(PdfError::InvalidCdf {
                    index: i + 1,
                    value: w[1],
                });
            }
        }
        Ok(Self {
            edges,
            density,
            cdf,
        })
    }

    /// Equi-width histogram over `[lo, hi]` whose bar masses are the
    /// integrals of `f` over each bin (Gauss–Legendre order 8 per bin),
    /// normalized to total mass one.
    pub fn equi_width_from_fn<F: FnMut(f64) -> f64>(
        lo: f64,
        hi: f64,
        bars: usize,
        mut f: F,
    ) -> Result<Self> {
        if bars == 0 {
            return Err(PdfError::NonPositiveParameter {
                name: "bars",
                value: 0.0,
            });
        }
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(PdfError::EmptyRegion { lo, hi });
        }
        let w = (hi - lo) / bars as f64;
        let edges: Vec<f64> = (0..=bars)
            .map(|i| if i == bars { hi } else { lo + i as f64 * w })
            .collect();
        let masses: Vec<f64> = (0..bars)
            .map(|i| gauss_legendre(&mut f, edges[i], edges[i + 1], GlOrder::Eight).max(0.0))
            .collect();
        Self::from_masses(edges, masses)
    }

    fn validate_edges(edges: &[f64]) -> Result<()> {
        if edges.len() < 2 {
            return Err(PdfError::LengthMismatch {
                expected: 2,
                actual: edges.len(),
            });
        }
        for (i, w) in edges.windows(2).enumerate() {
            if !(w[0] < w[1]) || !w[0].is_finite() || !w[1].is_finite() {
                return Err(PdfError::UnsortedEdges { index: i });
            }
        }
        Ok(())
    }

    fn accumulate(edges: &[f64], density: &[f64]) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(edges.len());
        cdf.push(0.0);
        let mut acc = 0.0;
        for (i, &d) in density.iter().enumerate() {
            acc += d * (edges[i + 1] - edges[i]);
            cdf.push(acc);
        }
        // Guard against tiny rounding drift on the last knot.
        let n = cdf.len();
        cdf[n - 1] = 1.0;
        cdf
    }

    /// Number of bars.
    pub fn bar_count(&self) -> usize {
        self.density.len()
    }

    /// Bin edges (length `bar_count() + 1`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Bar heights (length `bar_count()`), normalized.
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Cumulative masses at each edge (length `bar_count() + 1`).
    pub fn cdf_at_edges(&self) -> &[f64] {
        &self.cdf
    }

    /// Iterate over `(bin_lo, bin_hi, density)` triples.
    pub fn bars(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.density.len()).map(|i| (self.edges[i], self.edges[i + 1], self.density[i]))
    }

    /// Bulk cdf evaluation over an **ascending** slice of points: one merge
    /// pass over the bin edges instead of a binary search per point.
    ///
    /// Appends `Pdf::cdf(x)` for each `x ∈ xs` to `out` (cleared first).
    /// Results are bit-identical to the scalar [`Pdf::cdf`]: the same bin
    /// index is located (last bin whose left edge is `≤ x`) and the same
    /// interpolation expression is evaluated, so downstream consumers such
    /// as the subregion table see identical f64 values either way.
    ///
    /// `xs` must be sorted ascending (`debug_assert`ed); the subregion
    /// end-point list already is.
    pub fn cdf_many_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(xs.len(), 0.0);
        let mut bin = 0usize;
        self.cdf_many_resume(xs, &mut bin, out);
    }

    /// Resumable slice form of [`cdf_many_into`](Self::cdf_many_into): the
    /// sweep's bin cursor lives in `bin`, so a caller can evaluate one long
    /// ascending grid in several consecutive chunks (the cache-blocked
    /// subregion-table build does exactly this, one cursor per member)
    /// without restarting the edge merge from bin 0 each time.
    ///
    /// Points sharing a bin form a *run*, and each run's interpolation is
    /// evaluated with [`crate::simd::fill_interp`] — vector lanes at the
    /// active dispatch tier, bit-identical to [`Pdf::cdf`] per point.
    ///
    /// Contract: `xs` ascends, `out.len() == xs.len()`, `*bin` was produced
    /// by a previous call on the same histogram with points `≤ xs[0]` (or is
    /// 0), all `debug_assert`ed.
    pub fn cdf_many_resume(&self, xs: &[f64], bin: &mut usize, out: &mut [f64]) {
        debug_assert!(
            xs.windows(2).all(|w| w[0] <= w[1]),
            "cdf_many_resume requires ascending inputs"
        );
        debug_assert_eq!(xs.len(), out.len());
        let n = self.density.len();
        let lo = self.edges[0];
        let hi = self.edges[n];
        // Leading out-of-support run: cdf = 0 at or below the left edge.
        let mut i = 0usize;
        while i < xs.len() && xs[i] <= lo {
            out[i] = 0.0;
            i += 1;
        }
        // Trailing out-of-support run: cdf = 1 at or beyond the right edge.
        let mut end = xs.len();
        while end > i && xs[end - 1] >= hi {
            end -= 1;
            out[end] = 1.0;
        }
        // `b` is the current bin: the largest index with edges[b] <= x.
        // Because xs ascends (across calls too), it only ever moves right.
        let mut b = *bin;
        debug_assert!(b < n, "stale bin cursor");
        while i < end {
            let x0 = xs[i];
            while self.edges[b + 1] <= x0 {
                b += 1;
            }
            debug_assert!(self.edges[b] <= x0, "cursor resumed past its points");
            // The run of points that stay inside bin b.
            let mut j = i + 1;
            while j < end && xs[j] < self.edges[b + 1] {
                j += 1;
            }
            if j == i + 1 {
                // Singleton run — the common case when sorted end-points
                // spread across the bins. Same expression as
                // `fill_interp_scalar`, evaluated in place.
                out[i] = (self.cdf[b] + self.density[b] * (x0 - self.edges[b])).clamp(0.0, 1.0);
            } else {
                crate::simd::fill_interp(
                    self.cdf[b],
                    self.density[b],
                    self.edges[b],
                    &xs[i..j],
                    &mut out[i..j],
                );
            }
            i = j;
        }
        *bin = b;
    }

    /// Index of the bin containing `x` (bins are `[e_i, e_{i+1})`, with the
    /// final bin closed on the right). Returns `None` outside the support.
    #[inline]
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        let n = self.density.len();
        if x < self.edges[0] || x > self.edges[n] {
            return None;
        }
        if x == self.edges[n] {
            return Some(n - 1);
        }
        // partition_point returns the first index whose edge is > x.
        let idx = self.edges.partition_point(|&e| e <= x);
        Some(idx - 1)
    }
}

impl Pdf for HistogramPdf {
    #[inline]
    fn support(&self) -> (f64, f64) {
        (self.edges[0], *self.edges.last().expect("non-empty edges"))
    }

    #[inline]
    fn density(&self, x: f64) -> f64 {
        match self.bin_of(x) {
            Some(i) => self.density[i],
            None => 0.0,
        }
    }

    #[inline]
    fn cdf(&self, x: f64) -> f64 {
        let n = self.density.len();
        if x <= self.edges[0] {
            return 0.0;
        }
        if x >= self.edges[n] {
            return 1.0;
        }
        let i = self.bin_of(x).expect("x inside support");
        (self.cdf[i] + self.density[i] * (x - self.edges[i])).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.density.len();
        if p <= 0.0 {
            return self.edges[0];
        }
        if p >= 1.0 {
            return self.edges[n];
        }
        // First knot with cumulative mass >= p.
        let j = self.cdf.partition_point(|&c| c < p);
        let i = j.saturating_sub(1).min(n - 1);
        let d = self.density[i];
        if d <= 0.0 {
            // Zero-density bin: jump to its right edge.
            return self.edges[i + 1];
        }
        self.edges[i] + (p - self.cdf[i]) / d
    }

    fn mean(&self) -> f64 {
        self.bars()
            .map(|(lo, hi, d)| d * 0.5 * (hi * hi - lo * lo))
            .sum()
    }

    fn variance(&self) -> f64 {
        let mu = self.mean();
        let e2: f64 = self
            .bars()
            .map(|(lo, hi, d)| d * (hi * hi * hi - lo * lo * lo) / 3.0)
            .sum();
        (e2 - mu * mu).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example() -> HistogramPdf {
        // Matches the spirit of paper Fig. 1(b): arbitrary histogram on [10, 20].
        HistogramPdf::from_masses(vec![10.0, 12.0, 15.0, 18.0, 20.0], vec![0.1, 0.4, 0.3, 0.2])
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(HistogramPdf::from_densities(vec![0.0], vec![]).is_err());
        assert!(HistogramPdf::from_densities(vec![0.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(HistogramPdf::from_densities(vec![1.0, 0.0], vec![1.0]).is_err());
        assert!(HistogramPdf::from_densities(vec![0.0, 0.0], vec![1.0]).is_err());
        assert!(HistogramPdf::from_densities(vec![0.0, 1.0], vec![-1.0]).is_err());
        assert!(HistogramPdf::from_densities(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(HistogramPdf::from_densities(vec![0.0, 1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn normalization_makes_unit_mass() {
        let h = HistogramPdf::from_densities(vec![0.0, 1.0, 3.0], vec![4.0, 2.0]).unwrap();
        // mass = 4*1 + 2*2 = 8 before normalization
        assert!((h.density(0.5) - 0.5).abs() < 1e-15);
        assert!((h.density(2.0) - 0.25).abs() < 1e-15);
        assert!((h.cdf(3.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_is_piecewise_linear_and_exact() {
        let h = example();
        assert_eq!(h.cdf(10.0), 0.0);
        assert!((h.cdf(12.0) - 0.1).abs() < 1e-15);
        assert!((h.cdf(15.0) - 0.5).abs() < 1e-15);
        assert!((h.cdf(18.0) - 0.8).abs() < 1e-15);
        assert_eq!(h.cdf(20.0), 1.0);
        // Linear inside a bin: halfway through [12,15] adds half of 0.4.
        assert!((h.cdf(13.5) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn bin_of_handles_edges() {
        let h = example();
        assert_eq!(h.bin_of(10.0), Some(0));
        assert_eq!(h.bin_of(12.0), Some(1)); // right-continuous
        assert_eq!(h.bin_of(20.0), Some(3)); // last edge belongs to last bin
        assert_eq!(h.bin_of(9.99), None);
        assert_eq!(h.bin_of(20.01), None);
    }

    #[test]
    fn quantile_is_exact_inverse() {
        let h = example();
        for p in [0.0, 0.05, 0.1, 0.3, 0.5, 0.8, 0.95, 1.0] {
            let x = h.quantile(p);
            assert!(
                (h.cdf(x) - p).abs() < 1e-12,
                "p = {p}, x = {x}, cdf = {}",
                h.cdf(x)
            );
        }
    }

    #[test]
    fn quantile_skips_zero_density_bins() {
        let h = HistogramPdf::from_masses(vec![0.0, 1.0, 2.0, 3.0], vec![0.5, 0.0, 0.5]).unwrap();
        // Exactly p = 0.5 must not land inside the dead bin (1,2).
        let x = h.quantile(0.5000001);
        assert!(x >= 2.0, "x = {x}");
    }

    #[test]
    fn uniform_single_bar_matches_uniform_pdf() {
        let h = HistogramPdf::uniform(2.0, 6.0).unwrap();
        let u = crate::UniformPdf::new(2.0, 6.0).unwrap();
        for x in [1.0, 2.0, 3.3, 6.0, 7.0] {
            assert!((h.density(x) - u.density(x)).abs() < 1e-15);
            assert!((h.cdf(x) - u.cdf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn equi_width_from_fn_recovers_triangle() {
        // Triangle density on [0,2] peaking at 1: f(x) = 1-|x-1|
        let h = HistogramPdf::equi_width_from_fn(0.0, 2.0, 400, |x| 1.0 - (x - 1.0).abs()).unwrap();
        assert!((h.cdf(1.0) - 0.5).abs() < 1e-6);
        assert!((h.cdf(0.5) - 0.125).abs() < 1e-4);
        assert!((h.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moments_closed_form() {
        let h = HistogramPdf::uniform(0.0, 12.0).unwrap();
        assert!((h.mean() - 6.0).abs() < 1e-12);
        assert!((h.variance() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_inside_support() {
        let h = example();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let x = h.sample(&mut rng);
            assert!((10.0..=20.0).contains(&x));
        }
    }

    #[test]
    fn cdf_many_matches_scalar_bitwise() {
        let h = example();
        // Includes out-of-support points, exact edges, and interior points.
        let xs = [
            5.0, 9.99, 10.0, 10.5, 12.0, 12.0, 13.5, 15.0, 17.9, 18.0, 19.99, 20.0, 25.0,
        ];
        let mut out = Vec::new();
        h.cdf_many_into(&xs, &mut out);
        assert_eq!(out.len(), xs.len());
        for (&x, &v) in xs.iter().zip(&out) {
            assert_eq!(v.to_bits(), h.cdf(x).to_bits(), "x = {x}");
        }
        // Buffer reuse: second call clears and refills.
        h.cdf_many_into(&xs[..3], &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn cdf_many_random_grids_match_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(77);
        use rand::Rng;
        for _ in 0..50 {
            let h = example();
            let mut xs: Vec<f64> = (0..40).map(|_| rng.gen_range(8.0..22.0)).collect();
            xs.sort_by(f64::total_cmp);
            let mut out = Vec::new();
            h.cdf_many_into(&xs, &mut out);
            for (&x, &v) in xs.iter().zip(&out) {
                assert_eq!(v.to_bits(), h.cdf(x).to_bits(), "x = {x}");
            }
        }
    }

    #[test]
    fn cdf_many_resume_chunks_match_one_shot_bitwise() {
        let h = example();
        let mut rng = StdRng::seed_from_u64(11);
        use rand::Rng;
        for chunk in [1usize, 2, 3, 5, 64] {
            let mut xs: Vec<f64> = (0..41).map(|_| rng.gen_range(8.0..22.0)).collect();
            xs.sort_by(f64::total_cmp);
            let mut whole = Vec::new();
            h.cdf_many_into(&xs, &mut whole);
            let mut chunked = vec![0.0; xs.len()];
            let mut bin = 0usize;
            let mut at = 0usize;
            while at < xs.len() {
                let end = (at + chunk).min(xs.len());
                h.cdf_many_resume(&xs[at..end], &mut bin, &mut chunked[at..end]);
                at = end;
            }
            for (i, (&w, &c)) in whole.iter().zip(&chunked).enumerate() {
                assert_eq!(w.to_bits(), c.to_bits(), "chunk {chunk} point {i}");
            }
        }
    }

    #[test]
    fn mass_between_subsets() {
        let h = example();
        assert!((h.mass_between(10.0, 20.0) - 1.0).abs() < 1e-15);
        assert!((h.mass_between(12.0, 15.0) - 0.4).abs() < 1e-15);
        assert_eq!(h.mass_between(15.0, 12.0), 0.0);
    }
}
