//! Query-set runner: executes a batch of queries under one strategy and
//! aggregates the per-phase statistics the figures plot.
//!
//! Both entry points route through [`BatchExecutor`]: [`run_queries`] on a
//! single worker (the paper's per-query measurements), and
//! [`run_queries_batched`] across a chosen thread count (the batch-scaling
//! experiment).

use std::time::Duration;

use cpnn_core::{BatchExecutor, CpnnQuery, Strategy, UncertainDb};

/// Aggregated statistics over a query set (each paper graph point "is an
/// average of the results for 100 queries").
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Number of queries executed.
    pub queries: usize,
    /// Mean end-to-end time per query.
    pub avg_total: Duration,
    /// Mean filtering time.
    pub avg_filter: Duration,
    /// Mean initialization time (distance pdfs + subregion table).
    pub avg_init: Duration,
    /// Mean verification time.
    pub avg_verify: Duration,
    /// Mean refinement / exact-evaluation time.
    pub avg_refine: Duration,
    /// Mean candidate-set size.
    pub avg_candidates: f64,
    /// Mean work counter (integrations / integrand evals / worlds).
    pub avg_integrations: f64,
    /// Fraction of queries fully resolved by verification alone.
    pub resolved_fraction: f64,
    /// Mean fraction of candidates still unknown after each verifier stage,
    /// keyed by stage name (empty unless the strategy verifies).
    pub unknown_fraction_after: Vec<(&'static str, f64)>,
}

/// Timing of a parallel batch run: the aggregated per-query statistics
/// plus the end-to-end wall clock the thread count actually delivered.
#[derive(Debug, Clone)]
pub struct BatchRunSummary {
    /// Per-query aggregation (identical in shape to a sequential run).
    pub run: RunSummary,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the whole batch.
    pub wall_time: Duration,
}

impl BatchRunSummary {
    /// Queries per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.run.queries as f64 / secs
    }
}

/// Run every query in `queries` with the given parameters and aggregate
/// (single worker; per-query timings are undisturbed by contention).
pub fn run_queries(
    db: &UncertainDb,
    queries: &[f64],
    threshold: f64,
    tolerance: f64,
    strategy: Strategy,
) -> RunSummary {
    run_queries_batched(db, queries, threshold, tolerance, strategy, 1).run
}

/// Run the query set across `threads` workers through the batch executor
/// (`0` = one per core) and aggregate.
pub fn run_queries_batched(
    db: &UncertainDb,
    queries: &[f64],
    threshold: f64,
    tolerance: f64,
    strategy: Strategy,
    threads: usize,
) -> BatchRunSummary {
    let batch: Vec<CpnnQuery> = queries
        .iter()
        .map(|&q| CpnnQuery::new(q, threshold, tolerance))
        .collect();
    let executor = BatchExecutor::new(threads);
    let out = executor.run_cpnn(db, &batch, strategy, &db.config().pipeline());

    let mut sum = RunSummary {
        queries: queries.len(),
        ..Default::default()
    };
    let mut total = Duration::ZERO;
    let mut filter = Duration::ZERO;
    let mut init = Duration::ZERO;
    let mut verify = Duration::ZERO;
    let mut refine = Duration::ZERO;
    let mut candidates = 0usize;
    let mut integrations = 0usize;
    let mut resolved = 0usize;
    // stage name -> (sum of fractions, count)
    let mut stage_acc: Vec<(&'static str, f64, usize)> = Vec::new();

    for res in &out.results {
        let res = res.as_ref().expect("query evaluation succeeds");
        let s = &res.stats;
        total += s.total_time();
        filter += s.filter_time;
        init += s.init_time;
        verify += s.verify_time;
        refine += s.refine_time;
        candidates += s.candidates;
        integrations += s.integrations;
        if s.resolved_by_verification {
            resolved += 1;
        }
        for st in &s.stages {
            let f = if s.candidates > 0 {
                st.unknown_after as f64 / s.candidates as f64
            } else {
                0.0
            };
            match stage_acc.iter_mut().find(|(n, _, _)| *n == st.name) {
                Some(entry) => {
                    entry.1 += f;
                    entry.2 += 1;
                }
                None => stage_acc.push((st.name, f, 1)),
            }
        }
    }

    let n = queries.len().max(1) as u32;
    sum.avg_total = total / n;
    sum.avg_filter = filter / n;
    sum.avg_init = init / n;
    sum.avg_verify = verify / n;
    sum.avg_refine = refine / n;
    sum.avg_candidates = candidates as f64 / n as f64;
    sum.avg_integrations = integrations as f64 / n as f64;
    sum.resolved_fraction = resolved as f64 / n as f64;
    sum.unknown_fraction_after = stage_acc
        .into_iter()
        // Average over all queries: stages that never ran left no unknowns
        // to report, so normalize by the query count, not the stage count.
        .map(|(name, acc, _)| (name, acc / n as f64))
        .collect();
    BatchRunSummary {
        run: sum,
        threads: out.summary.threads,
        wall_time: out.summary.wall_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpnn_datagen::{longbeach::longbeach_with, query_points, LongBeachConfig};

    fn db() -> UncertainDb {
        let cfg = LongBeachConfig {
            count: 2_000,
            ..LongBeachConfig::default()
        };
        UncertainDb::build(longbeach_with(3, cfg)).unwrap()
    }

    #[test]
    fn batched_run_matches_sequential_aggregation() {
        let db = db();
        let queries = query_points(9, 12);
        let seq = run_queries(&db, &queries, 0.3, 0.01, Strategy::Verified);
        let par = run_queries_batched(&db, &queries, 0.3, 0.01, Strategy::Verified, 4);
        assert_eq!(par.threads, 4);
        assert_eq!(seq.queries, par.run.queries);
        // Work counters are deterministic; timings are not.
        assert_eq!(seq.avg_candidates, par.run.avg_candidates);
        assert_eq!(seq.avg_integrations, par.run.avg_integrations);
        assert_eq!(seq.resolved_fraction, par.run.resolved_fraction);
        assert!(par.throughput() > 0.0);
    }

    #[test]
    fn summary_aggregates_phases() {
        let db = db();
        let queries = query_points(1, 5);
        let s = run_queries(&db, &queries, 0.3, 0.01, Strategy::Verified);
        assert_eq!(s.queries, 5);
        assert!(s.avg_candidates > 0.0);
        assert!(s.avg_total >= s.avg_refine);
        assert!(!s.unknown_fraction_after.is_empty());
        assert!(s.unknown_fraction_after.iter().all(|(_, f)| *f <= 1.0));
    }

    #[test]
    fn basic_strategy_has_no_stage_reports() {
        let db = db();
        let queries = query_points(2, 3);
        let s = run_queries(&db, &queries, 0.3, 0.01, Strategy::Basic);
        assert!(s.unknown_fraction_after.is_empty());
        assert!(s.avg_integrations > 0.0);
        assert_eq!(s.resolved_fraction, 0.0);
    }
}
