//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Packs `n` records into `⌈n/M⌉` full leaves by recursively slicing the
//! data into slabs along each dimension, then builds the upper levels the
//! same way. Produces a tree with ~100% leaf fill, which is what the paper's
//! static Long Beach workload wants.

use std::sync::Arc;

use crate::node::{Bounded, Child, LeafEntry, Node, Params};

/// Build a packed tree from `records`, returning the root node.
pub fn str_bulk_load<T, const D: usize>(
    records: Vec<LeafEntry<T, D>>,
    params: &Params,
) -> Node<T, D> {
    if records.is_empty() {
        return Node::empty();
    }
    let cap = params.max_entries;
    // Pack records into leaves.
    let mut level: Vec<Node<T, D>> = str_partition(records, cap, 0)
        .into_iter()
        .map(Node::Leaf)
        .collect();
    // Pack nodes upward until a single root remains.
    while level.len() > 1 {
        let children: Vec<Child<T, D>> = level
            .into_iter()
            .map(|node| Child {
                rect: node.mbr().expect("packed nodes are non-empty"),
                node: Arc::new(node),
            })
            .collect();
        level = str_partition(children, cap, 0)
            .into_iter()
            .map(Node::Internal)
            .collect();
    }
    level.pop().expect("at least one node")
}

/// Recursively tile `items` into groups of at most `cap`, slicing along
/// dimension `dim` first.
fn str_partition<E: Bounded<D>, const D: usize>(
    mut items: Vec<E>,
    cap: usize,
    dim: usize,
) -> Vec<Vec<E>> {
    let n = items.len();
    if n <= cap {
        return vec![items];
    }
    let leaves_needed = n.div_ceil(cap);
    if dim + 1 == D {
        // Last dimension: chunk sequentially.
        sort_by_center(&mut items, dim);
        return chunk(items, cap);
    }
    // Number of slabs along this dimension ~ P^(1/k) for k remaining dims.
    let k = (D - dim) as f64;
    let slabs = (leaves_needed as f64).powf(1.0 / k).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    sort_by_center(&mut items, dim);
    let mut out = Vec::new();
    for slab in chunk(items, slab_size) {
        out.extend(str_partition(slab, cap, dim + 1));
    }
    out
}

fn sort_by_center<E: Bounded<D>, const D: usize>(items: &mut [E], dim: usize) {
    items.sort_by(|a, b| a.bounds().center()[dim].total_cmp(&b.bounds().center()[dim]));
}

fn chunk<E>(items: Vec<E>, size: usize) -> Vec<Vec<E>> {
    let mut out = Vec::with_capacity(items.len().div_ceil(size));
    let mut cur = Vec::with_capacity(size);
    for it in items {
        cur.push(it);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn records_1d(n: usize) -> Vec<LeafEntry<usize, 1>> {
        (0..n)
            .map(|i| LeafEntry {
                rect: Rect::interval(i as f64, i as f64 + 0.5),
                item: i,
            })
            .collect()
    }

    #[test]
    fn empty_input_gives_empty_leaf() {
        let root: Node<usize, 1> = str_bulk_load(Vec::new(), &Params::default());
        assert_eq!(root.record_count(), 0);
        assert_eq!(root.height(), 1);
    }

    #[test]
    fn all_records_survive_packing() {
        let root = str_bulk_load(records_1d(1000), &Params::default());
        assert_eq!(root.record_count(), 1000);
    }

    #[test]
    fn packed_tree_is_shallow_and_full() {
        let params = Params::default();
        let root = str_bulk_load(records_1d(1000), &params);
        // 1000 records at fan-out 16: leaves = 63, level2 = 4, root. Height 3.
        assert_eq!(root.height(), 3);
        // Leaf fill should be near 100%: node count close to the minimum.
        let min_nodes = 63 + 4 + 1;
        assert!(
            root.node_count() <= min_nodes + 3,
            "node count {} too high",
            root.node_count()
        );
    }

    #[test]
    fn packs_2d_grids() {
        let records: Vec<LeafEntry<usize, 2>> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                LeafEntry {
                    rect: Rect::new([x, y], [x + 0.5, y + 0.5]),
                    item: i,
                }
            })
            .collect();
        let root = str_bulk_load(records, &Params::default());
        assert_eq!(root.record_count(), 400);
        assert!(root.height() >= 2);
    }
}
