//! # cpnn-pdf — probability substrate for the C-PNN reproduction
//!
//! This crate provides everything the paper assumes about probability
//! distributions on closed intervals (the *attribute uncertainty* model):
//!
//! * [`Pdf`] — the trait describing a probability density function bounded
//!   inside a closed *uncertainty region*, with density, cdf, quantile,
//!   sampling and moments.
//! * [`UniformPdf`] — the uniform distribution used for the Long Beach
//!   experiments (Sec. V-A of the paper).
//! * [`TruncatedGaussian`] — the Gaussian uncertainty pdf of Sec. V-B.5
//!   (mean at the region center, `σ = width/6`), renormalized on the region.
//! * [`HistogramPdf`] — the paper's canonical representation: an arbitrary
//!   pdf stored as a piecewise-constant histogram ("We represent a distance
//!   pdf of each object as a histogram", Sec. IV-A).
//! * [`integrate`] — numerical integration (Simpson, adaptive Simpson,
//!   Gauss–Legendre) used by the Basic method and refinement.
//! * [`special`] — `erf`/`erfc` implemented from scratch (no external math
//!   crates), accurate to ~1e-15.
//! * [`discretize()`] — mass-preserving conversion of any [`Pdf`] into an
//!   `N`-bar histogram (the paper approximates each Gaussian with a 300-bar
//!   histogram).
//!
//! Everything in this crate is deterministic given a seeded RNG, which is
//! what makes the experiment harness reproducible.

#![warn(missing_docs)]
// Validation code writes `!(x > 0.0)` deliberately: unlike `x <= 0.0`, the
// negated form also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod discretize;
pub mod error;
pub mod histogram;
pub mod integrate;
pub mod piecewise;
pub mod samples;
pub mod simd;
pub mod special;
pub mod traits;

mod gaussian;
mod uniform;

pub use discretize::discretize;
pub use error::PdfError;
pub use gaussian::TruncatedGaussian;
pub use histogram::HistogramPdf;
pub use piecewise::PiecewiseLinear;
pub use samples::{equi_depth_from_samples, histogram_from_samples};
pub use simd::SimdTier;
pub use traits::Pdf;
pub use uniform::UniformPdf;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PdfError>;
