//! Asynchronous query serving: a long-lived worker pool with
//! snapshot-swap updates.
//!
//! [`crate::batch::BatchExecutor`] answers a *batch* the caller assembled
//! up front; a standing service (the moving-object workloads of the
//! related literature, and the paper's own interactive-use motivation,
//! Sec. I) instead absorbs a continuous query *stream* while the
//! underlying uncertain objects change. [`QueryServer`] provides exactly
//! that on plain `std` primitives (no external runtime):
//!
//! * **submission queue** — callers [`submit`](QueryServer::submit)
//!   queries one at a time (or in micro-batches via
//!   [`submit_batch`](QueryServer::submit_batch)) into an `std::mpsc`
//!   channel and receive a [`Ticket`] that resolves to the result through
//!   a per-request response channel — no up-front batching;
//! * **persistent workers** — `threads` long-lived `std::thread` workers
//!   drain the queue, each owning a [`QueryScratch`] so steady-state
//!   throughput matches the batch executor (same reuse of
//!   verification/refinement buffers across queries);
//! * **snapshot-swap updates** — the database lives behind an [`Arc`] in
//!   a versioned [`Snapshot`]. Writers never mutate it in place: an
//!   [`update`](QueryServer::update) builds a *new* model
//!   (copy-on-write — see [`QueryServer::insert`] /
//!   [`QueryServer::remove`] for the 1-D database) and swaps the `Arc`
//!   atomically. A worker pins the snapshot it dequeued a job with, so
//!   every response is evaluated against exactly one consistent database
//!   version — reads never block on writes and never observe a half-applied
//!   update (property-tested in `tests/proptest_server.rs`).
//!
//! Results for a given snapshot version are bitwise identical to a
//! sequential [`crate::pipeline::cpnn`] run at any thread count: each
//! query's evaluation (including Monte-Carlo seeding) is deterministic
//! and independent.
//!
//! # Example
//!
//! ```
//! use cpnn_core::server::QueryServer;
//! use cpnn_core::{
//!     CpnnQuery, ObjectId, PipelineConfig, QuerySpec, Strategy, UncertainDb, UncertainObject,
//! };
//!
//! let db = UncertainDb::build(vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
//! ])
//! .unwrap();
//! let server = QueryServer::start(db, 2, PipelineConfig::default());
//!
//! // Stream queries; each ticket resolves independently.
//! let ticket = server.submit(0.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified));
//! let served = ticket.wait();
//! assert_eq!(served.result.unwrap().answers, vec![ObjectId(1)]);
//! assert_eq!(served.snapshot_version, 0);
//!
//! // Updates swap in a new snapshot; later queries see the new version.
//! let snap = server
//!     .insert(UncertainObject::uniform(ObjectId(3), 0.1, 0.2).unwrap())
//!     .unwrap();
//! assert_eq!(snap.version, 1);
//! let served = server
//!     .submit(0.0, QuerySpec::nn(0.3, 0.01, Strategy::Verified))
//!     .wait();
//! assert_eq!(served.snapshot_version, 1);
//! assert_eq!(served.result.unwrap().answers, vec![ObjectId(3)]);
//! let stats = server.shutdown();
//! assert_eq!(stats.served, 2);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::UncertainDb;
use crate::error::Result;
use crate::object::{ObjectId, UncertainObject};
use crate::pipeline::{
    cpnn_with, CpnnResult, DistanceModel, PipelineConfig, QueryScratch, QuerySpec,
};
use crate::shard::{ShardPoint, ShardableModel, ShardedDb};

/// A versioned, immutable database snapshot.
///
/// Version `0` is the model the server [started](QueryServer::start) with;
/// every successful [`QueryServer::update`] increments it by one. Holding a
/// `Snapshot` keeps that database version alive (it is an [`Arc`]) without
/// blocking the server from swapping in newer ones.
#[derive(Debug)]
pub struct Snapshot<M> {
    /// Monotone snapshot version (0 = the initial model).
    pub version: u64,
    /// The immutable model this version pins.
    pub model: Arc<M>,
}

impl<M> Clone for Snapshot<M> {
    fn clone(&self) -> Self {
        Self {
            version: self.version,
            model: Arc::clone(&self.model),
        }
    }
}

/// One served response: the query result plus the version of the snapshot
/// it was evaluated against.
#[derive(Debug)]
pub struct Served {
    /// The query outcome (per-query errors surface here, exactly as in a
    /// sequential run).
    pub result: Result<CpnnResult>,
    /// Which [`Snapshot::version`] answered this request.
    pub snapshot_version: u64,
}

/// Handle to one in-flight response (a single-use receiver).
#[derive(Debug)]
pub struct Ticket<T = Served>(Receiver<T>);

impl<T> Ticket<T> {
    /// Block until the response arrives.
    ///
    /// # Panics
    /// Panics if the serving worker died before responding (workers only
    /// terminate at shutdown, after the queue has drained).
    pub fn wait(self) -> T {
        self.0
            .recv()
            .expect("server worker alive while ticket pending")
    }

    /// Non-blocking poll: the response if it is ready, `None` if not yet.
    ///
    /// # Panics
    /// Panics if the serving worker died before responding (same contract
    /// as [`wait`](Self::wait)) — a dead worker must not look like a
    /// not-ready response to a polling loop.
    pub fn try_wait(&self) -> Option<T> {
        match self.0.try_recv() {
            Ok(v) => Some(v),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("server worker alive while ticket pending")
            }
        }
    }
}

/// Aggregate counters reported at [`QueryServer::shutdown`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Individual query responses sent (micro-batch members count one each).
    pub served: u64,
    /// Snapshot swaps applied.
    pub updates: u64,
    /// Verification-cache hits across all workers (0 unless the server's
    /// [`PipelineConfig`] enabled the cache; see [`crate::cache`]).
    pub cache_hits: u64,
    /// Verification-cache misses across all workers.
    pub cache_misses: u64,
}

enum Job<M: DistanceModel> {
    One {
        q: M::Query,
        spec: QuerySpec,
        reply: Sender<Served>,
    },
    /// A micro-batch: all members are evaluated by one worker against one
    /// pinned snapshot (a consistent multi-query read).
    Batch {
        jobs: Vec<(M::Query, QuerySpec)>,
        reply: Sender<Vec<Served>>,
    },
}

struct Shared<M> {
    /// The current snapshot. The lock is held only to clone or swap the
    /// `Arc` — never across query evaluation or snapshot rebuilding — so
    /// readers are effectively lock-free.
    current: Mutex<Snapshot<M>>,
    /// Mirror of `current.version`, updated *after* the swap. Workers keep
    /// a locally pinned snapshot and re-pin only when this moves, so the
    /// steady-state read path touches neither the lock nor the shared
    /// refcount (no cache-line ping-pong between workers).
    version: AtomicU64,
    /// Serializes writers so copy-on-write rebuilds never race (readers are
    /// unaffected).
    writer: Mutex<()>,
    served: AtomicU64,
    updates: AtomicU64,
    /// Per-worker verification-cache hits/misses, flushed after every job
    /// so [`QueryServer::stats`] reads are current.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl<M> Shared<M> {
    fn pin(&self) -> Snapshot<M> {
        self.current
            .lock()
            .expect("snapshot lock unpoisoned")
            .clone()
    }
}

/// A long-lived query-serving worker pool over an immutable, swappable
/// database snapshot. See the [module docs](self) for the full design.
pub struct QueryServer<M: DistanceModel> {
    shared: Arc<Shared<M>>,
    /// `Some` while serving; taken (and dropped, closing the queue) at
    /// shutdown.
    tx: Option<Sender<Job<M>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl<M> QueryServer<M>
where
    M: DistanceModel + Send + Sync + 'static,
    M::Query: Send + 'static,
{
    /// Start a server over `model` with `threads` persistent workers
    /// (`0` = one per available core) evaluating under `cfg`.
    ///
    /// Accepts the model by value or pre-wrapped in an [`Arc`] (so callers
    /// benchmarking several servers over one large database don't rebuild
    /// it).
    pub fn start(model: impl Into<Arc<M>>, threads: usize, cfg: PipelineConfig) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            current: Mutex::new(Snapshot {
                version: 0,
                model: model.into(),
            }),
            version: AtomicU64::new(0),
            writer: Mutex::new(()),
            served: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel::<Job<M>>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared, &cfg))
            })
            .collect();
        Self {
            shared,
            tx: Some(tx),
            workers,
            threads,
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pin the current snapshot (clones the `Arc`; the momentary lock is
    /// never held across evaluation or rebuilding).
    pub fn snapshot(&self) -> Snapshot<M> {
        self.shared.pin()
    }

    /// Enqueue one query; returns immediately with a [`Ticket`] for the
    /// response. The worker that dequeues it pins whatever snapshot is
    /// current *at dequeue time*.
    pub fn submit(&self, q: M::Query, spec: QuerySpec) -> Ticket {
        let (reply, ticket) = mpsc::channel();
        self.sender()
            .send(Job::One { q, spec, reply })
            .expect("serving queue open while server alive");
        Ticket(ticket)
    }

    /// Enqueue a micro-batch evaluated by a single worker against a single
    /// pinned snapshot: all responses share one `snapshot_version` (a
    /// consistent multi-query read under concurrent updates).
    pub fn submit_batch(&self, jobs: Vec<(M::Query, QuerySpec)>) -> Ticket<Vec<Served>> {
        let (reply, ticket) = mpsc::channel();
        self.sender()
            .send(Job::Batch { jobs, reply })
            .expect("serving queue open while server alive");
        Ticket(ticket)
    }

    /// Swap in a new snapshot built from the current one (copy-on-write).
    ///
    /// `rebuild` receives the current model and returns its replacement;
    /// on success the new snapshot (version = old + 1) becomes current and
    /// is returned. Writers are serialized against each other; readers are
    /// never blocked — in-flight queries keep the snapshot they pinned and
    /// finish against it.
    pub fn update<F>(&self, rebuild: F) -> Result<Snapshot<M>>
    where
        F: FnOnce(&M) -> Result<M>,
    {
        let _writers = self.shared.writer.lock().expect("writer lock unpoisoned");
        let base = self.shared.pin();
        let next = Snapshot {
            version: base.version + 1,
            model: Arc::new(rebuild(&base.model)?),
        };
        let swapped = next.clone();
        let mut current = self
            .shared
            .current
            .lock()
            .expect("snapshot lock unpoisoned");
        debug_assert_eq!(
            current.version, base.version,
            "writers are serialized, so the base cannot move underneath us"
        );
        *current = next;
        drop(current);
        // Publish after the swap: a worker that observes the new version
        // will find (at least) that snapshot behind the lock.
        self.shared
            .version
            .store(swapped.version, Ordering::Release);
        self.shared.updates.fetch_add(1, Ordering::Relaxed);
        Ok(swapped)
    }

    /// Counters so far (also returned by [`shutdown`](Self::shutdown)).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.shared.served.load(Ordering::Relaxed),
            updates: self.shared.updates.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Close the queue, drain every pending job, join the workers, and
    /// report totals. Dropping the server does the same without the report.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_workers();
        self.stats()
    }

    fn sender(&self) -> &Sender<Job<M>> {
        self.tx.as_ref().expect("sender taken only at shutdown")
    }

    fn join_workers(&mut self) {
        // Dropping the sender closes the queue; workers finish what is
        // enqueued and exit on the resulting RecvError.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            w.join().expect("serving worker exits cleanly");
        }
    }
}

impl<M: DistanceModel> Drop for QueryServer<M> {
    fn drop(&mut self) {
        // `join_workers` inlined: Drop cannot rely on the Send/Sync bounds
        // of the inherent impl, but dropping the sender and joining needs
        // neither.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl QueryServer<UncertainDb> {
    /// Copy-on-write insert: rebuilds the 1-D database with `object` added
    /// and swaps it in. Fails on a duplicate id (the snapshot is untouched).
    pub fn insert(&self, object: UncertainObject) -> Result<Snapshot<UncertainDb>> {
        self.update(move |db| {
            let mut objects = db.objects().to_vec();
            objects.push(object);
            UncertainDb::with_config(objects, *db.config())
        })
    }

    /// Copy-on-write remove: rebuilds the 1-D database without `id` and
    /// swaps it in. Removing an absent id still swaps (contents unchanged,
    /// version advanced).
    pub fn remove(&self, id: ObjectId) -> Result<Snapshot<UncertainDb>> {
        self.update(move |db| {
            let objects: Vec<UncertainObject> = db
                .objects()
                .iter()
                .filter(|o| o.id() != id)
                .cloned()
                .collect();
            UncertainDb::with_config(objects, *db.config())
        })
    }
}

/// Per-shard copy-on-write updates for a server over a [`ShardedDb`]:
/// the snapshot holds one `Arc` per shard, so `insert`/`remove` rebuild
/// **only the owning shard** — O(shard) instead of O(database) — while
/// every untouched shard `Arc` is shared between the old and new
/// snapshot. Snapshot-atomicity guarantees are unchanged: readers pin a
/// whole `ShardedDb` version and never observe a half-swapped shard set
/// (property-tested in `tests/proptest_shard.rs`).
impl<M> QueryServer<ShardedDb<M>>
where
    M: ShardableModel + Send + Sync + 'static,
    M::Query: ShardPoint + Send + 'static,
    M::Config: Send + Sync + 'static,
{
    /// Copy-on-write insert touching only the owning shard. Fails on a
    /// duplicate id anywhere in the database (the snapshot is untouched).
    pub fn insert(&self, object: M::Object) -> Result<Snapshot<ShardedDb<M>>> {
        self.update(move |db| db.with_inserted(object))
    }

    /// Copy-on-write remove touching only the shard that stores `id`.
    /// Removing an absent id still swaps (contents unchanged, version
    /// advanced), mirroring the unsharded server.
    pub fn remove(&self, id: ObjectId) -> Result<Snapshot<ShardedDb<M>>> {
        self.update(move |db| Ok(db.with_removed(id)))
    }
}

fn worker_loop<M>(rx: &Mutex<Receiver<Job<M>>>, shared: &Shared<M>, cfg: &PipelineConfig)
where
    M: DistanceModel,
{
    let mut scratch = QueryScratch::new();
    // Last cache counters flushed to `shared` (deltas go out after every
    // job so `stats()` reads stay current).
    let mut flushed = crate::cache::CacheStats::default();
    // The worker's locally pinned snapshot: refreshed from `shared` only
    // when the published version moves, so steady-state serving touches
    // neither the snapshot lock nor the shared `Arc` refcount.
    let mut pinned = shared.pin();
    loop {
        // Take the queue lock only for the dequeue itself, never across
        // query evaluation.
        let job = match rx.lock().expect("queue lock unpoisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed and drained: shutdown
        };
        if shared.version.load(Ordering::Acquire) != pinned.version {
            pinned = shared.pin();
        }
        // Pin the evaluated version on the scratch *before* evaluating:
        // a snapshot swap since the last job invalidates the worker's
        // verification cache, so no response is ever served from state
        // computed against a version other than the one it cites.
        scratch.set_snapshot_version(pinned.version);
        match job {
            Job::One { q, spec, reply } => {
                let result = cpnn_with(&*pinned.model, &q, &spec, cfg, &mut scratch);
                shared.served.fetch_add(1, Ordering::Relaxed);
                // Counters flush *before* the reply: once a ticket
                // resolves, `stats()` already covers its query.
                flush_cache_counters(shared, &scratch, &mut flushed);
                // A dropped ticket (fire-and-forget caller) is fine.
                let _ = reply.send(Served {
                    result,
                    snapshot_version: pinned.version,
                });
            }
            Job::Batch { jobs, reply } => {
                let served: Vec<Served> = jobs
                    .into_iter()
                    .map(|(q, spec)| Served {
                        result: cpnn_with(&*pinned.model, &q, &spec, cfg, &mut scratch),
                        snapshot_version: pinned.version,
                    })
                    .collect();
                shared
                    .served
                    .fetch_add(served.len() as u64, Ordering::Relaxed);
                flush_cache_counters(shared, &scratch, &mut flushed);
                let _ = reply.send(served);
            }
        }
    }
}

/// Push the delta between a worker's scratch counters and its last flush
/// into the shared totals.
fn flush_cache_counters<M>(
    shared: &Shared<M>,
    scratch: &QueryScratch,
    flushed: &mut crate::cache::CacheStats,
) {
    let now = scratch.cache_stats();
    shared
        .cache_hits
        .fetch_add(now.hits - flushed.hits, Ordering::Relaxed);
    shared
        .cache_misses
        .fetch_add(now.misses - flushed.misses, Ordering::Relaxed);
    *flushed = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::pipeline::{cpnn, Strategy};

    fn db(n: u64) -> UncertainDb {
        let objects: Vec<UncertainObject> = (0..n)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 100.0;
                UncertainObject::uniform(ObjectId(i), lo, lo + 3.0 + (i % 5) as f64).unwrap()
            })
            .collect();
        UncertainDb::build(objects).unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::nn(0.3, 0.01, Strategy::Verified)
    }

    #[test]
    fn streamed_results_match_sequential_at_any_thread_count() {
        let db = Arc::new(db(40));
        let cfg = EngineConfig::default().pipeline();
        let points: Vec<f64> = (0..30).map(|i| (i as f64 * 13.7) % 110.0 - 5.0).collect();
        let expected: Vec<CpnnResult> = points
            .iter()
            .map(|q| cpnn(&*db, q, &spec(), &cfg).unwrap())
            .collect();
        for threads in [1, 2, 4, 8] {
            let server = QueryServer::<UncertainDb>::start(Arc::clone(&db), threads, cfg);
            let tickets: Vec<Ticket> = points.iter().map(|&q| server.submit(q, spec())).collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let served = t.wait();
                assert_eq!(served.snapshot_version, 0);
                let got = served.result.unwrap();
                assert_eq!(
                    got.answers, expected[i].answers,
                    "query {i}, {threads} threads"
                );
                assert_eq!(got.reports.len(), expected[i].reports.len());
                for (a, b) in got.reports.iter().zip(&expected[i].reports) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.label, b.label);
                    assert_eq!(a.bound.lo(), b.bound.lo());
                    assert_eq!(a.bound.hi(), b.bound.hi());
                }
            }
            let stats = server.shutdown();
            assert_eq!(stats.served, points.len() as u64);
            assert_eq!(stats.updates, 0);
        }
    }

    #[test]
    fn micro_batch_pins_one_snapshot_and_preserves_order() {
        let server = QueryServer::start(db(25), 4, PipelineConfig::default());
        let jobs: Vec<(f64, QuerySpec)> = (0..10).map(|i| (i as f64 * 9.0, spec())).collect();
        let ticket = server.submit_batch(jobs.clone());
        server
            .insert(UncertainObject::uniform(ObjectId(900), 0.0, 1.0).unwrap())
            .unwrap();
        let served = ticket.wait();
        assert_eq!(served.len(), jobs.len());
        let v = served[0].snapshot_version;
        assert!(served.iter().all(|s| s.snapshot_version == v));
        // Order inside the batch is submission order.
        let snap = server.snapshot();
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn updates_advance_versions_and_change_answers() {
        let server = QueryServer::start(db(10), 2, PipelineConfig::default());
        let before = server.submit(0.0, spec()).wait();
        assert_eq!(before.snapshot_version, 0);
        let snap = server
            .insert(UncertainObject::uniform(ObjectId(777), 0.05, 0.15).unwrap())
            .unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.len(), 11);
        let after = server.submit(0.0, spec()).wait();
        assert_eq!(after.snapshot_version, 1);
        assert!(after.result.unwrap().answers.contains(&ObjectId(777)));
        let removed = server.remove(ObjectId(777)).unwrap();
        assert_eq!(removed.version, 2);
        let back = server.submit(0.0, spec()).wait();
        assert_eq!(back.snapshot_version, 2);
        assert_eq!(back.result.unwrap().answers, before.result.unwrap().answers);
        let stats = server.shutdown();
        assert_eq!(stats.served, 3);
        assert_eq!(stats.updates, 2);
    }

    #[test]
    fn duplicate_insert_fails_without_touching_the_snapshot() {
        let server = QueryServer::start(db(5), 1, PipelineConfig::default());
        let err = server.insert(UncertainObject::uniform(ObjectId(2), 0.0, 1.0).unwrap());
        assert!(err.is_err());
        assert_eq!(server.snapshot().version, 0);
        assert_eq!(server.stats().updates, 0);
    }

    #[test]
    fn per_query_errors_surface_in_their_ticket() {
        let server = QueryServer::start(db(5), 2, PipelineConfig::default());
        let bad = server.submit(f64::NAN, spec()).wait();
        assert!(bad.result.is_err());
        let good = server.submit(10.0, spec()).wait();
        assert!(good.result.is_ok());
    }

    #[test]
    fn pinned_snapshot_outlives_later_updates() {
        let server = QueryServer::start(db(8), 1, PipelineConfig::default());
        let pinned = server.snapshot();
        server.remove(ObjectId(0)).unwrap();
        server.remove(ObjectId(1)).unwrap();
        assert_eq!(pinned.version, 0);
        assert_eq!(pinned.model.len(), 8);
        assert_eq!(server.snapshot().model.len(), 6);
    }

    #[test]
    fn sharded_server_updates_rebuild_only_the_owning_shard() {
        let sharded = ShardedDb::<UncertainDb>::from_model(&db(40), 4).unwrap();
        let server = QueryServer::start(sharded, 2, PipelineConfig::default());
        let v0 = server.snapshot();
        let snap = server
            .insert(UncertainObject::uniform(ObjectId(700), 0.05, 0.15).unwrap())
            .unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.model.len(), 41);
        // Per-shard COW: all but one shard Arc is shared with v0.
        let shared = (0..4)
            .filter(|&s| std::ptr::eq(v0.model.shard_model(s), snap.model.shard_model(s)))
            .count();
        assert_eq!(shared, 3);
        let served = server.submit(0.1, spec()).wait();
        assert_eq!(served.snapshot_version, 1);
        assert!(served.result.unwrap().answers.contains(&ObjectId(700)));
        let removed = server.remove(ObjectId(700)).unwrap();
        assert_eq!(removed.model.len(), 40);
        let dup = server.insert(UncertainObject::uniform(ObjectId(3), 0.0, 1.0).unwrap());
        assert!(dup.is_err());
        assert_eq!(server.snapshot().version, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let server = QueryServer::start(db(30), 2, PipelineConfig::default());
        let tickets: Vec<Ticket> = (0..50)
            .map(|i| server.submit(i as f64 * 2.0, spec()))
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.served, 50);
        for t in tickets {
            // Workers drained the queue before exiting, so every response
            // is already buffered in its channel.
            assert!(t.try_wait().is_some());
        }
    }
}
