//! `cpnn` — command-line front end for the uncertain-data query engine.
//!
//! ```text
//! cpnn generate --count 53144 --seed 7 --out data.cpnn     # build a dataset snapshot
//! cpnn info data.cpnn                                      # dataset statistics
//! cpnn pnn data.cpnn --q 4200                              # exact probabilities
//! cpnn cpnn data.cpnn --q 4200 --p 0.3 --delta 0.01        # constrained query (VR)
//! cpnn cpnn data.cpnn --q 4200 --p 0.3 --strategy basic    # baseline strategies
//! cpnn cpnn data.cpnn --batch 10000 --threads 8 --p 0.3    # parallel batch over
//!                                                          # random query points
//! cpnn knn data.cpnn --q 4200 --k 3 --p 0.5                # constrained k-NN
//! cpnn range data.cpnn --lo 100 --hi 200 --p 0.5           # probabilistic range
//! cpnn serve data.cpnn --threads 8                         # long-lived query server
//!                                                          # (streams queries from stdin)
//! ```

use std::collections::VecDeque;
use std::io::{BufRead, IsTerminal as _, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use cpnn_core::persist::{load_from_path, load_objects_from_path, save_to_path};
use cpnn_core::{
    pipeline, BatchExecutor, CacheConfig, CpnnQuery, EngineConfig, FileBackend, ObjectId,
    QueryServer, QuerySpec, Served, ShardBalance, ShardedDb, SharedCacheConfig, Strategy, Ticket,
    UncertainDb, UncertainDb2d, UncertainObject, UpdateOutcome,
};
use cpnn_datagen::{
    longbeach::longbeach_with, objects_2d, query_points_in, LongBeachConfig, Synthetic2dConfig,
};

mod args;
mod distributed;

use args::{ArgBag, UsageError};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Ok(());
    };
    let mut bag = ArgBag::parse(&argv[1..])?;
    match cmd.as_str() {
        "generate" => generate(&mut bag),
        "info" => info(&mut bag),
        "pnn" => pnn(&mut bag),
        "cpnn" => cpnn(&mut bag),
        "knn" => knn(&mut bag),
        "knn2d" => knn2d(&mut bag),
        "range" => range(&mut bag),
        "serve" => serve(&mut bag),
        "shard-split" => distributed::shard_split(&mut bag),
        "shard-serve" => distributed::shard_serve(&mut bag),
        "route" => distributed::route(&mut bag),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(Box::new(UsageError(format!("unknown command `{other}`")))),
    }
}

fn print_usage() {
    eprintln!(
        "usage: cpnn <command> [options]\n\n\
         commands:\n\
         \x20 generate --out FILE [--count N] [--seed S]   create a synthetic dataset snapshot\n\
         \x20 info FILE                                    dataset statistics\n\
         \x20 pnn FILE --q Q [--top N]                     exact qualification probabilities\n\
         \x20 cpnn FILE --q Q --p P [--delta D] [--strategy vr|basic|refine|mc] [--shards N]\n\
         \x20           [--shard-balance width|quantile] [--cache N] [--cache-quantum EPS]\n\
         \x20           [--shared-cache N] [--cache-ttl SECS]\n\
         \x20 cpnn FILE --batch N --p P [--threads T] [--seed S] [--delta D] [--strategy S]\n\
         \x20           [--shards N] [--shard-balance B] [--cache N] [--cache-quantum EPS]\n\
         \x20           [--shared-cache N] [--cache-ttl SECS]\n\
         \x20                                              batch over N random query points\n\
         \x20                                              (T = 0 means one per core; shards > 1\n\
         \x20                                              fans each query out across a\n\
         \x20                                              domain-partitioned database —\n\
         \x20                                              equal-width slabs by default,\n\
         \x20                                              equal-count with --shard-balance\n\
         \x20                                              quantile; --cache N memoizes\n\
         \x20                                              verification state for up to N query\n\
         \x20                                              points per worker, snapped to an\n\
         \x20                                              EPS-wide grid; --shared-cache N adds\n\
         \x20                                              a process-wide second tier that all\n\
         \x20                                              workers consult on local misses and\n\
         \x20                                              memoizes verification outcomes, with\n\
         \x20                                              optional --cache-ttl entry lifetime)\n\
         \x20 knn FILE --q Q --k K --p P [--delta D]       constrained probabilistic k-NN\n\
         \x20 knn2d --qx X --qy Y --p P [--k K] [--count N] [--seed S] [--delta D]\n\
         \x20       [--domain D] [--shards N] [--shard-balance B] [--cache N]\n\
         \x20       [--cache-quantum EPS] [--shared-cache N] [--cache-ttl SECS]\n\
         \x20                                              constrained 2-D k-NN over a synthetic\n\
         \x20                                              disk/rectangle dataset on [0, D]²\n\
         \x20 range FILE --lo A --hi B --p P               probabilistic range query\n\
         \x20 serve FILE [--threads T] [--queries FILE] [--shards N] [--shard-balance B]\n\
         \x20       [--cache N] [--cache-quantum EPS]      long-lived query server: stream\n\
         \x20       [--shared-cache N] [--cache-ttl SECS]\n\
         \x20       [--data-dir DIR] [--checkpoint-every N] queries from stdin (or FILE) through\n\
         \x20                                              a worker pool; insert/remove are\n\
         \x20                                              O(log n) path-copying snapshot swaps,\n\
         \x20                                              and consecutive update lines coalesce\n\
         \x20                                              into one swap; --data-dir makes every\n\
         \x20                                              publish durable (checkpoint + write-\n\
         \x20                                              ahead journal) and recovers from DIR\n\
         \x20                                              on restart (FILE then only seeds a\n\
         \x20                                              fresh DIR); `serve help` for the\n\
         \x20                                              protocol\n\
         \x20 shard-split FILE --out DIR [--shards N]      partition a dataset into per-shard\n\
         \x20             [--shard-balance width|quantile] durable data dirs (DIR/shard{{i}})\n\
         \x20                                              plus a DIR/shards.cpsm map for\n\
         \x20                                              `route`\n\
         \x20 shard-serve DIR [--listen ADDR] [--threads T] [--checkpoint-every N]\n\
         \x20                                              host one shard as its own process:\n\
         \x20                                              recover DIR (checkpoint + journal),\n\
         \x20                                              serve filter/update frames on a\n\
         \x20                                              socket (default DIR/shard.sock)\n\
         \x20                                              until killed; restart to recover\n\
         \x20 route MAPFILE [--queries FILE] [--timeout-ms N] [--retries N] [--backoff-ms N]\n\
         \x20                                              query router over shard processes:\n\
         \x20                                              same line protocol as `serve`, with\n\
         \x20                                              horizon-pruned fan-out, router-side\n\
         \x20                                              verification, and typed `unavailable`\n\
         \x20                                              degradation when a shard dies"
    );
}

fn load(bag: &mut ArgBag) -> Result<UncertainDb, Box<dyn std::error::Error>> {
    let path: PathBuf = bag.positional("dataset file")?;
    Ok(load_from_path(&path)?)
}

fn generate(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let out: PathBuf = bag.required("out")?;
    let count: usize = bag.optional("count")?.unwrap_or(53_144);
    let seed: u64 = bag.optional("seed")?.unwrap_or(0xC0FFEE);
    bag.finish()?;
    let cfg = LongBeachConfig {
        count,
        ..LongBeachConfig::default()
    };
    let db = UncertainDb::build(longbeach_with(seed, cfg))?;
    save_to_path(&db, &out)?;
    println!(
        "wrote {} objects (seed {seed}) to {}",
        db.len(),
        out.display()
    );
    Ok(())
}

fn info(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let db = load(bag)?;
    bag.finish()?;
    let (lo, hi) = db.domain().unwrap_or((0.0, 0.0));
    let mut widths: Vec<f64> = db
        .objects()
        .iter()
        .map(|o| {
            let (a, b) = o.region();
            b - a
        })
        .collect();
    widths.sort_by(f64::total_cmp);
    let mid = widths.len() / 2;
    println!("objects : {}", db.len());
    println!("domain  : [{lo:.2}, {hi:.2}]");
    if !widths.is_empty() {
        println!(
            "widths  : min {:.3}  median {:.3}  max {:.3}",
            widths[0],
            widths[mid],
            widths[widths.len() - 1]
        );
    }
    Ok(())
}

fn pnn(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let db = load(bag)?;
    let q: f64 = bag.required("q")?;
    let top: usize = bag.optional("top")?.unwrap_or(10);
    bag.finish()?;
    let res = db.pnn(q)?;
    println!(
        "{} candidates, {} subregions, evaluated in {:?}",
        res.stats.candidates,
        res.stats.subregions,
        res.stats.total_time()
    );
    for (id, p) in res.probabilities.iter().take(top) {
        println!("  {id}: {:.4}", p);
    }
    Ok(())
}

fn parse_strategy(name: &str) -> Result<Strategy, UsageError> {
    match name {
        "vr" | "verified" => Ok(Strategy::Verified),
        "basic" => Ok(Strategy::Basic),
        "refine" => Ok(Strategy::RefineOnly),
        "mc" | "montecarlo" => Ok(Strategy::MonteCarlo {
            worlds: 10_000,
            seed: 7,
        }),
        other => Err(UsageError(format!("unknown strategy `{other}`"))),
    }
}

/// Shared `--shard-balance width|quantile` parsing (equal-width slabs by
/// default; `quantile` places slab boundaries at object-center quantiles
/// so clustered data still shards evenly).
fn shard_balance_args(bag: &mut ArgBag) -> Result<ShardBalance, UsageError> {
    match bag.optional::<String>("shard-balance")? {
        None => Ok(ShardBalance::default()),
        Some(name) => ShardBalance::parse(&name).ok_or_else(|| {
            UsageError(format!(
                "unknown --shard-balance `{name}` (expected `width` or `quantile`)"
            ))
        }),
    }
}

/// Shared `--cache N` / `--cache-quantum EPS` / `--shared-cache N` /
/// `--cache-ttl SECS` parsing (capacity 0, the default, disables each
/// tier). `--shared-cache` alone implies a per-thread L1 of the same
/// capacity, since the shared tier is only consulted on L1 misses.
fn cache_args(bag: &mut ArgBag) -> Result<(CacheConfig, SharedCacheConfig), UsageError> {
    let capacity: Option<usize> = bag.optional("cache")?;
    let quantum: f64 = bag.optional("cache-quantum")?.unwrap_or(0.0);
    let shared: usize = bag.optional("shared-cache")?.unwrap_or(0);
    let ttl: Option<f64> = bag.optional("cache-ttl")?;
    if !(quantum.is_finite() && quantum >= 0.0) {
        return Err(UsageError(format!(
            "--cache-quantum must be a finite value >= 0, got {quantum}"
        )));
    }
    if capacity == Some(0) && shared > 0 {
        return Err(UsageError(
            "--shared-cache requires the per-thread cache: drop `--cache 0`".into(),
        ));
    }
    // The shared tier sits behind the per-thread tier, so enabling it
    // without --cache defaults the per-thread capacity to match.
    let capacity = capacity.unwrap_or(if shared > 0 { shared } else { 0 });
    if quantum > 0.0 && capacity == 0 {
        return Err(UsageError(
            "--cache-quantum has no effect without --cache N (N > 0 enables the cache)".into(),
        ));
    }
    let mut shared_cfg = SharedCacheConfig::new(shared);
    if let Some(secs) = ttl {
        if shared == 0 {
            return Err(UsageError(
                "--cache-ttl has no effect without --shared-cache N (N > 0 enables the shared \
                 tier)"
                    .into(),
            ));
        }
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(UsageError(format!(
                "--cache-ttl must be a finite number of seconds >= 0, got {secs}"
            )));
        }
        shared_cfg = shared_cfg.with_ttl(std::time::Duration::from_secs_f64(secs));
    }
    Ok((CacheConfig::new(capacity, quantum), shared_cfg))
}

fn cpnn(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let path: PathBuf = bag.positional("dataset file")?;
    let shards: usize = bag.optional("shards")?.unwrap_or(1);
    let balance = shard_balance_args(bag)?;
    let batch = bag.optional::<usize>("batch")?;
    let (cache, shared_cache) = cache_args(bag)?;
    // One storage layout, built once from the snapshot's raw objects: a
    // ShardedDb whose single-shard case *is* the unsharded database
    // (equivalence is property-tested), so there is no second code path.
    let db = UncertainDb::build_sharded_with(load_objects_from_path(&path)?, shards, balance)?;
    if shards > 1 {
        eprintln!(
            "sharded into {} domain slabs: sizes {:?}",
            db.num_shards(),
            db.shard_sizes()
        );
    }
    let mut cfg = db.pipeline_config();
    cfg.cache = cache;
    cfg.shared_cache = shared_cache;
    if let Some(count) = batch {
        return cpnn_batch(bag, &db, count, &cfg);
    }
    let (query, strategy) = cpnn_query_args(bag)?;
    let spec = QuerySpec::nn(query.threshold, query.tolerance, strategy);
    warn_snapped(&cfg.cache, &[query.q]);
    print_cpnn_result(&pipeline::cpnn(&db, &query.q, &spec, &cfg)?);
    Ok(())
}

/// One-shot queries with `--cache-quantum` evaluate the *snapped* point;
/// say so, since the output otherwise gives no hint the point moved.
fn warn_snapped(cache: &CacheConfig, coords: &[f64]) {
    if !cache.is_enabled() || cache.quantum <= 0.0 {
        return;
    }
    let snapped: Vec<f64> = coords
        .iter()
        .map(|&c| cpnn_core::cache::quantize_coord(c, cache.quantum))
        .collect();
    if snapped != coords {
        eprintln!(
            "cache quantum {} snapped the query point {:?} -> {:?}",
            cache.quantum, coords, snapped
        );
    }
}

/// Shared `--q/--p/--delta/--strategy` parsing for the one-shot `cpnn`
/// paths (flat and sharded).
fn cpnn_query_args(bag: &mut ArgBag) -> Result<(CpnnQuery, Strategy), Box<dyn std::error::Error>> {
    let q: f64 = bag.required("q")?;
    let p: f64 = bag.required("p")?;
    let delta: f64 = bag.optional("delta")?.unwrap_or(0.01);
    let strategy = parse_strategy(
        &bag.optional::<String>("strategy")?
            .unwrap_or_else(|| "vr".into()),
    )?;
    bag.finish()?;
    Ok((CpnnQuery::new(q, p, delta), strategy))
}

fn print_cpnn_result(res: &cpnn_core::CpnnResult) {
    println!(
        "answers: {:?}",
        res.answers.iter().map(|id| id.0).collect::<Vec<_>>()
    );
    println!(
        "candidates {} | resolved by verification: {} | refined {} | total {:?}",
        res.stats.candidates,
        res.stats.resolved_by_verification,
        res.stats.refined_objects,
        res.stats.total_time()
    );
    for r in res.reports.iter().filter(|r| r.bound.hi() > 0.01) {
        println!("  {}: {} -> {:?}", r.id, r.bound, r.label);
    }
}

/// Parsed arguments shared by the flat and sharded `--batch` paths.
struct BatchArgs {
    p: f64,
    delta: f64,
    threads: usize,
    seed: u64,
    strategy: Strategy,
}

fn batch_args(bag: &mut ArgBag) -> Result<BatchArgs, Box<dyn std::error::Error>> {
    let p: f64 = bag.required("p")?;
    let delta: f64 = bag.optional("delta")?.unwrap_or(0.01);
    let threads: usize = bag.optional("threads")?.unwrap_or(0);
    let seed: u64 = bag.optional("seed")?.unwrap_or(42);
    let strategy = parse_strategy(
        &bag.optional::<String>("strategy")?
            .unwrap_or_else(|| "vr".into()),
    )?;
    bag.finish()?;
    Ok(BatchArgs {
        p,
        delta,
        threads,
        seed,
        strategy,
    })
}

/// `cpnn FILE --batch N [--shards S]`: evaluate `N` random query points
/// concurrently through the shard-aware batch executor (`(query, shard)`
/// work units; one shard is the unsharded case) and report aggregate
/// statistics.
fn cpnn_batch(
    bag: &mut ArgBag,
    db: &ShardedDb<UncertainDb>,
    count: usize,
    cfg: &cpnn_core::PipelineConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    let a = batch_args(bag)?;
    let (lo, hi) = db
        .extent()
        .map(|e| (e.lo[0], e.hi[0]))
        .unwrap_or((0.0, 1.0));
    let jobs: Vec<(f64, QuerySpec)> = query_points_in(a.seed, count, lo, hi)
        .into_iter()
        .map(|q| (q, QuerySpec::nn(a.p, a.delta, a.strategy)))
        .collect();
    let out = BatchExecutor::new(a.threads).run_sharded(db, &jobs, cfg);
    print_batch_outcome(&out)
}

fn print_batch_outcome(out: &cpnn_core::BatchOutcome) -> Result<(), Box<dyn std::error::Error>> {
    let s = &out.summary;
    println!(
        "{} queries on {} threads in {:?}  ({:.0} queries/s, parallel efficiency {:.2}x)",
        s.queries,
        s.threads,
        s.wall_time,
        s.throughput(),
        s.parallel_efficiency()
    );
    println!(
        "errors {} | answers {} | avg candidates {:.1} | resolved by verification {:.1}%",
        s.errors,
        s.answers,
        s.candidates as f64 / s.queries.max(1) as f64,
        100.0 * s.resolved_by_verification as f64 / s.queries.max(1) as f64
    );
    println!(
        "per-query time: filter {:?} | init {:?} | verify {:?} | refine {:?}",
        s.filter_time / s.queries.max(1) as u32,
        s.init_time / s.queries.max(1) as u32,
        s.verify_time / s.queries.max(1) as u32,
        s.refine_time / s.queries.max(1) as u32
    );
    if s.cache_hits + s.shared_hits + s.cache_misses > 0 {
        println!(
            "cache: {} hits / {} shared hits / {} misses ({:.1}% hit rate, {} memo \
             short-circuits)",
            s.cache_hits,
            s.shared_hits,
            s.cache_misses,
            100.0 * s.cache_hit_rate(),
            s.outcome_hits
        );
    }
    if let Some(err) = out.results.iter().filter_map(|r| r.as_ref().err()).next() {
        if s.errors == s.queries {
            // Every query failed (e.g. an invalid threshold): that is a
            // usage error, not a result.
            return Err(Box::new(err.clone()));
        }
        eprintln!("first of {} error(s): {err}", s.errors);
    }
    Ok(())
}

fn knn(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let db = load(bag)?;
    let q: f64 = bag.required("q")?;
    let k: usize = bag.required("k")?;
    let p: f64 = bag.required("p")?;
    let delta: f64 = bag.optional("delta")?.unwrap_or(0.0);
    bag.finish()?;
    let res = db.cknn(q, k, p, delta)?;
    println!(
        "answers: {:?}  ({} candidates, {} integrations)",
        res.answers.iter().map(|id| id.0).collect::<Vec<_>>(),
        res.stats.candidates,
        res.stats.integrations
    );
    Ok(())
}

/// `cpnn knn2d`: constrained probabilistic k-NN over a synthetic 2-D
/// dataset (mixed uniform disks and rectangles) — the ROADMAP's "2-D k-NN"
/// workload, running `pipeline::cpnn` with `k > 1` over `UncertainDb2d`,
/// optionally domain-sharded with `--shards`.
fn knn2d(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let qx: f64 = bag.required("qx")?;
    let qy: f64 = bag.required("qy")?;
    let p: f64 = bag.required("p")?;
    let k: usize = bag.optional("k")?.unwrap_or(3);
    let delta: f64 = bag.optional("delta")?.unwrap_or(0.0);
    let count: usize = bag.optional("count")?.unwrap_or(5_000);
    let seed: u64 = bag.optional("seed")?.unwrap_or(0x2D);
    let domain: f64 = bag.optional("domain")?.unwrap_or(1_000.0);
    let shards: usize = bag.optional("shards")?.unwrap_or(1);
    let balance = shard_balance_args(bag)?;
    let (cache, shared_cache) = cache_args(bag)?;
    bag.finish()?;
    let cfg2d = Synthetic2dConfig {
        count,
        domain,
        ..Synthetic2dConfig::default()
    };
    if !(domain.is_finite() && domain > 2.0 * cfg2d.max_radius) {
        return Err(Box::new(UsageError(format!(
            "--domain must be a finite value greater than {} (2x the max object radius)",
            2.0 * cfg2d.max_radius
        ))));
    }
    let objects = objects_2d(seed, cfg2d);
    let db = UncertainDb2d::build_sharded_with(objects, shards, balance)?;
    let spec = QuerySpec::knn(k, p, delta, Strategy::Verified);
    let mut cfg = db.pipeline_config();
    cfg.cache = cache;
    cfg.shared_cache = shared_cache;
    warn_snapped(&cfg.cache, &[qx, qy]);
    let res = pipeline::cpnn(&db, &[qx, qy], &spec, &cfg)?;
    println!(
        "{} objects ({} shard(s), sizes {:?}), query ({qx}, {qy}), k = {k}, P = {p}",
        db.len(),
        db.num_shards(),
        db.shard_sizes()
    );
    println!(
        "answers: {:?}  ({} candidates, {} subregions, {} integrations, {:?})",
        res.answers.iter().map(|id| id.0).collect::<Vec<_>>(),
        res.stats.candidates,
        res.stats.subregions,
        res.stats.integrations,
        res.stats.total_time()
    );
    for r in res.reports.iter().filter(|r| r.bound.hi() > 0.01) {
        println!("  {}: {} -> {:?}", r.id, r.bound, r.label);
    }
    Ok(())
}

const SERVE_PROTOCOL: &str = "\
serve line protocol (stdin or --queries FILE; one request per line):
  <q> <p> [delta]           constrained 1-NN query (delta defaults to 0.01,
                            matching the one-shot `cpnn` command)
  cpnn <q> <p> [delta]      constrained 1-NN query
  knn <q> <k> <p> [delta]   constrained k-NN query (delta defaults to 0)
  insert <id> <lo> <hi>     queue a new uniform object on the
                            write-coalescing lane (O(log n) path copy)
  remove <id>               queue the object's removal
  stats                     drain pending responses and flush queued
                            updates, then report server counters:
                            `stats served=<n> updates=<n>
                            coalesced_batches=<n> applied_updates=<n>
                            cache_hits=<n> cache_misses=<n>
                            shared_hits=<n> outcome_hits=<n>
                            wal_records=<n> checkpoints=<n>` (cache
                            counters stay 0 unless --cache is on;
                            shared_hits/outcome_hits stay 0 unless
                            --shared-cache is on; durability counters
                            stay 0 unless --data-dir is on)
  quit                      drain pending responses, flush updates, exit
consecutive insert/remove lines form one burst: they publish together as
ONE snapshot swap (one version bump, one cache-invalidation pass) when
the next query/stats line — or end of input — flushes them, printing one
`update v<version> objects=<n> batch=<burst>` line per applied op (or
`update rejected: <err>`). A query therefore always observes every
update queued before it. Relevant flags: --threads T (worker pool),
--shards N (domain partitioning; updates path-copy only the owning
shard), --shard-balance width|quantile (slab scheme), --cache N
[--cache-quantum EPS] (verification-state cache; updates invalidate it
incrementally by region), --shared-cache N [--cache-ttl SECS] (a
process-wide second cache tier all workers consult on local misses and
publish fills into, with verification outcomes memoized per threshold
band; entries admit on second sight and expire after SECS),
--data-dir DIR (durable storage: each burst
appends one fsync'd write-ahead journal record BEFORE it publishes, and
a restart pointing at the same DIR recovers checkpoint + journal tail —
FILE then only seeds a fresh DIR), --checkpoint-every N (fold the
journal into a fresh checkpoint every N bursts; 0 = only at startup and
clean shutdown). Blank lines and lines starting with `#` are ignored;
responses stream back in submission order as
`#<n> v<version> answers=[..]`.";

/// `cpnn serve FILE`: long-lived [`QueryServer`] session. Reads requests
/// line by line, submits them to the worker pool without waiting, and
/// streams responses back in submission order as they complete. Updates
/// (`insert` / `remove`) queue on the server's write-coalescing lane and
/// publish as **one** snapshot swap per burst (flushed before the next
/// query, `stats`, or end of input — so a query always observes every
/// update queued before it); each response reports the snapshot version
/// that served it.
///
/// The backend is always a domain-partitioned [`ShardedDb`] (`--shards`
/// slabs, default 1; `--shard-balance quantile` for equal-count slabs):
/// updates **path-copy** only the owning shard — O(log |shard|)
/// structural edits, never rebuilds. The single-shard case is the
/// unsharded behavior.
///
/// With `--data-dir DIR` the session is durable: a
/// [`FileBackend`] is attached before any write is accepted, so every
/// burst appends one fsync'd write-ahead journal record *before* it
/// publishes, and a restart pointing at the same DIR recovers
/// checkpoint + journal tail and resumes at the pre-crash snapshot
/// version (the positional FILE then only seeds a fresh, empty DIR).
fn serve(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    if bag.peek_positional() == Some("help") {
        println!("{SERVE_PROTOCOL}");
        return Ok(());
    }
    let path: Option<PathBuf> = match bag.peek_positional() {
        Some(_) => Some(bag.positional("dataset file")?),
        None => None,
    };
    let threads: usize = bag.optional("threads")?.unwrap_or(0);
    let shards: usize = bag.optional("shards")?.unwrap_or(1);
    let balance = shard_balance_args(bag)?;
    let queries: Option<PathBuf> = bag.optional("queries")?;
    let (cache, shared_cache) = cache_args(bag)?;
    let data_dir: Option<PathBuf> = bag.optional("data-dir")?;
    let checkpoint_every: u64 = bag.optional("checkpoint-every")?.unwrap_or(0);
    bag.finish()?;

    // Recover from the data directory when it already holds a checkpoint;
    // otherwise seed from the positional FILE (building the sharded store
    // directly from the snapshot's objects — one index build total, not a
    // flat database torn down and re-sharded).
    let mut backend = match &data_dir {
        Some(dir) => Some(FileBackend::open(dir)?),
        None => None,
    };
    let recovered = match backend.as_mut() {
        Some(b) => b.recover::<ShardedDb<UncertainDb>>(&EngineConfig::default())?,
        None => None,
    };
    let (sharded, initial_version) = match recovered {
        Some(rec) => {
            if let Some(off) = rec.torn_at {
                eprintln!(
                    "journal tail torn at byte {off}; recovered the last durable burst instead"
                );
            }
            eprintln!(
                "recovered {} objects at v{} ({} journal record(s) replayed) from {}",
                rec.model.len(),
                rec.version,
                rec.records,
                data_dir
                    .as_ref()
                    .expect("recovery implies data dir")
                    .display()
            );
            if shards != 1 && rec.model.num_shards() != shards {
                eprintln!(
                    "note: --shards {shards} ignored — the recovered layout has {} shard(s) \
                     (sharding is fixed at seed time)",
                    rec.model.num_shards()
                );
            }
            (rec.model, rec.version)
        }
        None => {
            let path = path.ok_or("missing dataset file (and --data-dir holds no checkpoint)")?;
            let db =
                UncertainDb::build_sharded_with(load_objects_from_path(&path)?, shards, balance)?;
            (db, 0)
        }
    };
    let mut pipeline = sharded.pipeline_config();
    pipeline.cache = cache;
    pipeline.shared_cache = shared_cache;
    let num_shards = sharded.num_shards();
    let server = QueryServer::start_at(sharded, initial_version, threads, pipeline);
    if let Some(backend) = backend {
        // Attach before accepting any write, then checkpoint immediately:
        // a seeded database becomes durable from line one, and a recovered
        // journal tail is folded into a fresh checkpoint (truncating the
        // journal the replay just consumed).
        server.attach_storage(Box::new(backend));
        server.checkpoint_now()?;
    }
    let mut checkpoint_policy = CheckpointPolicy {
        every: checkpoint_every,
        since: 0,
    };
    eprintln!(
        "serving on {} worker thread(s) over {} shard(s); send `quit` or EOF to stop",
        server.threads(),
        num_shards
    );

    // On a terminal, each response is awaited before the next prompt read
    // (a human wants the answer now); on piped/file input, submissions
    // pipeline and responses are drained opportunistically.
    let interactive = queries.is_none() && std::io::stdin().is_terminal();
    let start = Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // Responses print strictly in submission order: completed tickets are
    // drained from the front opportunistically, so results stream while the
    // reader is still feeding the queue.
    let mut pending: VecDeque<(u64, Ticket)> = VecDeque::new();
    // Updates queued on the write-coalescing lane, awaiting the flush at
    // the current burst's end.
    let mut queued_updates: Vec<Ticket<UpdateOutcome>> = Vec::new();
    let mut submitted: u64 = 0;
    let mut line_no = 0u64;

    let reader: Box<dyn BufRead> = match queries {
        Some(path) => Box::new(std::io::BufReader::new(std::fs::File::open(path)?)),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    for line in reader.lines() {
        let line = line?;
        line_no += 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" {
            break;
        }
        match parse_serve_line(line) {
            Ok(ServeRequest::Query(q, spec)) => {
                // A queued update burst ends here: settle earlier queries
                // (output order), publish the burst as one snapshot swap,
                // and only then submit — the query must observe every
                // update queued before it.
                if !queued_updates.is_empty() {
                    drain_all(&mut pending, &mut out)?;
                    flush_updates(
                        &server,
                        &mut queued_updates,
                        &mut checkpoint_policy,
                        &mut out,
                    )?;
                }
                // Bound the backlog: piped input can outrun the workers, and
                // every pending ticket buffers a full response.
                const MAX_IN_FLIGHT: usize = 1024;
                if pending.len() >= MAX_IN_FLIGHT {
                    let (seq, ticket) = pending.pop_front().expect("backlog is non-empty");
                    print_served(&mut out, seq, &ticket.wait())?;
                }
                pending.push_back((submitted, server.submit(q, spec)));
                submitted += 1;
            }
            Ok(ServeRequest::Insert(object)) => {
                // Queue only — consecutive update lines coalesce into one
                // publish at the burst's end.
                queued_updates.push(server.queue_insert(object));
            }
            Ok(ServeRequest::Remove(id)) => {
                queued_updates.push(server.queue_remove(id));
            }
            Ok(ServeRequest::Stats) => {
                // Settle earlier queries and flush queued updates first so
                // the counters cover every request that precedes this line.
                drain_all(&mut pending, &mut out)?;
                flush_updates(
                    &server,
                    &mut queued_updates,
                    &mut checkpoint_policy,
                    &mut out,
                )?;
                let s = server.stats();
                writeln!(
                    out,
                    "stats served={} updates={} coalesced_batches={} applied_updates={} \
                     cache_hits={} cache_misses={} shared_hits={} outcome_hits={} \
                     wal_records={} checkpoints={}",
                    s.served,
                    s.updates,
                    s.coalesced_batches,
                    s.applied_updates,
                    s.cache_hits,
                    s.cache_misses,
                    s.shared_hits,
                    s.outcome_hits,
                    s.wal_records,
                    s.checkpoints
                )?;
            }
            Err(msg) => {
                eprintln!("line {line_no}: {msg}");
                eprintln!("{SERVE_PROTOCOL}");
            }
        }
        if interactive {
            // A human wants effects now: settle queries and publish any
            // queued update immediately (bursts still coalesce when pasted
            // as one multi-line block — the reader sees them in one gulp).
            drain_all(&mut pending, &mut out)?;
            flush_updates(
                &server,
                &mut queued_updates,
                &mut checkpoint_policy,
                &mut out,
            )?;
            out.flush()?;
            continue;
        }
        // Stream any responses that are already done (front first: output
        // stays in submission order).
        while let Some((seq, ticket)) = pending.front() {
            match ticket.try_wait() {
                Some(served) => {
                    print_served(&mut out, *seq, &served)?;
                    pending.pop_front();
                }
                None => break,
            }
        }
    }
    // EOF / quit: wait out the tail, then publish any trailing burst. A
    // clean shutdown folds the journal into one final checkpoint, so the
    // next start recovers from the checkpoint alone (no replay).
    drain_all(&mut pending, &mut out)?;
    flush_updates(
        &server,
        &mut queued_updates,
        &mut checkpoint_policy,
        &mut out,
    )?;
    server.checkpoint_now()?;
    let stats = server.shutdown();
    let wall = start.elapsed();
    let cache_note = if stats.cache_hits + stats.shared_hits + stats.cache_misses > 0 {
        format!(
            ", cache {} hits / {} shared / {} misses ({} memo short-circuits)",
            stats.cache_hits, stats.shared_hits, stats.cache_misses, stats.outcome_hits
        )
    } else {
        String::new()
    };
    eprintln!(
        "served {} queries, {} snapshot update(s) in {:.3?} ({:.0} queries/s{})",
        stats.served,
        stats.updates,
        wall,
        stats.served as f64 / wall.as_secs_f64().max(1e-9),
        cache_note
    );
    Ok(())
}

/// Block until every pending response has been printed (submission order).
fn drain_all(
    pending: &mut VecDeque<(u64, Ticket)>,
    out: &mut impl std::io::Write,
) -> Result<(), std::io::Error> {
    for (seq, ticket) in pending.drain(..) {
        print_served(out, seq, &ticket.wait())?;
    }
    Ok(())
}

/// When to fold the write-ahead journal into a fresh checkpoint:
/// every `every` published bursts (`0` = never on the hot path — only
/// the startup and clean-shutdown checkpoints bound the journal).
struct CheckpointPolicy {
    every: u64,
    since: u64,
}

impl CheckpointPolicy {
    /// Count one published burst; checkpoint when the budget is spent.
    /// No-op without an attached backend (`checkpoint_now` returns
    /// `None`) or with `every == 0`.
    fn after_burst(
        &mut self,
        server: &QueryServer<ShardedDb<UncertainDb>>,
    ) -> Result<(), cpnn_core::CoreError> {
        if self.every == 0 {
            return Ok(());
        }
        self.since += 1;
        if self.since >= self.every {
            self.since = 0;
            server.checkpoint_now()?;
        }
        Ok(())
    }
}

/// End the current update burst: publish every queued update as one
/// snapshot swap ([`QueryServer::flush_writes`]) and print each op's
/// outcome in queue order. No-op when nothing is queued. With durable
/// storage attached the publish appends one journal record first
/// (inside `flush_writes`); `policy` decides when the journal gets
/// folded into a fresh checkpoint.
fn flush_updates(
    server: &QueryServer<ShardedDb<UncertainDb>>,
    queued: &mut Vec<Ticket<UpdateOutcome>>,
    policy: &mut CheckpointPolicy,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if queued.is_empty() {
        return Ok(());
    }
    server.flush_writes();
    let objects = server.snapshot().model.len();
    for ticket in queued.drain(..) {
        let outcome = ticket.wait();
        match &outcome.result {
            Ok(()) => writeln!(
                out,
                "update v{} objects={objects} batch={}",
                outcome.snapshot_version, outcome.batch
            )?,
            Err(e) => writeln!(out, "update rejected: {e}")?,
        }
    }
    policy.after_burst(server)?;
    Ok(())
}

enum ServeRequest {
    Query(f64, QuerySpec),
    Insert(UncertainObject),
    Remove(ObjectId),
    Stats,
}

/// Parse one line of the serve protocol (see [`SERVE_PROTOCOL`]).
fn parse_serve_line(line: &str) -> Result<ServeRequest, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let num = |s: &str, what: &str| -> Result<f64, String> {
        s.parse::<f64>()
            .map_err(|_| format!("invalid {what} `{s}`"))
    };
    let int = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|_| format!("invalid {what} `{s}`"))
    };
    match fields.as_slice() {
        ["knn", q, k, p] => Ok(ServeRequest::Query(
            num(q, "query point")?,
            QuerySpec::knn(
                int(k, "k")? as usize,
                num(p, "threshold")?,
                0.0,
                Strategy::Verified,
            ),
        )),
        ["knn", q, k, p, d] => Ok(ServeRequest::Query(
            num(q, "query point")?,
            QuerySpec::knn(
                int(k, "k")? as usize,
                num(p, "threshold")?,
                num(d, "tolerance")?,
                Strategy::Verified,
            ),
        )),
        ["insert", id, lo, hi] => Ok(ServeRequest::Insert(
            UncertainObject::uniform(
                ObjectId(int(id, "object id")?),
                num(lo, "lower bound")?,
                num(hi, "upper bound")?,
            )
            .map_err(|e| e.to_string())?,
        )),
        ["remove", id] => Ok(ServeRequest::Remove(ObjectId(int(id, "object id")?))),
        ["stats"] => Ok(ServeRequest::Stats),
        // Bare and `cpnn`-prefixed 1-NN queries come last: a two- or
        // three-field line that is not a keyword request is `<q> <p> [delta]`.
        // The tolerance default matches the one-shot `cpnn` command (0.01),
        // so a streamed query answers exactly like its one-shot twin.
        ["cpnn", q, p] | [q, p] => Ok(ServeRequest::Query(
            num(q, "query point")?,
            QuerySpec::nn(num(p, "threshold")?, 0.01, Strategy::Verified),
        )),
        ["cpnn", q, p, d] | [q, p, d] => Ok(ServeRequest::Query(
            num(q, "query point")?,
            QuerySpec::nn(
                num(p, "threshold")?,
                num(d, "tolerance")?,
                Strategy::Verified,
            ),
        )),
        _ => Err(format!("unrecognized request `{line}`")),
    }
}

fn print_served(
    out: &mut impl std::io::Write,
    seq: u64,
    served: &Served,
) -> Result<(), std::io::Error> {
    match &served.result {
        Ok(res) => writeln!(
            out,
            "#{seq} v{} answers={:?} cands={} t={:?}",
            served.snapshot_version,
            res.answers.iter().map(|id| id.0).collect::<Vec<_>>(),
            res.stats.candidates,
            res.stats.total_time()
        ),
        Err(e) => writeln!(out, "#{seq} v{} error: {e}", served.snapshot_version),
    }
}

fn range(bag: &mut ArgBag) -> Result<(), Box<dyn std::error::Error>> {
    let db = load(bag)?;
    let lo: f64 = bag.required("lo")?;
    let hi: f64 = bag.required("hi")?;
    let p: f64 = bag.required("p")?;
    bag.finish()?;
    let res = db.range_query(lo, hi, p)?;
    println!(
        "{} object(s) in [{lo}, {hi}] with probability >= {p}:",
        res.len()
    );
    for a in res.iter().take(20) {
        println!("  {}: {:.4}", a.id, a.probability);
    }
    Ok(())
}
