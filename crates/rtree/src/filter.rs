//! The PNN **filtering** phase (paper Sec. III, after \[8\]).
//!
//! Any object whose minimum possible distance from `q` exceeds `fmin` — the
//! smallest *maximum* distance among all objects — has zero qualification
//! probability: the object realizing `fmin` is certainly closer. Filtering
//! therefore returns the *candidate set*
//! `C = { Xi : min_dist(q, Ui) ≤ min_k max_dist(q, Uk) }`
//! in a single best-first traversal, pruning subtrees by the running `fmin`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::Rect;
use crate::node::Node;
use crate::tree::RTree;

/// One member of the candidate set, with the distance bounds the later
/// phases (subregion construction) need.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a, T, const D: usize> {
    /// The stored item.
    pub item: &'a T,
    /// The object's uncertainty region (as indexed).
    pub rect: Rect<D>,
    /// Near point `ni = min_dist(q, Ui)`.
    pub near: f64,
    /// Far point `fi = max_dist(q, Ui)`.
    pub far: f64,
}

/// Total-ordered f64 for use in heaps (distances are never NaN here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct QueueItem<'a, T, const D: usize> {
    min_dist: f64,
    node: &'a Node<T, D>,
}

impl<T, const D: usize> PartialEq for QueueItem<'_, T, D> {
    fn eq(&self, other: &Self) -> bool {
        self.min_dist == other.min_dist
    }
}
impl<T, const D: usize> Eq for QueueItem<'_, T, D> {}
impl<T, const D: usize> PartialOrd for QueueItem<'_, T, D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, const D: usize> Ord for QueueItem<'_, T, D> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.min_dist.total_cmp(&self.min_dist)
    }
}

/// Statistics from one filtering pass (reported in Fig. 9-style analyses).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FilterStats {
    /// Nodes popped from the priority queue.
    pub nodes_visited: usize,
    /// Leaf records inspected.
    pub records_inspected: usize,
    /// Final pruning distance `fmin`.
    pub fmin: f64,
}

impl<T, const D: usize> RTree<T, D> {
    /// Compute the PNN candidate set for query point `q`.
    ///
    /// Returns candidates (in arbitrary order) plus traversal statistics.
    /// The true `fmin` is in [`FilterStats::fmin`]; every returned candidate
    /// satisfies `near ≤ fmin`, and every pruned object provably has zero
    /// qualification probability.
    pub fn pnn_candidates(&self, q: &[f64; D]) -> (Vec<Candidate<'_, T, D>>, FilterStats) {
        self.pnn_candidates_k(q, 1)
    }

    /// k-NN generalization of the filter (the paper's future-work
    /// direction): prune by `fmin_k`, the `k`-th smallest max-distance.
    /// Any object farther than `fmin_k` has at least `k` objects certainly
    /// closer, so its probability of being among the `k` nearest is zero.
    pub fn pnn_candidates_k(
        &self,
        q: &[f64; D],
        k: usize,
    ) -> (Vec<Candidate<'_, T, D>>, FilterStats) {
        let k = k.max(1);
        let mut stats = FilterStats {
            fmin: f64::INFINITY,
            ..Default::default()
        };
        let mut collected: Vec<Candidate<'_, T, D>> = Vec::new();
        if self.is_empty() {
            return (collected, stats);
        }
        // Max-heap of the k smallest record far-distances seen so far;
        // its top is the current pruning horizon fmin_k. Only *record*
        // far-distances enter (node MBR far-distances are upper bounds for
        // a single record, not k of them, unless the node holds ≥ k records
        // — a refinement we skip for clarity).
        let mut kth: BinaryHeap<OrdF64> = BinaryHeap::new();
        let horizon = |kth: &BinaryHeap<OrdF64>| {
            if kth.len() == k {
                kth.peek().expect("non-empty").0
            } else {
                f64::INFINITY
            }
        };
        let mut heap = BinaryHeap::new();
        heap.push(QueueItem {
            min_dist: 0.0,
            node: self.root(),
        });
        while let Some(QueueItem { min_dist, node }) = heap.pop() {
            // Pops arrive in ascending min_dist; once past the horizon
            // nothing else can be a candidate.
            if min_dist > horizon(&kth) {
                break;
            }
            stats.nodes_visited += 1;
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        stats.records_inspected += 1;
                        let near = e.rect.min_dist(q);
                        if near <= horizon(&kth) {
                            let far = e.rect.max_dist(q);
                            if kth.len() < k {
                                kth.push(OrdF64(far));
                            } else if far < kth.peek().expect("non-empty").0 {
                                kth.pop();
                                kth.push(OrdF64(far));
                            }
                            collected.push(Candidate {
                                item: &e.item,
                                rect: e.rect,
                                near,
                                far,
                            });
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        let nd = c.rect.min_dist(q);
                        if nd <= horizon(&kth) {
                            heap.push(QueueItem {
                                min_dist: nd,
                                node: &c.node,
                            });
                        }
                    }
                }
            }
        }
        stats.fmin = horizon(&kth);
        // The horizon may have shrunk after a candidate was collected.
        collected.retain(|c| c.near <= stats.fmin);
        (collected, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(ranges: &[(f64, f64)]) -> RTree<usize, 1> {
        RTree::bulk_load(
            ranges
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| (Rect::interval(lo, hi), i))
                .collect(),
        )
    }

    /// Brute-force reference implementation of the pruning rule.
    fn brute_candidates(ranges: &[(f64, f64)], q: f64) -> Vec<usize> {
        let far = |&(lo, hi): &(f64, f64)| (q - lo).abs().max((q - hi).abs());
        let near = |&(lo, hi): &(f64, f64)| {
            if q >= lo && q <= hi {
                0.0
            } else {
                (lo - q).abs().min((q - hi).abs())
            }
        };
        let fmin = ranges.iter().map(far).fold(f64::INFINITY, f64::min);
        ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| near(r) <= fmin)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_tree_has_no_candidates() {
        let t: RTree<usize, 1> = RTree::default();
        let (c, s) = t.pnn_candidates(&[0.0]);
        assert!(c.is_empty());
        assert_eq!(s.fmin, f64::INFINITY);
    }

    #[test]
    fn single_object_is_its_own_candidate() {
        let t = build(&[(5.0, 7.0)]);
        let (c, s) = t.pnn_candidates(&[0.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].near, 5.0);
        assert_eq!(c[0].far, 7.0);
        assert_eq!(s.fmin, 7.0);
    }

    #[test]
    fn far_objects_are_pruned() {
        // Object 0 tightly brackets q; object 2 is far away.
        let t = build(&[(0.9, 1.1), (0.5, 2.0), (50.0, 51.0)]);
        let (c, _) = t.pnn_candidates(&[1.0]);
        let mut ids: Vec<usize> = c.iter().map(|c| *c.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn matches_brute_force_on_dense_overlaps() {
        let ranges: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = ((i * 131) % 997) as f64 / 10.0;
                let w = 1.0 + ((i * 17) % 23) as f64 / 4.0;
                (x, x + w)
            })
            .collect();
        let t = build(&ranges);
        for q in [0.0, 13.7, 50.0, 99.0, 120.0] {
            let (c, stats) = t.pnn_candidates(&[q]);
            let mut got: Vec<usize> = c.iter().map(|c| *c.item).collect();
            got.sort_unstable();
            let want = brute_candidates(&ranges, q);
            assert_eq!(got, want, "q = {q}");
            assert!(stats.nodes_visited >= 1);
            // Candidate bounds must be consistent.
            for cand in &c {
                assert!(cand.near <= cand.far);
                assert!(cand.near <= stats.fmin);
            }
        }
    }

    #[test]
    fn k_filter_matches_brute_force() {
        let ranges: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let x = ((i * 113) % 991) as f64 / 5.0;
                (x, x + 1.0 + ((i * 7) % 13) as f64)
            })
            .collect();
        let t = build(&ranges);
        let near = |&(lo, hi): &(f64, f64), q: f64| {
            if q >= lo && q <= hi {
                0.0
            } else {
                (lo - q).abs().min((q - hi).abs())
            }
        };
        let far = |&(lo, hi): &(f64, f64), q: f64| (q - lo).abs().max((q - hi).abs());
        for q in [0.0, 50.0, 120.0, 199.0] {
            for k in [1usize, 2, 3, 8] {
                let (c, stats) = t.pnn_candidates_k(&[q], k);
                let mut got: Vec<usize> = c.iter().map(|c| *c.item).collect();
                got.sort_unstable();
                let mut fars: Vec<f64> = ranges.iter().map(|r| far(r, q)).collect();
                fars.sort_by(f64::total_cmp);
                let fmin_k = fars[k - 1];
                let want: Vec<usize> = ranges
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| near(r, q) <= fmin_k)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "q = {q}, k = {k}");
                assert!((stats.fmin - fmin_k).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_filter_with_k_one_equals_pnn_filter() {
        let ranges = vec![(0.0, 3.0), (1.0, 6.0), (10.0, 12.0), (2.5, 4.0)];
        let t = build(&ranges);
        let (a, sa) = t.pnn_candidates(&[2.0]);
        let (b, sb) = t.pnn_candidates_k(&[2.0], 1);
        let ids = |v: &[Candidate<'_, usize, 1>]| {
            let mut out: Vec<usize> = v.iter().map(|c| *c.item).collect();
            out.sort_unstable();
            out
        };
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(sa.fmin, sb.fmin);
    }

    #[test]
    fn candidate_containing_fmin_object_is_kept() {
        // The object with the smallest far point must always be a candidate.
        let ranges = vec![(10.0, 11.0), (10.5, 30.0), (9.0, 40.0)];
        let t = build(&ranges);
        let (c, s) = t.pnn_candidates(&[10.2]);
        assert!((s.fmin - 0.8).abs() < 1e-12);
        let ids: Vec<usize> = c.iter().map(|c| *c.item).collect();
        assert!(ids.contains(&0));
    }
}
