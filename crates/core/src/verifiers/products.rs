//! Exclude-one products — the `Y_j` optimization of the paper (Eqs. 2/3/11)
//! made numerically safe.
//!
//! The L-SR and U-SR verifiers need, for every object `i`, the product of
//! `(1 − D_k(e_j))` over all `k ≠ i`. The paper computes the full product
//! `Y_j` once and divides by object `i`'s own factor — which breaks when a
//! factor is zero (an object certainly closer than `e_j`) and loses
//! precision when a factor is tiny. We instead precompute prefix and suffix
//! products, giving every exclude-one product in O(1) with no division at
//! all: `Π_{k≠i} f_k = prefix[i] · suffix[i+1]`. Same O(|C|) cost per
//! subregion as the paper's `Y_j` trick.

/// Prefix/suffix product table over a factor vector.
///
/// The `Default` value is an *empty* table (no factors recorded yet); call
/// [`Self::recompute`] before querying it.
#[derive(Debug, Clone, Default)]
pub struct ExcludeOneProduct {
    /// `prefix[i] = Π_{k < i} f_k` (so `prefix[0] = 1`), length `n + 1`.
    prefix: Vec<f64>,
    /// `suffix[i] = Π_{k ≥ i} f_k` (so `suffix[n] = 1`), length `n + 1`.
    suffix: Vec<f64>,
}

impl ExcludeOneProduct {
    /// Build from the factor sequence.
    pub fn new(factors: &[f64]) -> Self {
        let mut p = Self::default();
        p.recompute(factors);
        p
    }

    /// Rebuild the prefix/suffix tables in place, reusing the existing
    /// allocations — the kernel-path replacement for constructing a fresh
    /// product per subregion. Multiplication order matches [`Self::new`]
    /// exactly, so the resulting products are bit-identical.
    pub fn recompute(&mut self, factors: &[f64]) {
        let n = factors.len();
        self.prefix.clear();
        self.prefix.reserve(n + 1);
        self.prefix.push(1.0);
        let mut acc = 1.0;
        for &f in factors {
            acc *= f;
            self.prefix.push(acc);
        }
        self.suffix.clear();
        self.suffix.resize(n + 1, 1.0);
        for i in (0..n).rev() {
            self.suffix[i] = factors[i] * self.suffix[i + 1];
        }
    }

    /// Rebuild directly from a cdf column, taking factor `i` as
    /// `1.0 − cdf[i]` on the fly. This fuses [`super::kernels::survival_into`]
    /// into the product pass: the same `1.0 − c` subtraction feeds the same
    /// multiplication chain in the same order, so the resulting products are
    /// bit-identical to `recompute(&survival_into(cdf))` — with one fewer
    /// write-then-read sweep over the factors buffer.
    pub fn recompute_survival(&mut self, cdf: &[f64]) {
        let n = cdf.len();
        self.prefix.clear();
        self.prefix.reserve(n + 1);
        self.prefix.push(1.0);
        let mut acc = 1.0;
        for &c in cdf {
            acc *= 1.0 - c;
            self.prefix.push(acc);
        }
        self.suffix.clear();
        self.suffix.resize(n + 1, 1.0);
        for i in (0..n).rev() {
            self.suffix[i] = (1.0 - cdf[i]) * self.suffix[i + 1];
        }
    }

    /// Prefix/suffix halves (`prefix[i] · suffix[i + 1]` is the exclude-one
    /// product), for slice-based inner loops that also consume the shared
    /// column tables of [`super::kernels::KernelScratch`].
    pub(crate) fn parts(&self) -> (&[f64], &[f64]) {
        (&self.prefix, &self.suffix)
    }

    /// Product of all factors.
    pub fn total(&self) -> f64 {
        *self.prefix.last().expect("non-empty prefix")
    }

    /// Product of all factors except index `i`.
    pub fn excluding(&self, i: usize) -> f64 {
        self.prefix[i] * self.suffix[i + 1]
    }

    /// Number of factors.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Is the factor sequence empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excluding_matches_naive() {
        let factors = [0.5, 0.9, 0.1, 1.0, 0.3];
        let p = ExcludeOneProduct::new(&factors);
        for i in 0..factors.len() {
            let naive: f64 = factors
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != i)
                .map(|(_, &f)| f)
                .product();
            assert!(
                (p.excluding(i) - naive).abs() < 1e-15,
                "i = {i}: {} vs {naive}",
                p.excluding(i)
            );
        }
        assert!((p.total() - factors.iter().product::<f64>()).abs() < 1e-15);
    }

    #[test]
    fn zero_factors_are_exact() {
        // One zero: excluding it gives the nonzero product; excluding others gives 0.
        let factors = [0.5, 0.0, 0.25];
        let p = ExcludeOneProduct::new(&factors);
        assert_eq!(p.total(), 0.0);
        assert!((p.excluding(1) - 0.125).abs() < 1e-15);
        assert_eq!(p.excluding(0), 0.0);
        assert_eq!(p.excluding(2), 0.0);
        // Two zeros: every exclude-one product is 0.
        let p2 = ExcludeOneProduct::new(&[0.0, 0.5, 0.0]);
        for i in 0..3 {
            assert_eq!(p2.excluding(i), 0.0);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let p = ExcludeOneProduct::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.total(), 1.0);
        let p1 = ExcludeOneProduct::new(&[0.7]);
        assert_eq!(p1.excluding(0), 1.0);
        assert_eq!(p1.total(), 0.7);
    }

    #[test]
    fn recompute_matches_new_bitwise_and_reuses_buffers() {
        let a = [0.5, 0.9, 0.1, 1.0, 0.3];
        let b = [0.25, 0.75];
        let mut p = ExcludeOneProduct::default();
        p.recompute(&a);
        let fresh = ExcludeOneProduct::new(&a);
        for i in 0..a.len() {
            assert_eq!(p.excluding(i).to_bits(), fresh.excluding(i).to_bits());
        }
        assert_eq!(p.total().to_bits(), fresh.total().to_bits());
        // Shrinking reuse: shorter factor list after a longer one.
        p.recompute(&b);
        let fresh_b = ExcludeOneProduct::new(&b);
        assert_eq!(p.len(), 2);
        for i in 0..b.len() {
            assert_eq!(p.excluding(i).to_bits(), fresh_b.excluding(i).to_bits());
        }
    }

    #[test]
    fn recompute_survival_matches_two_pass_bitwise() {
        let cdf = [0.0, 0.125, 0.3, 0.5, 0.97, 1.0];
        let factors: Vec<f64> = cdf.iter().map(|&c| 1.0 - c).collect();
        let mut two_pass = ExcludeOneProduct::default();
        two_pass.recompute(&factors);
        let mut fused = ExcludeOneProduct::default();
        fused.recompute_survival(&cdf);
        assert_eq!(fused.len(), two_pass.len());
        for i in 0..cdf.len() {
            assert_eq!(
                fused.excluding(i).to_bits(),
                two_pass.excluding(i).to_bits()
            );
        }
        assert_eq!(fused.total().to_bits(), two_pass.total().to_bits());
    }

    #[test]
    fn many_tiny_factors_keep_precision() {
        let factors = vec![0.99999; 1000];
        let p = ExcludeOneProduct::new(&factors);
        let expect = 0.99999f64.powi(999);
        assert!((p.excluding(500) / expect - 1.0).abs() < 1e-9);
    }
}
