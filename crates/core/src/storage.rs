//! Durable storage: snapshot **checkpoints** composed with a
//! **write-ahead journal** behind the [`StorageBackend`] seam.
//!
//! # Why a journal at all
//!
//! The serve lane publishes coalesced update bursts as single snapshot
//! versions ([`crate::server::QueryServer::flush_writes`]). Writing a
//! full checkpoint per burst would make update durability O(|T|); the
//! journal makes it O(burst): each published burst appends **one**
//! fsync'd record describing exactly the operations that were applied,
//! and a periodic checkpoint resets the journal so recovery stays
//! bounded.
//!
//! # Wire format
//!
//! Little-endian throughout, like [`crate::persist`]:
//!
//! ```text
//! journal file : magic "CPWL" | journal version u32 (= 1) | records
//! record       : payload length u32 | payload | FNV-1a(payload) u64
//! payload      : snapshot version u64 | op count u32 | ops
//! op           : tag u8 (0 insert, 1 remove)
//!                | insert: one object record (the snapshot codec)
//!                | remove: id u64
//! ```
//!
//! # Torn-tail contract
//!
//! A crash mid-append leaves a structurally incomplete tail. Replay
//! distinguishes two cases:
//!
//! - **Torn**: the remaining bytes are too short to hold a complete
//!   record (length prefix, payload, or checksum cut off), or the
//!   record's checksum does not match — the tell-tale of a write that
//!   never finished. Replay stops cleanly at the last complete record
//!   and reports the offset in [`Recovered::torn_at`]. This is the
//!   normal crash outcome, not an error.
//! - **Corrupt**: the file is structurally complete but semantically
//!   wrong — bad magic, an unknown op tag, a checksum-valid record that
//!   fails to decode or apply. That is damage no crash timing explains,
//!   and it surfaces as [`StorageError::Corrupt`] rather than a silent
//!   partial recovery.
//!
//! Records whose snapshot version is not newer than the state already
//! recovered are skipped, which makes replay idempotent when a crash
//! lands between "checkpoint written" and "journal truncated".
//!
//! # Checkpoint / truncate protocol
//!
//! [`FileBackend::checkpoint`] writes the snapshot to a temp file,
//! fsyncs it, atomically renames it over `checkpoint.cpnn`, fsyncs the
//! directory, and only then resets `wal.cpwl` to an empty journal — so
//! at every instant the pair (checkpoint, journal) on disk reconstructs
//! a state the server actually published.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::object::ObjectId;
use crate::persist::{self, PersistentModel, SnapshotError, SnapshotReader, SnapshotWriter};

const WAL_MAGIC: &[u8; 4] = b"CPWL";
const WAL_VERSION: u32 = 1;
const WAL_HEADER_LEN: usize = 8;

const OP_INSERT: u8 = 0;
const OP_REMOVE: u8 = 1;

/// Errors raised by the durable-storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (append, fsync, rename, ...).
    Io(io::Error),
    /// Checkpoint encode/decode failure.
    Snapshot(SnapshotError),
    /// The journal is damaged in a way no crash timing explains (bad
    /// magic, undecodable checksum-valid record, ...). Torn tails are
    /// *not* errors — see the [module docs](self).
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<SnapshotError> for StorageError {
    fn from(e: SnapshotError) -> Self {
        StorageError::Snapshot(e)
    }
}

/// Result alias for the storage layer.
pub type StorageResult<T> = std::result::Result<T, StorageError>;

/// The durability seam the server writes through. Implementations append
/// journal records and write checkpoints; both are called **before** the
/// corresponding snapshot is published (write-ahead: durable, then
/// visible).
///
/// The trait is deliberately object-safe and unbounded in `M`'s object
/// type: ops arrive pre-encoded (see [`encode_insert_op`] /
/// [`encode_remove_op`]), so a `Box<dyn StorageBackend<M>>` can live
/// inside a [`crate::server::QueryServer`] whose `M` is only known to be
/// a query model.
pub trait StorageBackend<M>: Send {
    /// Append one journal record covering a published burst: the ops (in
    /// application order) that produced snapshot `version`. Must be
    /// durable when it returns.
    fn append_burst(&mut self, version: u64, ops: &[Vec<u8>]) -> StorageResult<()>;
    /// Write a full checkpoint of `model` at snapshot `version` and
    /// truncate the journal it supersedes.
    fn checkpoint(&mut self, model: &M, version: u64) -> StorageResult<()>;
}

/// Encode a journal insert op for `object` (tag + one snapshot object
/// record).
pub fn encode_insert_op<M: PersistentModel>(object: &M::Object) -> Vec<u8> {
    let mut w = SnapshotWriter::new(vec![OP_INSERT]);
    M::write_object(object, &mut w).expect("write to Vec<u8> is infallible");
    w.into_inner()
}

/// Encode a journal remove op for `id`.
pub fn encode_remove_op(id: ObjectId) -> Vec<u8> {
    let mut out = vec![OP_REMOVE];
    out.extend_from_slice(&id.0.to_le_bytes());
    out
}

/// Assemble one length-prefixed, checksummed journal record from
/// pre-encoded ops.
pub fn encode_record(version: u64, ops: &[Vec<u8>]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + ops.iter().map(Vec::len).sum::<usize>());
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        payload.extend_from_slice(op);
    }
    let mut record = Vec::with_capacity(payload.len() + 12);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&payload);
    record.extend_from_slice(&persist::fnv1a(&payload).to_le_bytes());
    record
}

/// The 8-byte journal file header (magic + version).
pub fn wal_header() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// The outcome of checkpoint-plus-journal recovery.
#[derive(Debug)]
pub struct Recovered<M> {
    /// The recovered model: the checkpoint with every durable journal
    /// record replayed on top.
    pub model: M,
    /// The snapshot version the recovered state corresponds to — the
    /// version a restarted server should resume citing from.
    pub version: u64,
    /// Complete journal records replayed (including version-skipped
    /// duplicates).
    pub records: u64,
    /// Byte offset of a torn tail, if the journal ended mid-record (the
    /// normal trace of a crash mid-append); `None` for a clean journal.
    pub torn_at: Option<usize>,
}

/// Replay journal bytes on top of `base` (the checkpointed model at
/// `base_version`), honoring the torn-tail contract in the [module
/// docs](self).
pub fn replay_wal<M: PersistentModel>(
    wal: &[u8],
    base: M,
    base_version: u64,
) -> StorageResult<Recovered<M>> {
    let mut model = base;
    let mut version = base_version;
    let mut records = 0u64;
    let mut torn_at = None;
    // An absent/empty journal is a clean journal (nothing since the
    // checkpoint); a short or mismatched header is torn/corrupt.
    if !wal.is_empty() {
        if wal.len() < WAL_HEADER_LEN {
            return Ok(Recovered {
                model,
                version,
                records,
                torn_at: Some(0),
            });
        }
        if &wal[..4] != WAL_MAGIC {
            return Err(StorageError::Corrupt("bad journal magic".into()));
        }
        let jv = u32::from_le_bytes(wal[4..8].try_into().expect("4-byte slice"));
        if jv != WAL_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported journal version {jv}"
            )));
        }
        let mut off = WAL_HEADER_LEN;
        while off < wal.len() {
            // Incomplete length prefix, payload, or checksum: torn tail.
            if wal.len() - off < 4 {
                torn_at = Some(off);
                break;
            }
            let len =
                u32::from_le_bytes(wal[off..off + 4].try_into().expect("4-byte slice")) as usize;
            if wal.len() - off - 4 < len + 8 {
                torn_at = Some(off);
                break;
            }
            let payload = &wal[off + 4..off + 4 + len];
            let stored = u64::from_le_bytes(
                wal[off + 4 + len..off + 4 + len + 8]
                    .try_into()
                    .expect("8-byte slice"),
            );
            if persist::fnv1a(payload) != stored {
                // A checksum that does not match is the tell-tale of a
                // write that never completed: stop at the durable prefix.
                torn_at = Some(off);
                break;
            }
            let rec_version = decode_record_version(payload)?;
            if rec_version > version {
                model = apply_record::<M>(model, payload)?;
                version = rec_version;
            }
            records += 1;
            off += 4 + len + 8;
        }
    }
    Ok(Recovered {
        model,
        version,
        records,
        torn_at,
    })
}

fn corrupt<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> StorageError + '_ {
    move |e| StorageError::Corrupt(format!("{what}: {e}"))
}

fn decode_record_version(payload: &[u8]) -> StorageResult<u64> {
    if payload.len() < 12 {
        return Err(StorageError::Corrupt(
            "checksum-valid record shorter than its fixed fields".into(),
        ));
    }
    Ok(u64::from_le_bytes(
        payload[..8].try_into().expect("8-byte slice"),
    ))
}

/// Apply one checksum-valid record's ops. Any failure here is
/// [`StorageError::Corrupt`]: the journal only ever records ops that
/// *did* apply to the live model, so a replay failure means the bytes do
/// not describe what was journaled.
fn apply_record<M: PersistentModel>(mut model: M, payload: &[u8]) -> StorageResult<M> {
    let mut r = SnapshotReader::new(&payload[8..]);
    let count = r.take_u32().map_err(corrupt("journal record op count"))?;
    for _ in 0..count {
        match r.take_u8().map_err(corrupt("journal op tag"))? {
            OP_INSERT => {
                let object = M::read_object(&mut r).map_err(corrupt("journal insert op"))?;
                model = model
                    .with_inserted(object)
                    .map_err(corrupt("journal insert replay"))?;
            }
            OP_REMOVE => {
                let id = ObjectId(r.take_u64().map_err(corrupt("journal remove op"))?);
                model = model.with_removed(id).0;
            }
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "unknown journal op tag {tag}"
                )));
            }
        }
    }
    if !r.into_inner().is_empty() {
        return Err(StorageError::Corrupt(
            "journal record has trailing bytes past its ops".into(),
        ));
    }
    Ok(model)
}

/// A backend that drops everything — serving without durability, through
/// the same code path as serving with it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBackend;

impl<M> StorageBackend<M> for NullBackend {
    fn append_burst(&mut self, _version: u64, _ops: &[Vec<u8>]) -> StorageResult<()> {
        Ok(())
    }
    fn checkpoint(&mut self, _model: &M, _version: u64) -> StorageResult<()> {
        Ok(())
    }
}

#[derive(Debug, Default)]
struct MemoryState {
    checkpoint: Option<Vec<u8>>,
    wal: Vec<u8>,
}

/// An in-memory backend holding the exact bytes a [`FileBackend`] would
/// have written. Cloning shares the state, so tests (and the recovery
/// property suite) can attach one handle to a server and inspect or
/// replay from the other — including from arbitrary byte prefixes.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    state: Arc<Mutex<MemoryState>>,
}

impl MemoryBackend {
    /// A fresh, empty backend (no checkpoint, empty journal).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current checkpoint image, if one was written.
    pub fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        self.state
            .lock()
            .expect("storage state lock")
            .checkpoint
            .clone()
    }

    /// The current journal bytes (header + records).
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.state.lock().expect("storage state lock").wal.clone()
    }

    /// Recover a model from the held bytes: decode the checkpoint, then
    /// replay the journal. `None` when no checkpoint was ever written.
    pub fn recover<M: PersistentModel>(
        &self,
        ctx: &M::Context,
    ) -> StorageResult<Option<Recovered<M>>> {
        let (checkpoint, wal) = {
            let state = self.state.lock().expect("storage state lock");
            (state.checkpoint.clone(), state.wal.clone())
        };
        let Some(checkpoint) = checkpoint else {
            return Ok(None);
        };
        let (model, version) = persist::read_model::<M, _>(checkpoint.as_slice(), ctx)?;
        replay_wal(&wal, model, version).map(Some)
    }
}

impl<M: PersistentModel> StorageBackend<M> for MemoryBackend {
    fn append_burst(&mut self, version: u64, ops: &[Vec<u8>]) -> StorageResult<()> {
        let record = encode_record(version, ops);
        let mut state = self.state.lock().expect("storage state lock");
        if state.wal.is_empty() {
            state.wal.extend_from_slice(&wal_header());
        }
        state.wal.extend_from_slice(&record);
        Ok(())
    }
    fn checkpoint(&mut self, model: &M, version: u64) -> StorageResult<()> {
        let mut image = Vec::new();
        persist::write_model(model, version, &mut image)?;
        let mut state = self.state.lock().expect("storage state lock");
        state.checkpoint = Some(image);
        state.wal = wal_header().to_vec();
        Ok(())
    }
}

/// The file-backed backend: `checkpoint.cpnn` + `wal.cpwl` inside one
/// data directory. Appends are fsync'd before they return; checkpoints
/// go through a temp-file + atomic-rename + directory-fsync dance and
/// only then truncate the journal (see the [module docs](self)).
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    /// Kept open across appends so each burst costs one write + fsync.
    wal: Option<File>,
}

impl FileBackend {
    /// Open (creating if needed) the data directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, wal: None })
    }

    /// The data directory this backend writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint image.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.cpnn")
    }

    /// Path of the write-ahead journal.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.cpwl")
    }

    /// Recover from the directory: decode `checkpoint.cpnn`, replay
    /// `wal.cpwl` on top. `None` when no checkpoint exists yet (a fresh
    /// directory — the caller seeds the initial state and should
    /// checkpoint it immediately).
    pub fn recover<M: PersistentModel>(
        &mut self,
        ctx: &M::Context,
    ) -> StorageResult<Option<Recovered<M>>> {
        self.wal = None;
        let checkpoint = self.checkpoint_path();
        if !checkpoint.exists() {
            return Ok(None);
        }
        let file = File::open(&checkpoint)?;
        let (model, version) = persist::read_model::<M, _>(io::BufReader::new(file), ctx)?;
        let wal = match fs::read(self.wal_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        replay_wal(&wal, model, version).map(Some)
    }

    fn wal_file(&mut self) -> io::Result<&mut File> {
        if self.wal.is_none() {
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.wal_path())?;
            if file.metadata()?.len() == 0 {
                file.write_all(&wal_header())?;
            }
            self.wal = Some(file);
        }
        Ok(self.wal.as_mut().expect("wal file just ensured"))
    }

    /// fsync the directory so renames/creates within it are durable.
    fn sync_dir(&self) -> io::Result<()> {
        File::open(&self.dir)?.sync_all()
    }
}

impl<M: PersistentModel> StorageBackend<M> for FileBackend {
    fn append_burst(&mut self, version: u64, ops: &[Vec<u8>]) -> StorageResult<()> {
        let record = encode_record(version, ops);
        let file = self.wal_file()?;
        file.write_all(&record)?;
        file.sync_data()?;
        Ok(())
    }

    fn checkpoint(&mut self, model: &M, version: u64) -> StorageResult<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let file = File::create(&tmp)?;
            let mut w = io::BufWriter::new(file);
            persist::write_model(model, version, &mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, self.checkpoint_path())?;
        self.sync_dir()?;
        // The checkpoint now covers everything the journal recorded:
        // reset it to an empty journal.
        self.wal = None;
        let mut wal = File::create(self.wal_path())?;
        wal.write_all(&wal_header())?;
        wal.sync_all()?;
        self.sync_dir()?;
        Ok(())
    }
}

/// Fault injection for durability tests: forwards writes to `inner`
/// until `budget` bytes have passed, then fails every further write —
/// simulating a crash that tore the stream at an arbitrary byte
/// boundary. The final chunk is short-written, exactly like a real torn
/// write.
#[derive(Debug)]
pub struct CrashWriter<W> {
    inner: W,
    budget: usize,
}

impl<W: Write> CrashWriter<W> {
    /// Crash after exactly `budget` bytes reach `inner`.
    pub fn new(inner: W, budget: usize) -> Self {
        Self { inner, budget }
    }
    /// Unwrap the sink, keeping whatever made it through.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CrashWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 && !buf.is_empty() {
            return Err(io::Error::other("injected crash"));
        }
        let n = buf.len().min(self.budget);
        let written = self.inner.write(&buf[..n])?;
        self.budget -= written;
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, UncertainDb};
    use crate::object::UncertainObject;

    fn obj(id: u64, lo: f64, hi: f64) -> UncertainObject {
        UncertainObject::uniform(ObjectId(id), lo, hi).unwrap()
    }

    fn base_db() -> UncertainDb {
        UncertainDb::build((0..4).map(|i| obj(i, i as f64, i as f64 + 1.0)).collect()).unwrap()
    }

    #[test]
    fn record_round_trip_replays() {
        let db = base_db();
        let ops = vec![
            encode_insert_op::<UncertainDb>(&obj(100, 8.0, 9.0)),
            encode_remove_op(ObjectId(1)),
        ];
        let mut wal = wal_header().to_vec();
        wal.extend_from_slice(&encode_record(1, &ops));
        let rec = replay_wal(&wal, db.clone(), 0).unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.records, 1);
        assert_eq!(rec.torn_at, None);
        assert_eq!(rec.model.len(), db.len()); // +1 −1
        assert!(rec.model.objects().iter().any(|o| o.id() == ObjectId(100)));
        assert!(!rec.model.objects().iter().any(|o| o.id() == ObjectId(1)));
    }

    #[test]
    fn stale_records_are_skipped_idempotently() {
        let db = base_db();
        let ops = vec![encode_insert_op::<UncertainDb>(&obj(100, 8.0, 9.0))];
        let mut wal = wal_header().to_vec();
        wal.extend_from_slice(&encode_record(1, &ops));
        // Base already at version 1: the record must be skipped, so the
        // duplicate insert never replays.
        let rec = replay_wal(&wal, db.clone(), 1).unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.records, 1);
        assert_eq!(rec.model.len(), db.len());
    }

    #[test]
    fn every_torn_prefix_recovers_the_durable_prefix() {
        let db = base_db();
        let mut wal = wal_header().to_vec();
        wal.extend_from_slice(&encode_record(
            1,
            &[encode_insert_op::<UncertainDb>(&obj(100, 8.0, 9.0))],
        ));
        let first_burst_end = wal.len();
        wal.extend_from_slice(&encode_record(2, &[encode_remove_op(ObjectId(0))]));
        for cut in 0..wal.len() {
            let rec = replay_wal(&wal[..cut], db.clone(), 0).unwrap();
            if cut < first_burst_end {
                assert_eq!(rec.version, 0, "cut={cut}");
            } else if cut < wal.len() {
                assert_eq!(rec.version, 1, "cut={cut}");
            }
            // Never a torn in-between: version fully determines contents.
            match rec.version {
                0 => assert_eq!(rec.model.len(), 4),
                1 => assert_eq!(rec.model.len(), 5),
                _ => unreachable!(),
            }
        }
        let full = replay_wal(&wal, db, 0).unwrap();
        assert_eq!(full.version, 2);
        assert_eq!(full.torn_at, None);
    }

    #[test]
    fn bad_magic_is_corrupt_not_torn() {
        let mut wal = b"XXXX\x01\x00\x00\x00".to_vec();
        wal.extend_from_slice(&encode_record(1, &[]));
        let err = replay_wal(&wal, base_db(), 0).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unknown_op_tag_is_corrupt() {
        let mut wal = wal_header().to_vec();
        wal.extend_from_slice(&encode_record(1, &[vec![9u8]]));
        let err = replay_wal(&wal, base_db(), 0).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn memory_backend_full_cycle() {
        let db = base_db();
        let mut backend = MemoryBackend::new();
        StorageBackend::<UncertainDb>::checkpoint(&mut backend, &db, 0).unwrap();
        StorageBackend::<UncertainDb>::append_burst(
            &mut backend,
            1,
            &[encode_insert_op::<UncertainDb>(&obj(100, 8.0, 9.0))],
        )
        .unwrap();
        let rec = backend
            .recover::<UncertainDb>(&EngineConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(rec.version, 1);
        assert_eq!(rec.model.len(), 5);
        // A new checkpoint truncates the journal.
        StorageBackend::<UncertainDb>::checkpoint(&mut backend, &rec.model, rec.version).unwrap();
        assert_eq!(backend.wal_bytes(), wal_header().to_vec());
    }

    #[test]
    fn file_backend_full_cycle() {
        let dir = std::env::temp_dir().join(format!("cpnn_storage_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let db = base_db();
        {
            let mut backend = FileBackend::open(&dir).unwrap();
            assert!(backend
                .recover::<UncertainDb>(&EngineConfig::default())
                .unwrap()
                .is_none());
            StorageBackend::<UncertainDb>::checkpoint(&mut backend, &db, 0).unwrap();
            StorageBackend::<UncertainDb>::append_burst(
                &mut backend,
                1,
                &[encode_insert_op::<UncertainDb>(&obj(100, 8.0, 9.0))],
            )
            .unwrap();
            StorageBackend::<UncertainDb>::append_burst(
                &mut backend,
                2,
                &[encode_remove_op(ObjectId(2))],
            )
            .unwrap();
        }
        let mut backend = FileBackend::open(&dir).unwrap();
        let rec = backend
            .recover::<UncertainDb>(&EngineConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(rec.version, 2);
        assert_eq!(rec.records, 2);
        assert_eq!(rec.model.len(), 4);
        // Checkpoint resets the journal file to just its header.
        StorageBackend::<UncertainDb>::checkpoint(&mut backend, &rec.model, rec.version).unwrap();
        assert_eq!(fs::read(backend.wal_path()).unwrap(), wal_header().to_vec());
        let rec2 = backend
            .recover::<UncertainDb>(&EngineConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(rec2.version, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_writer_short_writes_then_fails() {
        let mut w = CrashWriter::new(Vec::new(), 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2);
        assert!(w.write(b"h").is_err());
        assert_eq!(w.into_inner(), b"abcde");
    }
}
