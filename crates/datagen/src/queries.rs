//! Query-point workloads ("The query points are randomly generated. Each
//! point in the graph is an average of the results for 100 queries",
//! Sec. V-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `count` query points uniform over `[0, 10_000)` (the paper's domain).
pub fn query_points(seed: u64, count: usize) -> Vec<f64> {
    query_points_in(seed, count, 0.0, 10_000.0)
}

/// `count` query points uniform over `[lo, hi)`.
pub fn query_points_in(seed: u64, count: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Skewed repeat traffic: `count` query points drawn from `hot_spots`
/// uniformly placed centers on `[lo, hi)`, with center ranks weighted by
/// a Zipf law (`weight(r) ∝ 1 / r^exponent`, `r = 1..=hot_spots`) and
/// each draw jittered by up to `±jitter` around its center.
///
/// This is the workload the verification cache is built for: with
/// `jitter = 0` the stream repeats exact points (quantum-0 hits); with
/// `jitter > 0` it models "nearby" traffic that only a quantization grid
/// wider than the jitter collapses onto shared cache entries. Points are
/// clamped into `[lo, hi]`; deterministic given the seed.
pub fn zipfian_query_points(
    seed: u64,
    count: usize,
    lo: f64,
    hi: f64,
    hot_spots: usize,
    exponent: f64,
    jitter: f64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hot_spots = hot_spots.max(1);
    let centers: Vec<f64> = (0..hot_spots).map(|_| rng.gen_range(lo..hi)).collect();
    // Cumulative Zipf weights over ranks 1..=hot_spots.
    let mut cumulative: Vec<f64> = Vec::with_capacity(hot_spots);
    let mut total = 0.0;
    for r in 1..=hot_spots {
        total += 1.0 / (r as f64).powf(exponent);
        cumulative.push(total);
    }
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            let rank = cumulative.partition_point(|&c| c <= u).min(hot_spots - 1);
            let point = if jitter > 0.0 {
                centers[rank] + rng.gen_range(-jitter..jitter)
            } else {
                centers[rank]
            };
            point.clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_in_range_and_deterministic() {
        let a = query_points(3, 100);
        let b = query_points(3, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&q| (0.0..10_000.0).contains(&q)));
    }

    #[test]
    fn custom_range() {
        let pts = query_points_in(1, 50, -5.0, 5.0);
        assert!(pts.iter().all(|&q| (-5.0..5.0).contains(&q)));
    }

    #[test]
    fn zipfian_points_repeat_and_stay_in_range() {
        let pts = zipfian_query_points(7, 500, 0.0, 10_000.0, 16, 1.1, 0.0);
        assert_eq!(
            pts,
            zipfian_query_points(7, 500, 0.0, 10_000.0, 16, 1.1, 0.0)
        );
        assert!(pts.iter().all(|&q| (0.0..=10_000.0).contains(&q)));
        // Without jitter every point is one of the 16 hot spots, so the
        // stream is dominated by exact repeats.
        let mut distinct: Vec<u64> = pts.iter().map(|q| q.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 16, "{} distinct points", distinct.len());
        // Zipf skew: the hottest point is sampled far above the uniform share.
        let mode = pts
            .iter()
            .map(|q| q.to_bits())
            .fold(std::collections::HashMap::new(), |mut m, b| {
                *m.entry(b).or_insert(0usize) += 1;
                m
            })
            .into_values()
            .max()
            .unwrap();
        assert!(mode > 500 / 16, "mode count {mode}");
    }

    #[test]
    fn zipfian_jitter_spreads_points_around_hot_spots() {
        let exact = zipfian_query_points(9, 200, 0.0, 1_000.0, 8, 1.0, 0.0);
        let jittered = zipfian_query_points(9, 200, 0.0, 1_000.0, 8, 1.0, 2.0);
        assert_eq!(exact.len(), jittered.len());
        let mut distinct: Vec<u64> = jittered.iter().map(|q| q.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 8, "jitter should break exact repeats");
        assert!(jittered.iter().all(|&q| (0.0..=1_000.0).contains(&q)));
    }
}
