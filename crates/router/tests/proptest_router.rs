//! The distributed-serving correctness contract, on random workloads:
//!
//! 1. **1-D equivalence** — at shard-process counts 1, 2, and 4, a
//!    routed C-PNN query (socket fan-out, wire-shipped histograms,
//!    router-side merge + verify/refine) returns **bit-for-bit** the
//!    verdicts and probability bounds of the in-process [`ShardedDb`];
//! 2. **k-NN equivalence** — same, for C-PkNN (`k > 1`);
//! 3. **2-D equivalence** — same, over the disk/rectangle engine;
//! 4. **update equivalence** — under interleaved coalesced update
//!    bursts (inserts, removes, duplicate inserts, removes of absent
//!    ids), routed per-op outcomes match the in-process ones and every
//!    post-burst query still matches bit-for-bit;
//! 5. **merge determinism** — [`merge_replies`] is a pure function of
//!    the reply *contents*: shuffling shard reply arrival order changes
//!    nothing;
//! 6. **candidate codec identity** — a `Candidates` reply decodes to
//!    exactly the histograms that were encoded, every `f64` bit intact
//!    (the keystone under properties 1–4).

use std::sync::Arc;

use cpnn_core::pipeline::{cpnn, PipelineConfig, QuerySpec};
use cpnn_core::{
    CpnnResult, DistanceModel, Object2d, ObjectId, QueryServer, ShardedDb,
    Strategy as EvalStrategy, UncertainDb, UncertainDb2d, UncertainObject,
};
use cpnn_router::wire::Response;
use cpnn_router::{
    merge_replies, QueryRouter, RoutedModel, RouterConfig, ShardAddr, ShardListener, ShardMap,
    ShardReply, ShardServeConfig, ShardServerHandle, UpdateOp,
};
use proptest::prelude::*;
use proptest::TestCaseError;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Random uniform-pdf 1-D objects with ids `0..n` on a bounded domain.
fn objects(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

/// Random 2-D objects: disks and axis-aligned rectangles, ids `0..n`.
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    prop::collection::vec(
        (-30.0f64..30.0, -30.0f64..30.0, 0.5f64..5.0, prop::bool::ANY),
        3..max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r, disk))| {
                let id = ObjectId(i as u64);
                if disk {
                    Object2d::circle(id, [x, y], r).unwrap()
                } else {
                    Object2d::rectangle(id, [x - r, y - r * 0.7], [x + r, y + r * 0.7]).unwrap()
                }
            })
            .collect()
    })
}

/// A quick-failing router config for tests (no multi-second stalls).
fn router_cfg() -> RouterConfig {
    RouterConfig {
        timeout: std::time::Duration::from_secs(10),
        retries: 1,
        backoff: std::time::Duration::from_millis(10),
    }
}

/// Bit-for-bit result comparison: answers plus every report (id, label,
/// and probability bounds — `ObjectReport` derives `PartialEq`).
fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

/// A fleet of in-test shard processes (thread-hosted, Unix-domain
/// sockets in a per-test temp directory) mirroring `db`'s partitioning.
struct Fleet<M: RoutedModel> {
    handles: Vec<ShardServerHandle<M>>,
    map: ShardMap,
}

fn spawn_fleet<M: RoutedModel>(db: &ShardedDb<M>, tag: &str) -> Fleet<M> {
    let dir = std::env::temp_dir().join(format!("cpnn-router-pt-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    let mut addrs = Vec::with_capacity(db.num_shards());
    let mut handles = Vec::with_capacity(db.num_shards());
    for i in 0..db.num_shards() {
        // Rebuild the slab's model exactly as `from_parts` would — same
        // objects, same config, its own index.
        let model = M::build_shard(db.shard_model(i).shard_objects(), db.shard_configuration())
            .expect("shard rebuild");
        let server = Arc::new(QueryServer::start(model, 1, db.pipeline_config()));
        let addr = ShardAddr::Unix(dir.join(format!("s{i}.sock")));
        let listener = ShardListener::bind(&addr).expect("bind shard socket");
        let handle = ShardServerHandle::spawn(server, listener, ShardServeConfig::default())
            .expect("spawn shard server");
        addrs.push(handle.addr().clone());
        handles.push(handle);
    }
    let map = ShardMap {
        axis: db.partition_axis(),
        bounds: db.slab_bounds().to_vec(),
        addrs,
    };
    Fleet { handles, map }
}

impl<M: RoutedModel> Fleet<M> {
    fn router(&self, pipeline: PipelineConfig) -> QueryRouter<M> {
        QueryRouter::connect(&self.map, pipeline, router_cfg()).expect("router connect")
    }

    fn shutdown(self) {
        for h in self.handles {
            h.shutdown();
        }
    }
}

/// A deterministic index permutation from a seed (splitmix-style LCG;
/// the shuffle only needs to be arbitrary, not uniform).
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 1: routed ≡ single-process for 1-D C-PNN at every
    /// shard-process count.
    #[test]
    fn routed_equals_single_process_1d(
        objs in objects(18),
        points in prop::collection::vec(-60.0f64..60.0, 1..8),
        threshold in 0.05f64..0.95,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(threshold, 0.01, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            let fleet = spawn_fleet(&sharded, "eq1d");
            let mut router = fleet.router(cfg);
            for &q in &points {
                let want = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                let got = router.query(&q, &spec).unwrap();
                assert_same(&got, &want, &format!("q = {q}, {shards} shard procs"))?;
            }
            fleet.shutdown();
        }
    }

    /// Property 2: routed ≡ single-process for C-PkNN.
    #[test]
    fn routed_equals_single_process_knn(
        objs in objects(16),
        points in prop::collection::vec(-60.0f64..60.0, 1..6),
        k in 2usize..5,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::knn(k, 0.4, 0.0, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            let fleet = spawn_fleet(&sharded, "eqknn");
            let mut router = fleet.router(cfg);
            for &q in &points {
                let want = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                let got = router.query(&q, &spec).unwrap();
                assert_same(&got, &want, &format!("q = {q}, k = {k}, {shards} shard procs"))?;
            }
            fleet.shutdown();
        }
    }

    /// Property 3: routed ≡ single-process over the 2-D engine.
    #[test]
    fn routed_equals_single_process_2d(
        objs in objects_2d(12),
        points in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 1..5),
        k in 1usize..4,
    ) {
        let flat = UncertainDb2d::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::knn(k, 0.3, 0.01, EvalStrategy::Verified);
        for shards in SHARD_COUNTS {
            let sharded = ShardedDb::from_model(&flat, shards).unwrap();
            let fleet = spawn_fleet(&sharded, "eq2d");
            let mut router = fleet.router(cfg);
            for &(x, y) in &points {
                let q = [x, y];
                let want = cpnn(&sharded, &q, &spec, &cfg).unwrap();
                let got = router.query(&q, &spec).unwrap();
                assert_same(&got, &want, &format!("q = {q:?}, k = {k}, {shards} shard procs"))?;
            }
            fleet.shutdown();
        }
    }

    /// Property 4: routed ≡ single-process under interleaved coalesced
    /// update bursts — per-op outcomes match (including duplicate-insert
    /// failures and remove-absent no-ops), and every post-burst query
    /// still matches bit-for-bit.
    #[test]
    fn routed_matches_under_interleaved_updates(
        objs in objects(14),
        points in prop::collection::vec(-60.0f64..60.0, 2..6),
        bursts in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u64..6, -50.0f64..50.0), 1..5),
            1..4,
        ),
        shards in prop::sample::select(vec![2usize, 4]),
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let mut local = ShardedDb::from_model(&flat, shards).unwrap();
        let fleet = spawn_fleet(&local, "upd");
        let mut router = fleet.router(cfg);
        for (b, burst) in bursts.iter().enumerate() {
            let mut ops = Vec::with_capacity(burst.len());
            let mut expected = Vec::with_capacity(burst.len());
            for &(kind, slot, pos) in burst {
                // A small id pool (1000..1006) makes duplicate inserts
                // and absent removes common.
                let id = ObjectId(1000 + slot);
                if kind < 2 {
                    let object = UncertainObject::uniform(id, pos, pos + 2.0).unwrap();
                    expected.push(local.insert(object.clone()).map_err(|e| e.to_string()));
                    ops.push(UpdateOp::Insert(object));
                } else {
                    let _ = local.remove(id);
                    // Remove is a no-op success even when absent.
                    expected.push(Ok(()));
                    ops.push(UpdateOp::Remove(id));
                }
            }
            let report = router.update(ops).unwrap();
            prop_assert_eq!(report.batch, burst.len());
            prop_assert_eq!(&report.outcomes, &expected, "burst {} outcomes", b);
            prop_assert_eq!(report.objects as usize, local.len(), "burst {} size", b);
            for &q in &points {
                let want = cpnn(&local, &q, &spec, &cfg).unwrap();
                let got = router.query(&q, &spec).unwrap();
                assert_same(&got, &want, &format!("q = {q} after burst {b}, {shards} shard procs"))?;
            }
        }
        fleet.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 5: the router-side merge is independent of reply arrival
    /// order — shuffled replies produce the identical merged survivor
    /// list (same items, same order, same bits).
    #[test]
    fn merge_is_order_independent(
        objs in objects(24),
        q in -60.0f64..60.0,
        k in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let sharded = ShardedDb::from_model(&flat, 4).unwrap();
        let selected = sharded.overlapping(&q, k);
        let replies = |order_seed: Option<u64>| {
            let mut rs: Vec<ShardReply> = selected
                .iter()
                .map(|&(near, i)| ShardReply {
                    near,
                    shard: i,
                    items: sharded.shard_model(i).filter(&q, k).unwrap().items,
                })
                .collect();
            if let Some(s) = order_seed {
                permute(&mut rs, s);
            }
            rs
        };
        let want = merge_replies(replies(None), k).unwrap();
        let got = merge_replies(replies(Some(seed)), k).unwrap();
        prop_assert_eq!(got.items, want.items, "merged survivors differ after shuffle");
    }

    /// Property 6: the `Candidates` wire codec is the identity on filter
    /// output — decode(encode(items)) == items, bit for bit (histograms
    /// cross as raw parts; nothing is renormalized).
    #[test]
    fn candidates_round_trip_bitwise(
        objs in objects(24),
        q in -60.0f64..60.0,
        k in 1usize..4,
        version in 0u64..u64::MAX,
    ) {
        let flat = UncertainDb::build(objs).unwrap();
        let items = flat.filter(&q, k).unwrap().items;
        let payload = Response::Candidates { version, items: items.clone() }.encode();
        match Response::decode(&payload).unwrap() {
            Response::Candidates { version: v, items: got } => {
                prop_assert_eq!(v, version);
                prop_assert_eq!(got, items, "decoded candidates differ from encoded");
            }
            other => prop_assert!(false, "unexpected decode: {:?}", other),
        }
    }
}
