//! Sensor monitoring: the paper's motivating scientific application
//! (Sec. I): sensors report noisy temperatures as histogram pdfs; analysts
//! ask which district's temperature is closest to a centroid, and which
//! sensor reads the minimum — a min-query being "a special case of PNN,
//! since it can be characterized as a PNN by setting q to −∞".
//!
//! Run with: `cargo run --example sensor_monitoring`

use cpnn::core::{CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject};
use cpnn::pdf::HistogramPdf;

/// A sensor whose weekly temperature readings form a histogram (paper
/// Fig. 1(b): arbitrary pdf between 10 °C and 20 °C).
fn sensor(id: u64, lo: f64, masses: &[f64]) -> UncertainObject {
    let n = masses.len();
    let edges: Vec<f64> = (0..=n).map(|k| lo + k as f64).collect();
    UncertainObject::from_histogram(
        ObjectId(id),
        HistogramPdf::from_masses(edges, masses.to_vec()).expect("valid histogram"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight districts; each sensor's pdf is a per-degree histogram.
    let sensors = vec![
        sensor(0, 10.0, &[0.1, 0.3, 0.4, 0.2]),        // 10–14 °C
        sensor(1, 12.0, &[0.2, 0.5, 0.2, 0.1]),        // 12–16 °C
        sensor(2, 13.0, &[0.05, 0.15, 0.4, 0.3, 0.1]), // 13–18 °C
        sensor(3, 15.0, &[0.3, 0.4, 0.3]),             // 15–18 °C
        sensor(4, 16.0, &[0.25, 0.5, 0.25]),           // 16–19 °C
        sensor(5, 11.0, &[0.6, 0.3, 0.1]),             // 11–14 °C
        sensor(6, 17.5, &[0.2, 0.6, 0.2]),             // 17.5–20.5 °C
        sensor(7, 14.0, &[0.1, 0.8, 0.1]),             // 14–17 °C
    ];
    let db = UncertainDb::build(sensors)?;

    // --- Which district is closest to the 15 °C cluster centroid? --------
    let centroid = 15.0;
    let pnn = db.pnn(centroid)?;
    println!("Districts closest to the {centroid} °C centroid:");
    for (id, p) in pnn.probabilities.iter().take(4) {
        println!("  sensor {id}: {:5.1}%", 100.0 * p);
    }

    // --- Confident answers only: P = 25%, Δ = 1%. ------------------------
    let res = db.cpnn(&CpnnQuery::new(centroid, 0.25, 0.01), Strategy::Verified)?;
    println!(
        "\nC-PNN (P = 25%): {:?} — verification resolved it: {}",
        res.answers, res.stats.resolved_by_verification
    );

    // --- Min-query: which sensor reads the minimum temperature? ----------
    let min = db.pnn_min()?;
    println!("\nPr[sensor yields the minimum temperature]:");
    for (id, p) in min.probabilities.iter().filter(|(_, p)| *p > 1e-9) {
        println!("  sensor {id}: {:5.1}%", 100.0 * p);
    }

    // --- Max-query, same machinery at the other end. ----------------------
    let max = db.pnn_max()?;
    let (top, p) = max.probabilities[0];
    println!("\nMost likely maximum: sensor {top} ({:.1}%)", 100.0 * p);
    Ok(())
}
