//! Property tests for the extensions: probabilistic k-NN and 2-D regions.

use cpnn_core::exact::exact_probabilities;
use cpnn_core::knn::{knn_probabilities, knn_upper_bounds, knn_verifier_bounds};
use cpnn_core::{pnn_2d, CandidateSet, CircleObject, ObjectId, SubregionTable, UncertainObject};
use proptest::prelude::*;

fn objects_strategy(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..15.0), 2..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

fn circles_strategy(max: usize) -> impl Strategy<Value = Vec<CircleObject>> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0, 0.3f64..5.0), 2..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| CircleObject::new(ObjectId(i as u64), [x, y], r).unwrap())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn knn_sums_to_min_k_n(objects in objects_strategy(10), q in -50.0f64..50.0, k in 1usize..5) {
        let cands = CandidateSet::build_k(&objects, q, 0, k).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let probs = knn_probabilities(&table, k);
        let total: f64 = probs.iter().sum();
        let want = k.min(cands.len()) as f64;
        prop_assert!((total - want).abs() < 1e-5, "k = {k}: sum {total} vs {want}");
    }

    #[test]
    fn knn_k1_equals_pnn(objects in objects_strategy(10), q in -50.0f64..50.0) {
        let cands = CandidateSet::build_k(&objects, q, 0, 1).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let knn = knn_probabilities(&table, 1);
        let (pnn, _) = exact_probabilities(&table);
        for (a, b) in knn.iter().zip(&pnn) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn knn_bounds_contain_exact(
        objects in objects_strategy(9),
        q in -50.0f64..50.0,
        k in 1usize..4,
    ) {
        let cands = CandidateSet::build_k(&objects, q, 0, k).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let exact = knn_probabilities(&table, k);
        let rs = knn_upper_bounds(&table);
        let (lo, hi) = knn_verifier_bounds(&table, k);
        for i in 0..exact.len() {
            prop_assert!(exact[i] <= rs[i] + 1e-7, "RS-k: {} vs {}", exact[i], rs[i]);
            prop_assert!(lo[i] <= exact[i] + 1e-7, "L-SR-k: {} vs {}", lo[i], exact[i]);
            prop_assert!(hi[i] >= exact[i] - 1e-7, "U-SR-k: {} vs {}", hi[i], exact[i]);
        }
    }

    #[test]
    fn knn_monotone_in_k(objects in objects_strategy(9), q in -50.0f64..50.0) {
        // Build at the widest horizon (k = 3) so candidate sets align.
        let cands = CandidateSet::build_k(&objects, q, 0, 3).unwrap();
        prop_assume!(!cands.is_empty());
        let table = SubregionTable::build(&cands);
        let p1 = knn_probabilities(&table, 1);
        let p2 = knn_probabilities(&table, 2);
        let p3 = knn_probabilities(&table, 3);
        for i in 0..p1.len() {
            prop_assert!(p1[i] <= p2[i] + 1e-9);
            prop_assert!(p2[i] <= p3[i] + 1e-9);
        }
    }

    #[test]
    fn circles_probabilities_form_distribution(
        circles in circles_strategy(8),
        qx in -25.0f64..25.0,
        qy in -25.0f64..25.0,
    ) {
        let probs = pnn_2d(&circles, [qx, qy], 32).unwrap();
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-4, "sum = {total}");
        for (_, p) in &probs {
            prop_assert!((0.0..=1.0 + 1e-9).contains(p));
        }
    }

    #[test]
    fn circle_strictly_dominating_wins(
        qx in -5.0f64..5.0,
        qy in -5.0f64..5.0,
        r in 0.5f64..2.0,
    ) {
        // One circle hugging the query, another certainly farther.
        let near = CircleObject::new(ObjectId(0), [qx + 0.1, qy], r).unwrap();
        let far_center = [qx + 100.0, qy];
        let far = CircleObject::new(ObjectId(1), far_center, r).unwrap();
        let probs = pnn_2d(&[near, far], [qx, qy], 32).unwrap();
        prop_assert_eq!(probs[0].0, ObjectId(0));
        prop_assert!((probs[0].1 - 1.0).abs() < 1e-9);
    }
}
