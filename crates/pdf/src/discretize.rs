//! Mass-preserving discretization of arbitrary pdfs into histograms.
//!
//! The paper approximates each Gaussian uncertainty pdf "by a 300-bar
//! histogram" (Sec. V-B.5). Discretizing through cdf differences (rather than
//! sampling the density) preserves bin masses exactly, so the discretized pdf
//! still integrates to one and its cdf agrees with the original at every bin
//! edge.

use crate::error::PdfError;
use crate::histogram::HistogramPdf;
use crate::traits::Pdf;
use crate::Result;

/// Convert any [`Pdf`] into an equi-width `bars`-bar [`HistogramPdf`] whose
/// bin masses equal the source's cdf differences.
pub fn discretize<P: Pdf + ?Sized>(pdf: &P, bars: usize) -> Result<HistogramPdf> {
    if bars == 0 {
        return Err(PdfError::NonPositiveParameter {
            name: "bars",
            value: 0.0,
        });
    }
    let (lo, hi) = pdf.support();
    let w = (hi - lo) / bars as f64;
    let edges: Vec<f64> = (0..=bars)
        .map(|i| if i == bars { hi } else { lo + i as f64 * w })
        .collect();
    let masses: Vec<f64> = (0..bars)
        .map(|i| (pdf.cdf(edges[i + 1]) - pdf.cdf(edges[i])).max(0.0))
        .collect();
    HistogramPdf::from_masses(edges, masses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TruncatedGaussian, UniformPdf};

    #[test]
    fn discretized_gaussian_preserves_cdf_at_edges() {
        let g = TruncatedGaussian::paper_default(0.0, 6.0).unwrap();
        let h = discretize(&g, 300).unwrap();
        assert_eq!(h.bar_count(), 300);
        for x in [0.0, 1.0, 2.2, 3.0, 4.8, 6.0] {
            // Histogram cdf agrees at edges exactly and in between to O(1/bars).
            assert!(
                (h.cdf(x) - g.cdf(x)).abs() < 5e-3,
                "x = {x}: {} vs {}",
                h.cdf(x),
                g.cdf(x)
            );
        }
        // At an exact edge the match is exact by construction.
        let edge = h.edges()[100];
        assert!((h.cdf(edge) - g.cdf(edge)).abs() < 1e-12);
    }

    #[test]
    fn discretized_uniform_is_exact() {
        let u = UniformPdf::new(5.0, 9.0).unwrap();
        let h = discretize(&u, 10).unwrap();
        for x in [5.0, 5.5, 7.0, 9.0] {
            assert!((h.cdf(x) - u.cdf(x)).abs() < 1e-12);
            assert!((h.density(x.min(8.999)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_bars_rejected() {
        let u = UniformPdf::new(0.0, 1.0).unwrap();
        assert!(discretize(&u, 0).is_err());
    }

    #[test]
    fn works_through_trait_object() {
        let g = TruncatedGaussian::paper_default(1.0, 2.0).unwrap();
        let dyn_pdf: &dyn Pdf = &g;
        let h = discretize(dyn_pdf, 50).unwrap();
        assert_eq!(h.bar_count(), 50);
        assert!((h.cdf(2.0) - 1.0).abs() < 1e-12);
    }
}
