//! Properties of the verification-state cache (`cache.rs`) on random
//! workloads:
//!
//! 1. **exact-reuse equivalence** — at quantum 0, evaluating a query
//!    stream (with repeats) through a cached scratch returns bit-for-bit
//!    the verdicts and probability bounds of fresh uncached evaluation,
//!    for 1-D, 2-D, and k-NN specs, at capacities small enough to force
//!    LRU eviction;
//! 2. **quantization determinism** — at quantum ε > 0 every response
//!    equals the *uncached* evaluation of the snapped query point,
//!    regardless of cache capacity or arrival order (the approximation is
//!    the snap, never the cache);
//! 3. **no stale-snapshot hits** — a cache-enabled `QueryServer` under
//!    interleaved `insert`/`remove` answers every query exactly as
//!    sequential evaluation against the snapshot version the response
//!    cites (version invalidation keeps COW updates from serving stale
//!    bounds);
//! 4. **sharded parity** — the shard-aware batch executor with caching on
//!    (whole-query work units) matches flat sequential uncached
//!    evaluation.

use std::sync::Arc;

use cpnn_core::cache::{quantize_coord, CacheConfig};
use cpnn_core::pipeline::{cpnn, cpnn_with};
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    BatchExecutor, CpnnResult, Object2d, ObjectId, PipelineConfig, QueryScratch, QuerySpec,
    Snapshot, UncertainDb, UncertainDb2d, UncertainObject,
};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Random uniform-pdf objects with ids `0..n` on a bounded domain.
fn objects_1d(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

/// Random mixed 2-D objects (disks and rectangles).
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0, 0.5f64..6.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| {
                let id = ObjectId(i as u64);
                if i % 3 == 0 {
                    Object2d::rectangle(id, [x, y], [x + r, y + 0.5 * r + 0.1]).unwrap()
                } else {
                    Object2d::circle(id, [x, y], r).unwrap()
                }
            })
            .collect()
    })
}

/// A query stream with guaranteed repeats: each base point is visited
/// several times, interleaved.
fn with_repeats(points: Vec<f64>, rounds: usize) -> Vec<f64> {
    let mut stream = Vec::with_capacity(points.len() * rounds);
    for _ in 0..rounds {
        stream.extend(points.iter().copied());
    }
    stream
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1 (1-D + k-NN): cached ≡ uncached bit-for-bit at quantum
    /// 0, across strategies, with capacity 2 forcing constant eviction.
    #[test]
    fn cached_equals_uncached_1d(
        objs in objects_1d(14),
        base in prop::collection::vec(-60.0f64..60.0, 2..6),
        capacity in prop::sample::select(vec![2usize, 64]),
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let stream = with_repeats(base, 3);
        let cfg = PipelineConfig {
            cache: CacheConfig::new(capacity, 0.0),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::nn(0.5, 0.0, EvalStrategy::Basic),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        let mut scratch = QueryScratch::new();
        for (i, &q) in stream.iter().enumerate() {
            for spec in &specs {
                let got = cpnn_with(&db, &q, spec, &cfg, &mut scratch).unwrap();
                let want = cpnn(&db, &q, spec, &uncached_cfg).unwrap();
                assert_same(&got, &want, &format!("q = {q}, query {i}, k = {}", spec.k))?;
            }
        }
        // The repeated rounds must actually hit (3 rounds × shared entry
        // per (point, k); capacity 2 still hits within a round across specs
        // of equal k).
        prop_assert!(scratch.cache_stats().hits > 0, "stream produced no hits");
    }

    /// Property 1 (2-D): same equivalence over the 2-D engine.
    #[test]
    fn cached_equals_uncached_2d(
        objs in objects_2d(10),
        base in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 2..5),
    ) {
        let db = UncertainDb2d::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(32, 0.0),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        let mut scratch = QueryScratch::new();
        for round in 0..3 {
            for (i, &(x, y)) in base.iter().enumerate() {
                for spec in &specs {
                    let q = [x, y];
                    let got = cpnn_with(&db, &q, spec, &cfg, &mut scratch).unwrap();
                    let want = cpnn(&db, &q, spec, &uncached_cfg).unwrap();
                    assert_same(
                        &got,
                        &want,
                        &format!("q = {q:?}, query {i}, round {round}, k = {}", spec.k),
                    )?;
                }
            }
        }
        prop_assert!(scratch.cache_stats().hits > 0);
    }

    /// Property 2: with quantum ε, every answer equals uncached evaluation
    /// of the snapped point — independent of cache state.
    #[test]
    fn quantized_equals_uncached_at_snapped_point(
        objs in objects_1d(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..16),
        quantum in prop::sample::select(vec![0.5f64, 2.0, 10.0]),
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(8, quantum),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let mut scratch = QueryScratch::new();
        for (i, &q) in points.iter().enumerate() {
            let got = cpnn_with(&db, &q, &spec, &cfg, &mut scratch).unwrap();
            let snapped = quantize_coord(q, quantum);
            let want = cpnn(&db, &snapped, &spec, &uncached_cfg).unwrap();
            assert_same(&got, &want, &format!("q = {q} → {snapped}, query {i}"))?;
        }
    }

    /// Property 3: cache-enabled serving under interleaved updates — every
    /// response matches sequential uncached evaluation against exactly the
    /// snapshot version it cites. Updates now invalidate worker caches
    /// *incrementally* (only entries whose candidate horizon intersects
    /// the updated region drop), so this is also the stale-bounds safety
    /// proof for region-scoped invalidation.
    #[test]
    fn server_cache_never_serves_stale_snapshots(
        objs in objects_1d(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..20),
        threads in 1usize..5,
        update_stride in 1usize..4,
    ) {
        use cpnn_core::server::QueryServer;
        let base = objs.len() as u64;
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(64, 0.0),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let server = QueryServer::start(db, threads, cfg);

        let mut versions: Vec<Snapshot<UncertainDb>> = vec![server.snapshot()];
        let mut tickets = Vec::new();
        let mut inserted: u64 = 0;
        // Repeat every point immediately so caches warm up, then keep
        // swapping snapshots underneath the stream.
        for (i, &q) in points.iter().enumerate() {
            tickets.push((q, server.submit(q, spec)));
            tickets.push((q, server.submit(q, spec)));
            if i % update_stride == 0 {
                let snap = if i % (2 * update_stride) == 0 {
                    inserted += 1;
                    server
                        .insert(
                            UncertainObject::uniform(ObjectId(base + inserted), q - 1.0, q + 1.0)
                                .unwrap(),
                        )
                        .unwrap()
                } else {
                    server.remove(ObjectId(base + inserted)).unwrap()
                };
                versions.push(snap);
            }
        }
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let v = served.snapshot_version as usize;
            prop_assert!(v < versions.len(), "unknown version {}", v);
            let want = cpnn(&*versions[v].model, &q, &spec, &uncached_cfg).unwrap();
            let got = served.result.unwrap();
            assert_same(&got, &want, &format!("query {i} at v{v}, T = {threads}"))?;
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.served, 2 * points.len() as u64);
        prop_assert!(
            stats.cache_hits + stats.cache_misses >= stats.served,
            "every query consults the cache"
        );
    }

    /// Property 3b: the same stale-bounds safety when updates flow through
    /// the write-coalescing lane — whole bursts publish as one version
    /// with one (incremental) invalidation pass, and every response still
    /// matches sequential evaluation against the version it cites.
    #[test]
    fn server_cache_never_serves_stale_bounds_with_coalesced_bursts(
        objs in objects_1d(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..14),
        threads in 1usize..4,
        burst in 1usize..4,
    ) {
        use cpnn_core::server::QueryServer;
        let base = objs.len() as u64;
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(64, 0.0),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        // `models[v]` mirrors the contents the server publishes as
        // version v (each burst = one version): the persistent store makes
        // keeping every historical handle free.
        let mut models = vec![db.clone()];
        let mut mirror = db.clone();
        let server = QueryServer::start(db, threads, cfg);

        let mut tickets = Vec::new();
        let mut update_tickets = Vec::new();
        let mut fresh: u64 = 0;
        for (i, &q) in points.iter().enumerate() {
            tickets.push((q, server.submit(q, spec)));
            tickets.push((q, server.submit(q, spec)));
            // Queue a small burst, publish it in one coalesced flush.
            if i % 2 == 0 {
                for _ in 0..burst {
                    fresh += 1;
                    let object =
                        UncertainObject::uniform(ObjectId(base + fresh), q - 1.0, q + 1.0)
                            .unwrap();
                    mirror.insert(object.clone()).unwrap();
                    update_tickets.push(server.queue_insert(object));
                }
                let report = server.flush_writes();
                prop_assert_eq!(report.applied, burst);
                prop_assert!(report.published.is_some());
                models.push(mirror.clone());
            }
        }
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let v = served.snapshot_version as usize;
            prop_assert!(v < models.len(), "unknown version {}", v);
            let want = cpnn(&models[v], &q, &spec, &uncached_cfg).unwrap();
            let got = served.result.unwrap();
            assert_same(&got, &want, &format!("query {i} at v{v}, T = {threads}"))?;
        }
        for t in update_tickets {
            prop_assert!(t.wait().result.is_ok());
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.served, 2 * points.len() as u64);
    }

    /// Property 4: sharded batch with caching on (whole-query work units)
    /// ≡ flat sequential uncached evaluation.
    #[test]
    fn sharded_batch_with_cache_matches_flat(
        objs in objects_1d(16),
        base in prop::collection::vec(-60.0f64..60.0, 2..8),
        shards in prop::sample::select(vec![1usize, 3, 8]),
    ) {
        let flat = UncertainDb::build(objs.clone()).unwrap();
        let sharded = UncertainDb::build_sharded(objs, shards).unwrap();
        let stream = with_repeats(base, 2);
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let jobs: Vec<(f64, QuerySpec)> = stream.iter().map(|&q| (q, spec)).collect();
        let mut cfg = sharded.pipeline_config();
        cfg.cache = CacheConfig::new(64, 0.0);
        let out = BatchExecutor::new(2).run_sharded(&sharded, &jobs, &cfg);
        prop_assert_eq!(out.results.len(), jobs.len());
        let uncached_cfg = PipelineConfig::default();
        for (i, ((q, spec), got)) in jobs.iter().zip(&out.results).enumerate() {
            let want = cpnn(&flat, q, spec, &uncached_cfg).unwrap();
            assert_same(got.as_ref().unwrap(), &want, &format!("query {i}, {shards} shards"))?;
        }
        prop_assert!(
            out.summary.cache_hits + out.summary.cache_misses == jobs.len() as u64,
            "every query consults the cache"
        );
    }
}

/// Non-proptest regression: an *in-place* mutation of the database (no
/// snapshot version in sight) must not serve stale cached state through
/// the same scratch — the object-count pin catches it.
#[test]
fn in_place_mutation_invalidates_cached_scratch() {
    let mut db = UncertainDb::build(vec![
        UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
        UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
    ])
    .unwrap();
    let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
    let cfg = PipelineConfig {
        cache: CacheConfig::new(16, 0.0),
        ..Default::default()
    };
    let mut scratch = QueryScratch::with_cache(cfg.cache);
    let before = cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
    assert_eq!(before.answers, vec![ObjectId(1)]);
    // In-place insert of a dominating object, same scratch, same point.
    db.insert(UncertainObject::uniform(ObjectId(3), 0.05, 0.15).unwrap())
        .unwrap();
    let after = cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
    assert_eq!(
        after.answers,
        vec![ObjectId(3)],
        "stale cached candidates served after an in-place insert"
    );
    // And removal flips it back.
    db.remove(ObjectId(3)).unwrap();
    let back = cpnn_with(&db, &0.0, &spec, &cfg, &mut scratch).unwrap();
    assert_eq!(back.answers, before.answers);
}

/// Non-proptest regression: incremental invalidation keeps cached entries
/// whose candidate horizon the update provably cannot touch — a far-away
/// insert still hits, a nearby insert drops the entry (and the fresh
/// answer is correct, never stale).
#[test]
fn incremental_invalidation_preserves_unaffected_entries() {
    use cpnn_core::server::QueryServer;
    // Tight cluster near 0; queries at 0 have a small candidate horizon.
    let objects: Vec<UncertainObject> = (0..8)
        .map(|i| {
            UncertainObject::uniform(ObjectId(i), i as f64 * 0.5, i as f64 * 0.5 + 0.4).unwrap()
        })
        .collect();
    let db = UncertainDb::build(objects).unwrap();
    let cfg = PipelineConfig {
        cache: CacheConfig::new(32, 0.0),
        ..Default::default()
    };
    let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
    let server = QueryServer::start(db, 1, cfg);
    let warm = server.submit(0.0, spec).wait();
    let baseline = warm.result.unwrap();

    // A far-away insert (mindist from q=0 is ~1000, way past the cluster
    // horizon of ~4): the worker advances incrementally and the entry
    // survives — the repeat is a HIT, with identical answers.
    server
        .insert(UncertainObject::uniform(ObjectId(500), 1000.0, 1001.0).unwrap())
        .unwrap();
    let again = server.submit(0.0, spec).wait();
    assert_eq!(again.snapshot_version, 1);
    let again = again.result.unwrap();
    assert_eq!(again.answers, baseline.answers);
    assert_eq!(again.reports, baseline.reports);
    let stats = server.stats();
    assert_eq!(
        (stats.cache_hits, stats.cache_misses),
        (1, 1),
        "entry survived the far-away update"
    );

    // A nearby insert (inside the horizon) must drop the entry — and the
    // fresh answer reflects the new object, never the stale bounds.
    server
        .insert(UncertainObject::uniform(ObjectId(501), 0.01, 0.05).unwrap())
        .unwrap();
    let after = server.submit(0.0, spec).wait();
    assert_eq!(after.snapshot_version, 2);
    let after = after.result.unwrap();
    assert_eq!(after.answers, vec![ObjectId(501)]);
    let stats = server.shutdown();
    assert_eq!(
        (stats.cache_hits, stats.cache_misses),
        (1, 2),
        "entry dropped by the nearby update"
    );
}

/// Non-proptest regression: an `Arc`-shared database plus two scratches
/// hit independently (per-thread caches never share state).
#[test]
fn per_thread_caches_are_independent() {
    let objects: Vec<UncertainObject> = (0..10)
        .map(|i| {
            UncertainObject::uniform(ObjectId(i), i as f64 * 3.0, i as f64 * 3.0 + 2.0).unwrap()
        })
        .collect();
    let db = Arc::new(UncertainDb::build(objects).unwrap());
    let cfg = PipelineConfig {
        cache: CacheConfig::new(16, 0.0),
        ..Default::default()
    };
    let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
    let mut a = QueryScratch::new();
    let mut b = QueryScratch::new();
    for _ in 0..2 {
        cpnn_with(&*db, &5.0, &spec, &cfg, &mut a).unwrap();
        cpnn_with(&*db, &5.0, &spec, &cfg, &mut b).unwrap();
    }
    assert_eq!(a.cache_stats().hits, 1);
    assert_eq!(b.cache_stats().hits, 1);
    assert_eq!(a.cache_stats().misses, 1);
}
