//! # cpnn-core — Constrained Probabilistic Nearest-Neighbor queries
//!
//! A from-scratch implementation of
//! *"Probabilistic Verifiers: Evaluating Constrained Nearest-Neighbor
//! Queries over Uncertain Data"* (Cheng, Chen, Mokbel, Chow — ICDE 2008).
//!
//! ## The problem
//!
//! Over uncertain data (each object a closed interval with a pdf), a
//! **PNN** query returns each object's probability of being the nearest
//! neighbor of a query point. Exact evaluation needs numerical integration
//! over products of distance cdfs — expensive. The paper's **C-PNN** asks
//! only for objects whose probability clears a threshold `P`, within a
//! tolerance `Δ`, which lets most objects be accepted/rejected from cheap
//! algebraic *bounds*.
//!
//! ## Pipeline (paper Fig. 3/5)
//!
//! 1. **Filter** — an R-tree prunes objects that provably have zero
//!    probability ([`cpnn_rtree`]).
//! 2. **Verify** — the [`verifiers`] (RS, L-SR, U-SR) tighten per-object
//!    probability bounds over the [`subregion::SubregionTable`]; the
//!    [`classify::Classifier`] labels objects `Satisfy`/`Fail`/`Unknown`.
//! 3. **Refine** — leftovers get exact per-subregion integration,
//!    incrementally ([`refine`]).
//!
//! All query flavors — 1-D ([`UncertainDb`]), 2-D ([`UncertainDb2d`]),
//! and k-NN — share one generic implementation of this flow in
//! [`pipeline`], parameterized by a [`pipeline::DistanceModel`].
//!
//! ## Sharding
//!
//! [`shard::ShardedDb`] partitions any [`shard::ShardableModel`] by
//! domain (equal-width slabs or equal-count quantiles —
//! [`shard::ShardBalance`]): each shard owns its own R-tree, a query
//! fans out only to shards overlapping its candidate horizon, and the
//! merged candidates run the shared verify/refine flow once (results
//! are identical to unsharded evaluation — property-tested).
//! `insert`/`remove` path-copy only the owning shard.
//!
//! ## Persistent storage
//!
//! Storage is copy-on-write all the way down: objects live in the
//! leaves of a persistent path-copying R-tree, with a persistent id map
//! alongside ([`store::IndexedStore`] over [`cpnn_rtree::SpatialIndex`]).
//! Any [`store::CowModel`] — the 1-D/2-D databases and [`ShardedDb`] —
//! produces an O(log n) successor snapshot per update instead of a
//! rebuild, and old handles keep answering for exactly their historical
//! contents (property-tested in `tests/proptest_persistent.rs`).
//!
//! ## Durability
//!
//! Snapshots can outlive the process: [`persist`] defines a versioned,
//! dimension-tagged, checksummed snapshot format (1-D, 2-D, and sharded
//! — [`persist::PersistentModel`]), and [`storage`] composes it with a
//! CRC'd, fsync'd **write-ahead journal** behind the
//! [`storage::StorageBackend`] seam. A [`server::QueryServer`] with a
//! backend [attached](server::QueryServer::attach_storage) makes every
//! publish durable *before* it becomes visible (one journal record per
//! coalesced burst; checkpoints truncate the journal), and
//! [`storage::FileBackend::recover`] replays checkpoint + journal tail
//! — surviving a crash at **any** byte of the journal — into a live
//! database that is bit-for-bit the pre-crash state (property-tested in
//! `tests/proptest_recovery.rs`).
//!
//! ## Execution modes
//!
//! * **one-shot** — [`UncertainDb::cpnn`] / [`pipeline::cpnn`];
//! * **batch** — [`batch::BatchExecutor`] evaluates an up-front batch
//!   concurrently across scoped worker threads;
//! * **serving** — [`server::QueryServer`] keeps a persistent worker pool
//!   behind a submission queue, streaming responses per request while
//!   `insert`/`remove` swap immutable, path-copied database snapshots
//!   underneath the stream (every response cites the snapshot version
//!   that answered it); bursty writers queue on the write-coalescing
//!   lane ([`server::QueryServer::queue_insert`] +
//!   [`server::QueryServer::flush_writes`]) and publish a whole burst as
//!   one swap.
//!
//! ## Caching
//!
//! Repeated (or, after quantization, nearby) query points skip filter +
//! init entirely: [`cache::VerifyCache`] — a per-thread LRU enabled via
//! [`PipelineConfig`]'s `cache` knob and hung off [`QueryScratch`] —
//! memoizes candidate sets, distance distributions, and subregion tables
//! by quantized query point. Snapshot swaps invalidate it
//! *incrementally*: only entries whose candidate horizon intersects an
//! updated region drop ([`cache::VerifyCache::advance_version`]); the
//! rest keep serving hits across versions.
//!
//! Behind the per-thread cache sits an optional **shared tier**
//! ([`cache::SharedVerifyCache`], enabled via [`PipelineConfig`]'s
//! `shared_cache` knob): a lock-striped process-wide L2 that batch
//! workers and server workers consult on local misses and publish local
//! fills into, so one worker's miss warms every worker. Entries also
//! memoize **verification outcomes** per exact (threshold, tolerance,
//! strategy, config) band ([`cache::OutcomeKey`]) — a repeat query in a
//! known band replays the memoized verdicts and bounds without touching
//! verify or refine at all. Both layers are answer-invariant: cached,
//! shared, and uncached evaluation agree bit-for-bit at quantum 0
//! (property-tested in `tests/proptest_cache.rs` and
//! `tests/proptest_shared_cache.rs`).
//!
//! ## Entry point
//!
//! ```
//! use cpnn_core::{CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject};
//!
//! let objects = vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0).unwrap(),
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap(),
//! ];
//! let db = UncertainDb::build(objects).unwrap();
//! let result = db
//!     .cpnn(&CpnnQuery::new(0.0, 0.3, 0.01), Strategy::Verified)
//!     .unwrap();
//! assert_eq!(result.answers, vec![ObjectId(1)]);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod bounds;
pub mod cache;
pub mod candidate;
pub mod classify;
pub mod distance;
pub mod distance2d;
pub mod engine;
pub mod engine2d;
pub mod error;
pub mod exact;
pub mod framework;
pub mod geometry2d;
pub mod idmap;
pub mod knn;
pub mod montecarlo;
pub mod object;
pub mod persist;
pub mod pipeline;
pub mod range;
pub mod refine;
pub mod server;
pub mod shard;
pub mod storage;
pub mod store;
pub mod subregion;
pub mod verifiers;

#[cfg(test)]
pub(crate) mod testutil;

pub use batch::{BatchExecutor, BatchOutcome, BatchSummary};
pub use bounds::ProbBound;
pub use cache::{
    CacheConfig, CacheStats, OutcomeKey, SharedCacheConfig, SharedCacheStats, SharedVerifyCache,
    VerifyCache,
};
pub use candidate::{CandidateMember, CandidateSet};
pub use classify::{Classifier, Label};
pub use cpnn_rtree::TreeStats;
pub use distance::DistanceDistribution;
pub use distance2d::{cpnn_2d, pnn_2d, CircleObject, Cpnn2dResult};
pub use engine::{
    CpnnQuery, CpnnResult, EngineConfig, ObjectReport, PnnResult, QueryStats, Strategy, UncertainDb,
};
pub use engine2d::{Engine2dConfig, Object2d, UncertainDb2d};
pub use error::{CoreError, Result};
pub use geometry2d::Rect2;
pub use object::{ObjectId, UncertainObject};
pub use persist::{PersistentModel, SnapshotError};
pub use pipeline::{DistanceModel, PipelineConfig, QueryScratch, QuerySpec};
pub use range::RangeAnswer;
pub use refine::RefinementOrder;
pub use server::{FlushReport, QueryServer, Served, ServerStats, Snapshot, Ticket, UpdateOutcome};
pub use shard::{Extent, ShardBalance, ShardPoint, ShardableModel, ShardedDb};
pub use storage::{
    CrashWriter, FileBackend, MemoryBackend, NullBackend, Recovered, StorageBackend, StorageError,
};
pub use store::{CowModel, IndexedStore, StoredObject};
pub use subregion::SubregionTable;
