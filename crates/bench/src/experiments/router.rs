//! Distributed-serving experiment — beyond the paper: what the socket
//! hop costs. The same VR workload runs twice per shard count:
//!
//! * **direct** — in-process [`cpnn`] over the domain-partitioned
//!   [`ShardedDb`] (the PR-5 baseline the router must match bit-for-bit);
//! * **routed** — through a [`QueryRouter`] fanning out to one shard
//!   *server* per shard over Unix sockets, candidates shipped back raw
//!   and verified router-side.
//!
//! The gap between the columns is the entire distribution tax: framing,
//! checksums, histogram transport, and the router-side merge. Horizon
//! pruning keeps the fan-out per query well under the shard count, so
//! the tax should grow far slower than linearly in shards; tail
//! latencies (p95/p99) surface the per-connection round-trip cost that
//! means hide.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cpnn_core::pipeline::cpnn;
use cpnn_core::{QueryServer, QuerySpec, ShardableModel, ShardedDb, Strategy, UncertainDb};
use cpnn_router::{
    QueryRouter, RouterConfig, ShardAddr, ShardListener, ShardMap, ShardServeConfig,
    ShardServerHandle,
};

use crate::experiments::{longbeach_db, workload_queries, DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Shard-process counts to sweep (the acceptance set of the routed
/// equivalence proof).
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// One shard server per shard of `db`, on Unix sockets under `dir`,
/// plus the map a router needs to reach them.
fn spawn_fleet(
    db: &ShardedDb<UncertainDb>,
    dir: &std::path::Path,
) -> (Vec<ShardServerHandle<UncertainDb>>, ShardMap) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..db.num_shards() {
        let model =
            UncertainDb::with_config(db.shard_model(i).shard_objects(), *db.shard_configuration())
                .expect("shard model rebuilds");
        let server = Arc::new(QueryServer::start(model, 1, db.pipeline_config()));
        let addr = ShardAddr::Unix(dir.join(format!("s{i}.sock")));
        let listener = ShardListener::bind(&addr).expect("bind shard socket");
        handles.push(
            ShardServerHandle::spawn(server, listener, ShardServeConfig::default())
                .expect("spawn shard server"),
        );
        addrs.push(addr);
    }
    let map = ShardMap {
        axis: db.partition_axis(),
        bounds: db.slab_bounds().to_vec(),
        addrs,
    };
    (handles, map)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Run the experiment. Rows sweep the shard-process count; columns
/// compare routed and direct execution of the identical workload
/// (queries/s and routed latency percentiles), and report the mean
/// per-query fan-out after horizon pruning.
pub fn run(quick: bool) -> Table {
    let flat = longbeach_db(quick);
    let queries = workload_queries(quick);
    let spec = QuerySpec::nn(DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
    let dir = std::env::temp_dir().join(format!("cpnn-bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench socket dir");

    let mut table = Table::new(
        "Router",
        "Distributed serving: routed (Unix sockets) vs in-process, VR strategy",
        &[
            "shard procs",
            "routed q/s",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "direct q/s",
            "routed/direct",
            "fanout/query",
        ],
    );
    for &shards in &SHARD_SWEEP {
        let sharded = ShardedDb::from_model(&flat, shards).expect("shardable workload");
        let cfg = sharded.pipeline_config();

        // Direct baseline: the in-process fan-out the router must match.
        let start = Instant::now();
        for q in &queries {
            cpnn(&sharded, q, &spec, &cfg).expect("direct query");
        }
        let direct_wall = start.elapsed();

        let (handles, map) = spawn_fleet(&sharded, &dir);
        let router_cfg = RouterConfig {
            timeout: Duration::from_secs(30),
            retries: 1,
            backoff: Duration::from_millis(10),
        };
        let mut router: QueryRouter<UncertainDb> =
            QueryRouter::connect(&map, cfg, router_cfg).expect("connect to fleet");
        // One warm-up pass so connection setup and first-touch page
        // faults stay out of the measured distribution.
        for q in queries.iter().take(queries.len().min(8)) {
            router.query(q, &spec).expect("warm-up query");
        }
        let fanned_before = router.router_stats().fanned_out;
        let mut lat = Vec::with_capacity(queries.len());
        let start = Instant::now();
        for q in &queries {
            let t = Instant::now();
            let routed = router.query(q, &spec).expect("routed query");
            lat.push(t.elapsed());
            debug_assert!(!routed.answers.is_empty() || routed.stats.candidates == 0);
        }
        let routed_wall = start.elapsed();
        let fanout =
            (router.router_stats().fanned_out - fanned_before) as f64 / queries.len() as f64;
        for h in handles {
            h.shutdown();
        }

        lat.sort();
        let routed_qps = queries.len() as f64 / routed_wall.as_secs_f64();
        let direct_qps = queries.len() as f64 / direct_wall.as_secs_f64();
        table.push_row(vec![
            shards.to_string(),
            format!("{routed_qps:.0}"),
            us(percentile(&lat, 0.50)),
            us(percentile(&lat, 0.95)),
            us(percentile(&lat, 0.99)),
            format!("{direct_qps:.0}"),
            format!(
                "{:.2}x",
                direct_wall.as_secs_f64() / routed_wall.as_secs_f64().max(1e-12)
            ),
            format!("{fanout:.2}"),
        ]);
    }
    let _ = std::fs::remove_dir_all(&dir);
    table.note(format!(
        "{} queries, p = {DEFAULT_P}, delta = {DEFAULT_DELTA}; shard servers run the filter \
         phase only, candidates verified once router-side (the equivalence-proof seam); \
         routed/direct < 1 is the socket+codec tax",
        queries.len()
    ));
    table
}
