//! The public [`RTree`] type: a **persistent** (path-copying) R-tree with
//! dynamic insertion, deletion, bulk loading, range search,
//! nearest-neighbor search and the PNN candidate filter.
//!
//! Every node sits behind an [`Arc`]; a tree handle is an immutable
//! snapshot. [`RTree::with_inserted`] / [`RTree::with_removed`] return a
//! *new* handle that clones only the root-to-leaf path the update touches
//! (classic Guttman ChooseSubtree / CondenseTree adapted to shared
//! ownership) and shares every untouched subtree with the old snapshot —
//! an update is `O(height × fan-out)` work, not a rebuild, and readers
//! holding the old handle are never torn. The in-place [`RTree::insert`] /
//! [`RTree::remove_one`] are thin wrappers that replace `self` with the
//! path-copied successor.

use std::sync::Arc;

use crate::bulk::str_bulk_load;
use crate::geometry::Rect;
use crate::node::{Child, LeafEntry, Node, Params};
use crate::split::quadratic_split;

/// An in-memory persistent R-tree over items of type `T` in `D` dimensions.
///
/// This is the substrate for the paper's filtering phase — the original used
/// Hadjieleftheriou's spatial index library \[18\]; this one is built from
/// scratch with Guttman quadratic splits, STR bulk loading, and
/// path-copying updates. Cloning a tree is two refcount bumps — the clone
/// and the original share every node until one of them is updated.
#[derive(Debug)]
pub struct RTree<T, const D: usize> {
    root: Arc<Node<T, D>>,
    len: usize,
    params: Params,
}

/// Structural quality counters returned by [`RTree::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total nodes, internal and leaf (equals [`RTree::node_count`]).
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Entries stored across all leaves (equals [`RTree::len`]).
    pub leaf_entries: usize,
}

impl TreeStats {
    /// Average leaf fill factor in `[0, 1]` against a fan-out cap of
    /// `max_entries` per leaf. 0.0 for an empty tree.
    pub fn leaf_fill(&self, max_entries: usize) -> f64 {
        let capacity = self.leaves * max_entries;
        if capacity == 0 {
            return 0.0;
        }
        self.leaf_entries as f64 / capacity as f64
    }
}

/// Cheap: clones the root `Arc`, not the tree.
impl<T, const D: usize> Clone for RTree<T, D> {
    fn clone(&self) -> Self {
        Self {
            root: Arc::clone(&self.root),
            len: self.len,
            params: self.params,
        }
    }
}

impl<T, const D: usize> Default for RTree<T, D> {
    fn default() -> Self {
        Self::new(Params::default())
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// An empty tree with the given fan-out parameters.
    pub fn new(params: Params) -> Self {
        Self {
            root: Arc::new(Node::empty()),
            len: 0,
            params,
        }
    }

    /// Bulk-load a packed tree (STR) from `(rect, item)` pairs.
    pub fn bulk_load(items: Vec<(Rect<D>, T)>) -> Self {
        Self::bulk_load_with(items, Params::default())
    }

    /// Bulk-load with explicit parameters.
    pub fn bulk_load_with(items: Vec<(Rect<D>, T)>, params: Params) -> Self {
        let len = items.len();
        let records = items
            .into_iter()
            .map(|(rect, item)| LeafEntry { rect, item })
            .collect();
        Self {
            root: Arc::new(str_bulk_load(records, &params)),
            len,
            params,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Total node count (for fill-factor diagnostics).
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Structural quality counters (one depth-first walk): total nodes,
    /// leaf nodes, and entries stored across leaves. Average leaf fill
    /// factor is [`TreeStats::leaf_fill`] against
    /// [`Params::max_entries`] — a health signal for sustained update
    /// workloads, where repeated splits and underfull merges degrade it.
    pub fn stats(&self) -> TreeStats {
        fn walk<T, const D: usize>(node: &Node<T, D>, s: &mut TreeStats) {
            s.nodes += 1;
            match node {
                Node::Leaf(entries) => {
                    s.leaves += 1;
                    s.leaf_entries += entries.len();
                }
                Node::Internal(children) => {
                    for c in children {
                        walk(&c.node, s);
                    }
                }
            }
        }
        let mut s = TreeStats::default();
        walk(&self.root, &mut s);
        s
    }

    /// The tree's fan-out parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Root MBR, or `None` when empty.
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.root.mbr()
    }

    /// Access the root node (crate-internal: used by search modules).
    pub(crate) fn root(&self) -> &Node<T, D> {
        &self.root
    }

    /// Do two handles share their root (i.e. are they the same snapshot)?
    pub fn same_snapshot(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.root, &other.root)
    }

    /// Collect references to all items whose rects intersect `query`.
    pub fn search_intersecting(&self, query: &Rect<D>) -> Vec<(&Rect<D>, &T)> {
        let mut out = Vec::new();
        search_rec(&self.root, query, &mut out);
        out
    }

    /// Visit every `(rect, item)` pair in the tree (deterministic
    /// depth-first order).
    pub fn for_each<F: FnMut(&Rect<D>, &T)>(&self, mut f: F) {
        fn walk<T, const D: usize, F: FnMut(&Rect<D>, &T)>(node: &Node<T, D>, f: &mut F) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        f(&e.rect, &e.item);
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        walk(&c.node, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Check structural invariants (tests/debugging): child MBRs contain
    /// their subtrees, all leaves at the same depth, fill bounds respected
    /// for non-root nodes.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn check<T, const D: usize>(
            node: &Node<T, D>,
            is_root: bool,
            params: &Params,
        ) -> Result<usize, String> {
            match node {
                Node::Leaf(entries) => {
                    if !is_root && entries.len() < params.min_entries {
                        return Err(format!("leaf underfull: {}", entries.len()));
                    }
                    if entries.len() > params.max_entries {
                        return Err(format!("leaf overfull: {}", entries.len()));
                    }
                    Ok(1)
                }
                Node::Internal(children) => {
                    // No minimum-fill check for internal nodes: STR bulk
                    // loading under-fills interiors by construction, and
                    // deletion tolerates sparse internals instead of
                    // dissolving whole subtrees (see `remove_rec`).
                    if children.is_empty() {
                        return Err("empty internal node".into());
                    }
                    if children.len() > params.max_entries {
                        return Err(format!("internal overfull: {}", children.len()));
                    }
                    let mut depth = None;
                    for c in children {
                        let actual = c.node.mbr().ok_or("empty child subtree")?;
                        if !c.rect.contains_rect(&actual) {
                            return Err("cached child rect does not contain subtree".into());
                        }
                        let d = check(&c.node, false, params)?;
                        if *depth.get_or_insert(d) != d {
                            return Err("leaves at different depths".into());
                        }
                    }
                    Ok(depth.unwrap_or(0) + 1)
                }
            }
        }
        check(&self.root, true, &self.params)?;
        let records = self.root.record_count();
        if records != self.len {
            return Err(format!(
                "record count {records} disagrees with tracked len {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<T: Clone, const D: usize> RTree<T, D> {
    /// Path-copying insert: a new tree handle containing `item`, sharing
    /// every subtree off the insertion path with `self` (which is
    /// unchanged). `O(height × fan-out)` node copies.
    pub fn with_inserted(&self, rect: Rect<D>, item: T) -> Self {
        let entry = LeafEntry { rect, item };
        let (new_root, sibling) = insert_rec(&self.root, entry, &self.params);
        let root = match sibling {
            None => Arc::new(new_root),
            Some(sibling) => Arc::new(grow_root(new_root, sibling)),
        };
        Self {
            root,
            len: self.len + 1,
            params: self.params,
        }
    }

    /// Path-copying remove: a new tree handle without the first item whose
    /// stored rect equals `rect` and for which `pred` returns true, plus
    /// the removed item (cloned — the old snapshot still owns its copy).
    /// If nothing matches, the returned handle shares the entire tree with
    /// `self`.
    ///
    /// Underfull nodes along the path are dissolved and their records
    /// reinserted (Guttman's condense-tree, adapted to shared ownership:
    /// dissolved subtrees are *copied out*, never drained, because older
    /// snapshots may still reference them).
    pub fn with_removed<F: FnMut(&T) -> bool>(
        &self,
        rect: &Rect<D>,
        mut pred: F,
    ) -> (Self, Option<T>) {
        let mut orphans: Vec<LeafEntry<T, D>> = Vec::new();
        let Some((replacement, removed)) =
            remove_rec(&self.root, rect, &mut pred, &self.params, &mut orphans)
        else {
            return (self.clone(), None);
        };
        let mut root = match replacement {
            Some(node) => Arc::new(node),
            None => Arc::new(Node::empty()),
        };
        // Collapse a root chain with single children.
        loop {
            let collapsed = match &*root {
                Node::Internal(children) if children.len() == 1 => Arc::clone(&children[0].node),
                _ => break,
            };
            root = collapsed;
        }
        let mut next = Self {
            root,
            len: self.len - 1,
            params: self.params,
        };
        for orphan in orphans {
            // Reinsert orphans through the normal path (len unchanged:
            // they were never counted as removed).
            let (new_root, sibling) = insert_rec(&next.root, orphan, &next.params);
            next.root = match sibling {
                None => Arc::new(new_root),
                Some(sibling) => Arc::new(grow_root(new_root, sibling)),
            };
        }
        (next, Some(removed))
    }

    /// Insert an item with its bounding rectangle (in place: replaces this
    /// handle with the path-copied successor — other clones of the old
    /// handle are unaffected).
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        *self = self.with_inserted(rect, item);
    }

    /// Remove one item whose stored rect equals `rect` and for which `pred`
    /// returns true. Returns the removed item, if found. In-place twin of
    /// [`with_removed`](Self::with_removed).
    pub fn remove_one<F: FnMut(&T) -> bool>(&mut self, rect: &Rect<D>, pred: F) -> Option<T> {
        let (next, removed) = self.with_removed(rect, pred);
        if removed.is_some() {
            *self = next;
        }
        removed
    }
}

/// A split root: grow the tree by one level over the two halves.
fn grow_root<T, const D: usize>(left: Node<T, D>, right: Node<T, D>) -> Node<T, D> {
    let left = Child {
        rect: left.mbr().expect("split half is non-empty"),
        node: Arc::new(left),
    };
    let right = Child {
        rect: right.mbr().expect("split half is non-empty"),
        node: Arc::new(right),
    };
    Node::Internal(vec![left, right])
}

/// Recursive path-copying insert: returns the copied node and, if it
/// overflowed, a split-off sibling. `node` itself is never mutated.
fn insert_rec<T: Clone, const D: usize>(
    node: &Node<T, D>,
    entry: LeafEntry<T, D>,
    params: &Params,
) -> (Node<T, D>, Option<Node<T, D>>) {
    match node {
        Node::Leaf(entries) => {
            let mut entries = entries.clone();
            entries.push(entry);
            if entries.len() > params.max_entries {
                let (a, b) = quadratic_split(entries, params.min_entries);
                (Node::Leaf(a), Some(Node::Leaf(b)))
            } else {
                (Node::Leaf(entries), None)
            }
        }
        Node::Internal(children) => {
            let idx = choose_subtree(children, &entry.rect);
            let (new_child, sibling) = insert_rec(&children[idx].node, entry, params);
            // Path copy: clone the child list (Arc bumps), then replace the
            // slot on the insertion path with its updated copy.
            let mut children = children.clone();
            children[idx] = Child {
                rect: new_child.mbr().expect("inserted child is non-empty"),
                node: Arc::new(new_child),
            };
            if let Some(sibling) = sibling {
                let rect = sibling.mbr().expect("split sibling is non-empty");
                children.push(Child {
                    rect,
                    node: Arc::new(sibling),
                });
                if children.len() > params.max_entries {
                    let (a, b) = quadratic_split(children, params.min_entries);
                    return (Node::Internal(a), Some(Node::Internal(b)));
                }
            }
            (Node::Internal(children), None)
        }
    }
}

/// Guttman ChooseLeaf criterion: least enlargement, ties by smallest area.
fn choose_subtree<T, const D: usize>(children: &[Child<T, D>], rect: &Rect<D>) -> usize {
    let mut best = 0;
    let mut best_growth = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let growth = c.rect.enlargement(rect);
        let area = c.rect.area();
        if growth < best_growth || (growth == best_growth && area < best_area) {
            best = i;
            best_growth = growth;
            best_area = area;
        }
    }
    best
}

fn search_rec<'a, T, const D: usize>(
    node: &'a Node<T, D>,
    query: &Rect<D>,
    out: &mut Vec<(&'a Rect<D>, &'a T)>,
) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.rect.intersects(query) {
                    out.push((&e.rect, &e.item));
                }
            }
        }
        Node::Internal(children) => {
            for c in children {
                if c.rect.intersects(query) {
                    search_rec(&c.node, query, out);
                }
            }
        }
    }
}

/// Recursive path-copying delete with condense. Returns `None` when
/// nothing matched; otherwise the copied replacement node (`None` if this
/// node dissolved entirely) plus the removed item. Underfull children are
/// dissolved into `orphans` (their records *copied*, since the subtree may
/// be shared with older snapshots).
fn remove_rec<T: Clone, const D: usize, F: FnMut(&T) -> bool>(
    node: &Node<T, D>,
    rect: &Rect<D>,
    pred: &mut F,
    params: &Params,
    orphans: &mut Vec<LeafEntry<T, D>>,
) -> Option<(Option<Node<T, D>>, T)> {
    match node {
        Node::Leaf(entries) => {
            let pos = entries
                .iter()
                .position(|e| e.rect == *rect && pred(&e.item))?;
            let removed = entries[pos].item.clone();
            let remaining: Vec<LeafEntry<T, D>> = entries
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            Some((Some(Node::Leaf(remaining)), removed))
        }
        Node::Internal(children) => {
            for (i, child) in children.iter().enumerate() {
                // The target entry's rect is stored verbatim, so every
                // ancestor MBR *contains* it — containment (not mere
                // intersection) prunes here, which keeps deletion cost at
                // O(log n) even on densely overlapping data.
                if !child.rect.contains_rect(rect) {
                    continue;
                }
                if let Some((replacement, item)) =
                    remove_rec(&child.node, rect, pred, params, orphans)
                {
                    let mut children = children.clone();
                    match replacement {
                        // Dissolve an underfull *leaf* and reinsert its
                        // few records (copied — the shared original keeps
                        // its own). Underfull *internal* nodes are kept:
                        // dissolving one would reinsert a whole subtree —
                        // O(n) churn per delete on bad luck — so sparse
                        // internals are tolerated instead, exactly like
                        // STR bulk loading under-fills interior nodes.
                        Some(new_child @ Node::Leaf(_))
                            if new_child.slot_count() < params.min_entries =>
                        {
                            new_child.collect_records(orphans);
                            children.swap_remove(i);
                        }
                        Some(new_child) => {
                            children[i] = Child {
                                rect: new_child.mbr().expect("filled child has an MBR"),
                                node: Arc::new(new_child),
                            };
                        }
                        None => {
                            children.swap_remove(i);
                        }
                    }
                    if children.is_empty() {
                        return Some((None, item));
                    }
                    return Some((Some(Node::Internal(children)), item));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_tree(ranges: &[(f64, f64)]) -> RTree<usize, 1> {
        let mut t = RTree::default();
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            t.insert(Rect::interval(lo, hi), i);
        }
        t
    }

    /// Collect the raw node pointers of every node in the tree.
    fn node_ptrs(t: &RTree<usize, 1>) -> Vec<*const Node<usize, 1>> {
        fn walk(node: &Arc<Node<usize, 1>>, out: &mut Vec<*const Node<usize, 1>>) {
            out.push(Arc::as_ptr(node));
            if let Node::Internal(children) = &**node {
                for c in children {
                    walk(&c.node, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&t.root, &mut out);
        out
    }

    #[test]
    fn stats_count_nodes_leaves_and_entries() {
        let t = interval_tree(
            &(0..100)
                .map(|i| (i as f64, i as f64 + 0.5))
                .collect::<Vec<_>>(),
        );
        let s = t.stats();
        assert_eq!(s.nodes, t.node_count());
        assert_eq!(s.leaf_entries, t.len());
        assert!(s.leaves >= 1 && s.leaves <= s.nodes);
        let fill = s.leaf_fill(t.params().max_entries);
        assert!(fill > 0.0 && fill <= 1.0, "fill = {fill}");
        // Empty tree: zero entries, fill reported as 0.
        let empty: RTree<usize, 1> = RTree::default();
        assert_eq!(empty.stats().leaf_entries, 0);
        assert_eq!(empty.stats().leaf_fill(empty.params().max_entries), 0.0);
    }

    #[test]
    fn insert_and_search_small() {
        let t = interval_tree(&[(0.0, 1.0), (2.0, 3.0), (2.5, 4.0), (10.0, 12.0)]);
        assert_eq!(t.len(), 4);
        let hits: Vec<usize> = t
            .search_intersecting(&Rect::interval(2.6, 3.5))
            .into_iter()
            .map(|(_, &i)| i)
            .collect();
        let mut hits = hits;
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn grows_through_splits_and_stays_consistent() {
        let ranges: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let x = (i * 37 % 1000) as f64;
                (x, x + 5.0)
            })
            .collect();
        let t = interval_tree(&ranges);
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);
        t.check_invariants().unwrap();
        // Every inserted item must be findable via its own rect.
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let hits = t.search_intersecting(&Rect::interval(lo, hi));
            assert!(hits.iter().any(|(_, &id)| id == i), "item {i} not found");
        }
    }

    #[test]
    fn bulk_load_matches_incremental_search_results() {
        let ranges: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let x = ((i * 61) % 777) as f64;
                (x, x + 3.0)
            })
            .collect();
        let incremental = interval_tree(&ranges);
        let packed = RTree::bulk_load(
            ranges
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| (Rect::interval(lo, hi), i))
                .collect(),
        );
        packed.check_invariants().err(); // packed trees may under-fill interior nodes; only check consistency below
        for q in [(0.0, 10.0), (100.0, 120.0), (770.0, 800.0), (-5.0, -1.0)] {
            let rect = Rect::interval(q.0, q.1);
            let mut a: Vec<usize> = incremental
                .search_intersecting(&rect)
                .into_iter()
                .map(|(_, &i)| i)
                .collect();
            let mut b: Vec<usize> = packed
                .search_intersecting(&rect)
                .into_iter()
                .map(|(_, &i)| i)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn remove_deletes_exactly_one_and_keeps_invariants() {
        let ranges: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, i as f64 + 1.5)).collect();
        let mut t = interval_tree(&ranges);
        for i in (0..200).step_by(3) {
            let rect = Rect::interval(i as f64, i as f64 + 1.5);
            let removed = t.remove_one(&rect, |&id| id == i);
            assert_eq!(removed, Some(i));
        }
        assert_eq!(t.len(), 200 - 67);
        t.check_invariants().unwrap();
        // Removed items are gone; survivors remain.
        for i in 0..200 {
            let rect = Rect::interval(i as f64, i as f64 + 1.5);
            let found = t.search_intersecting(&rect).iter().any(|(_, &id)| id == i);
            assert_eq!(found, i % 3 != 0, "item {i}");
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = interval_tree(&[(0.0, 1.0)]);
        assert_eq!(t.remove_one(&Rect::interval(5.0, 6.0), |_| true), None);
        assert_eq!(t.remove_one(&Rect::interval(0.0, 1.0), |_| false), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree<usize, 1> = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.mbr(), None);
        assert!(t.search_intersecting(&Rect::interval(0.0, 1.0)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn for_each_visits_everything() {
        let t = interval_tree(&[(0.0, 1.0), (5.0, 6.0), (9.0, 11.0)]);
        let mut seen = Vec::new();
        t.for_each(|_, &i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn with_inserted_leaves_the_original_untouched() {
        let ranges: Vec<(f64, f64)> = (0..64)
            .map(|i| (i as f64 * 4.0, i as f64 * 4.0 + 3.0))
            .collect();
        let old = interval_tree(&ranges);
        let new = old.with_inserted(Rect::interval(13.0, 14.0), 999);
        assert_eq!(old.len(), 64);
        assert_eq!(new.len(), 65);
        old.check_invariants().unwrap();
        new.check_invariants().unwrap();
        let probe = Rect::interval(13.2, 13.8);
        assert!(!old
            .search_intersecting(&probe)
            .iter()
            .any(|(_, &i)| i == 999));
        assert!(new
            .search_intersecting(&probe)
            .iter()
            .any(|(_, &i)| i == 999));
    }

    #[test]
    fn path_copy_shares_all_off_path_subtrees() {
        // 4096 records at fan-out 16 → height ≥ 3: an update must copy at
        // most one path of nodes, sharing everything else.
        let ranges: Vec<(f64, f64)> = (0..4096)
            .map(|i| {
                let x = ((i * 37) % 16384) as f64;
                (x, x + 2.0)
            })
            .collect();
        let old = interval_tree(&ranges);
        assert!(old.height() >= 3, "height {}", old.height());
        let new = old.with_inserted(Rect::interval(100.0, 101.0), 9999);
        let old_nodes: std::collections::HashSet<_> = node_ptrs(&old).into_iter().collect();
        let new_nodes = node_ptrs(&new);
        let fresh = new_nodes.iter().filter(|p| !old_nodes.contains(*p)).count();
        // Only the root-to-leaf insertion path (± one split) is new.
        assert!(
            fresh <= new.height() + 2,
            "{fresh} fresh nodes for a height-{} tree",
            new.height()
        );
        assert!(fresh >= new.height().min(2), "no path was copied at all?");

        // And a remove shares the same way (condense may add a few more
        // copied nodes through orphan reinsertion).
        let (after, removed) = new.with_removed(&Rect::interval(100.0, 101.0), |&i| i == 9999);
        assert_eq!(removed, Some(9999));
        let new_set: std::collections::HashSet<_> = node_ptrs(&new).into_iter().collect();
        let fresh_after = node_ptrs(&after)
            .iter()
            .filter(|p| !new_set.contains(*p))
            .count();
        assert!(
            fresh_after <= 3 * after.height(),
            "{fresh_after} fresh nodes after remove (height {})",
            after.height()
        );
    }

    #[test]
    fn old_snapshots_answer_after_later_updates() {
        let ranges: Vec<(f64, f64)> = (0..128)
            .map(|i| (i as f64 * 3.0, i as f64 * 3.0 + 2.0))
            .collect();
        let v0 = interval_tree(&ranges);
        let mut snapshots = vec![v0.clone()];
        let mut cur = v0;
        for i in 0..40 {
            cur = if i % 3 == 2 {
                let victim = i * 2;
                let rect = Rect::interval(victim as f64 * 3.0, victim as f64 * 3.0 + 2.0);
                let (next, removed) = cur.with_removed(&rect, |&id| id == victim);
                assert_eq!(removed, Some(victim));
                next
            } else {
                cur.with_inserted(
                    Rect::interval(1000.0 + i as f64, 1001.0 + i as f64),
                    500 + i,
                )
            };
            snapshots.push(cur.clone());
        }
        // The original snapshot still answers exactly as a fresh build.
        let fresh = interval_tree(&ranges);
        for q in [(0.0, 10.0), (100.0, 130.0), (1000.0, 1050.0)] {
            let rect = Rect::interval(q.0, q.1);
            let norm = |t: &RTree<usize, 1>| {
                let mut v: Vec<usize> = t
                    .search_intersecting(&rect)
                    .into_iter()
                    .map(|(_, &i)| i)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(norm(&snapshots[0]), norm(&fresh), "q = {q:?}");
        }
        for s in &snapshots {
            s.check_invariants().unwrap();
        }
    }

    #[test]
    fn clone_is_the_same_snapshot_until_updated() {
        let t = interval_tree(&[(0.0, 1.0), (2.0, 3.0)]);
        let c = t.clone();
        assert!(t.same_snapshot(&c));
        let u = c.with_inserted(Rect::interval(5.0, 6.0), 7);
        assert!(!t.same_snapshot(&u));
        assert_eq!(t.len(), 2);
        assert_eq!(u.len(), 3);
    }
}
