//! Numerical integration routines.
//!
//! These back the two expensive operations of the paper:
//!
//! * the **Basic** method's full qualification-probability integral
//!   `pi = ∫ di(r) · Π_{k≠i}(1 − Dk(r)) dr` (paper Sec. I, \[5\]), and
//! * **incremental refinement**'s per-subregion integrals (Sec. IV-D).
//!
//! The integrands are piecewise-smooth (products of piecewise-constant
//! densities and piecewise-linear cdfs), so fixed-order Gauss–Legendre per
//! smooth segment is exact up to polynomial degree `2n−1`; adaptive Simpson
//! is provided for arbitrary integrands (e.g. raw Gaussian tails).

/// Composite Simpson's rule with `n` subintervals (`n` is rounded up to even).
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    if a == b {
        return 0.0;
    }
    let n = if n < 2 { 2 } else { n + (n % 2) };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 0 { 2.0 * f(x) } else { 4.0 * f(x) };
    }
    sum * h / 3.0
}

/// Adaptive Simpson quadrature with absolute tolerance `tol`.
///
/// Recursion depth is capped at 50, which bounds work on pathological
/// integrands while keeping ~1e-12 accuracy on smooth ones.
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_simpson_inner(&mut f, a, b, fa, fm, fb, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_simpson_inner<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_simpson_inner(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + adaptive_simpson_inner(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

/// Gauss–Legendre node/weight pairs on `[-1, 1]` (positive half; mirror for
/// the negative nodes). Values are the standard tabulated constants.
mod gl {
    pub const N2: (&[f64], &[f64]) = (&[0.577_350_269_189_625_7], &[1.0]);
    pub const N4: (&[f64], &[f64]) = (
        &[0.339_981_043_584_856_3, 0.861_136_311_594_052_6],
        &[0.652_145_154_862_546_1, 0.347_854_845_137_453_9],
    );
    pub const N8: (&[f64], &[f64]) = (
        &[
            0.183_434_642_495_649_8,
            0.525_532_409_916_329,
            0.796_666_477_413_626_7,
            0.960_289_856_497_536_3,
        ],
        &[
            0.362_683_783_378_362,
            0.313_706_645_877_887_3,
            0.222_381_034_453_374_5,
            0.101_228_536_290_376_3,
        ],
    );
    pub const N16: (&[f64], &[f64]) = (
        &[
            0.095_012_509_837_637_44,
            0.281_603_550_779_258_9,
            0.458_016_777_657_227_4,
            0.617_876_244_402_643_8,
            0.755_404_408_355_003,
            0.865_631_202_387_831_8,
            0.944_575_023_073_232_6,
            0.989_400_934_991_649_9,
        ],
        &[
            0.189_450_610_455_068_5,
            0.182_603_415_044_923_6,
            0.169_156_519_395_002_5,
            0.149_595_988_816_576_7,
            0.124_628_971_255_533_9,
            0.095_158_511_682_492_8,
            0.062_253_523_938_647_9,
            0.027_152_459_411_754_1,
        ],
    );
}

/// Supported fixed Gauss–Legendre orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlOrder {
    /// 2-point rule (exact for cubics).
    Two,
    /// 4-point rule (exact for degree ≤ 7).
    Four,
    /// 8-point rule (exact for degree ≤ 15).
    Eight,
    /// 16-point rule (exact for degree ≤ 31).
    Sixteen,
}

impl GlOrder {
    fn tables(self) -> (&'static [f64], &'static [f64]) {
        match self {
            GlOrder::Two => gl::N2,
            GlOrder::Four => gl::N4,
            GlOrder::Eight => gl::N8,
            GlOrder::Sixteen => gl::N16,
        }
    }

    /// Number of function evaluations this order performs.
    pub fn points(self) -> usize {
        match self {
            GlOrder::Two => 2,
            GlOrder::Four => 4,
            GlOrder::Eight => 8,
            GlOrder::Sixteen => 16,
        }
    }
}

/// Fixed-order Gauss–Legendre quadrature of `f` over `[a, b]`.
pub fn gauss_legendre<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, order: GlOrder) -> f64 {
    if a == b {
        return 0.0;
    }
    let (xs, ws) = order.tables();
    let c = 0.5 * (b - a);
    let d = 0.5 * (a + b);
    let mut sum = 0.0;
    for (&x, &w) in xs.iter().zip(ws) {
        sum += w * (f(d + c * x) + f(d - c * x));
    }
    sum * c
}

/// Trapezoid rule with `n` subintervals — used only as a cheap cross-check in
/// tests and for monotone cdf accumulation.
pub fn trapezoid<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    if a == b {
        return 0.0;
    }
    let n = n.max(1);
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_integrates_cubic_exactly() {
        // Simpson is exact for cubics.
        let got = simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 2);
        let want = 4.0 - 4.0 + 2.0; // x^4/4 - x^2 + x on [0,2]
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrand() {
        // ∫_{-5}^{5} e^{-x²} dx = √π · erf(5) ≈ √π
        let got = adaptive_simpson(|x| (-x * x).exp(), -5.0, 5.0, 1e-12);
        let want = std::f64::consts::PI.sqrt() * crate::special::erf(5.0);
        assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
    }

    #[test]
    fn gauss_legendre_exact_for_matching_degree() {
        // Order-n GL is exact for polynomials of degree 2n-1.
        let poly = |x: f64| 5.0 * x.powi(7) - 3.0 * x.powi(4) + x - 2.0;
        let exact = {
            // antiderivative: 5x^8/8 - 3x^5/5 + x²/2 - 2x on [-1, 3]
            let f = |x: f64| 5.0 * x.powi(8) / 8.0 - 3.0 * x.powi(5) / 5.0 + x * x / 2.0 - 2.0 * x;
            f(3.0) - f(-1.0)
        };
        for order in [GlOrder::Four, GlOrder::Eight, GlOrder::Sixteen] {
            let got = gauss_legendre(poly, -1.0, 3.0, order);
            assert!(
                (got - exact).abs() < 1e-9 * exact.abs(),
                "{order:?}: got {got}, want {exact}"
            );
        }
    }

    #[test]
    fn gauss_legendre_two_point_exact_for_cubic() {
        let got = gauss_legendre(|x| x * x * x, 0.0, 1.0, GlOrder::Two);
        assert!((got - 0.25).abs() < 1e-14);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(simpson(|x| x, 1.0, 1.0, 10), 0.0);
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-9), 0.0);
        assert_eq!(gauss_legendre(|x| x, 3.0, 3.0, GlOrder::Four), 0.0);
        assert_eq!(trapezoid(|x| x, 4.0, 4.0, 10), 0.0);
    }

    #[test]
    fn reversed_interval_negates() {
        let fwd = simpson(|x| x * x, 0.0, 1.0, 64);
        let bwd = simpson(|x| x * x, 1.0, 0.0, 64);
        assert!((fwd + bwd).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_converges() {
        let got = trapezoid(|x| x.sin(), 0.0, std::f64::consts::PI, 10_000);
        assert!((got - 2.0).abs() < 1e-6);
    }
}
