//! Tree node representation and fan-out parameters.
//!
//! Nodes are **persistent**: every child pointer is an [`Arc`], so a tree
//! handle is an immutable snapshot and "mutation" is path-copying — an
//! update clones only the nodes on the root-to-leaf path it touches and
//! shares every other subtree with the previous snapshot (see
//! [`crate::RTree::with_inserted`]). Cloning a [`Node`] is therefore the
//! path-copy primitive: an internal node clone is `O(fan-out)` `Arc`
//! bumps, a leaf clone copies its records.

use std::sync::Arc;

use crate::geometry::Rect;

/// Fan-out configuration for the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Maximum entries per node before a split.
    pub max_entries: usize,
    /// Minimum entries per node (underflow threshold for deletion and the
    /// quadratic split's forced assignment).
    pub min_entries: usize,
}

impl Params {
    /// Validated constructor. `min_entries` must be at least 1 and at most
    /// half of `max_entries`; `max_entries` must be at least 4.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be >= 4");
        assert!(
            (1..=max_entries / 2).contains(&min_entries),
            "min_entries must be in 1..=max_entries/2"
        );
        Self {
            max_entries,
            min_entries,
        }
    }
}

impl Default for Params {
    /// Guttman's classic 40% fill with a fan-out of 16 — a good default for
    /// the in-memory filtering workloads of the paper.
    fn default() -> Self {
        Self::new(16, 6)
    }
}

/// A leaf-level record: a bounding rect and the stored item.
#[derive(Debug, Clone)]
pub struct LeafEntry<T, const D: usize> {
    /// Bounding rectangle (for uncertain objects: the uncertainty region).
    pub rect: Rect<D>,
    /// The stored payload.
    pub item: T,
}

/// An internal-node slot: the child subtree plus its cached MBR.
///
/// Cloning a `Child` never clones the subtree — it bumps the [`Arc`]
/// refcount, which is what makes path-copying cheap.
#[derive(Debug)]
pub struct Child<T, const D: usize> {
    /// Cached minimum bounding rectangle of `node`.
    pub rect: Rect<D>,
    /// The (shared, immutable) child subtree.
    pub node: Arc<Node<T, D>>,
}

impl<T, const D: usize> Clone for Child<T, D> {
    fn clone(&self) -> Self {
        Self {
            rect: self.rect,
            node: Arc::clone(&self.node),
        }
    }
}

/// A tree node: either a leaf of records or an internal node of children.
#[derive(Debug)]
pub enum Node<T, const D: usize> {
    /// Leaf node holding data records.
    Leaf(Vec<LeafEntry<T, D>>),
    /// Internal node holding child subtrees.
    Internal(Vec<Child<T, D>>),
}

/// The path-copy primitive: cloning an internal node shares all its
/// subtrees (`Arc` bumps); cloning a leaf copies its records.
impl<T: Clone, const D: usize> Clone for Node<T, D> {
    fn clone(&self) -> Self {
        match self {
            Node::Leaf(entries) => Node::Leaf(entries.clone()),
            Node::Internal(children) => Node::Internal(children.clone()),
        }
    }
}

/// Anything with a bounding rectangle — lets the split and bulk-load
/// algorithms work uniformly on leaf records and internal children.
pub trait Bounded<const D: usize> {
    /// The bounding rectangle.
    fn bounds(&self) -> Rect<D>;
}

impl<T, const D: usize> Bounded<D> for LeafEntry<T, D> {
    fn bounds(&self) -> Rect<D> {
        self.rect
    }
}

impl<T, const D: usize> Bounded<D> for Child<T, D> {
    fn bounds(&self) -> Rect<D> {
        self.rect
    }
}

impl<T, const D: usize> Node<T, D> {
    /// An empty leaf (the initial root).
    pub fn empty() -> Self {
        Node::Leaf(Vec::new())
    }

    /// Number of slots directly in this node.
    pub fn slot_count(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.len(),
        }
    }

    /// Minimum bounding rectangle over this node's slots, or `None` if empty.
    pub fn mbr(&self) -> Option<Rect<D>> {
        match self {
            Node::Leaf(v) => v.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
            Node::Internal(v) => v.iter().map(|c| c.rect).reduce(|a, b| a.union(&b)),
        }
    }

    /// Height of the subtree (a leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(v) => 1 + v.first().map_or(0, |c| c.node.height()),
        }
    }

    /// Total number of leaf records in the subtree.
    pub fn record_count(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.iter().map(|c| c.node.record_count()).sum(),
        }
    }

    /// Total number of nodes in the subtree (including this one).
    pub fn node_count(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(v) => 1 + v.iter().map(|c| c.node.node_count()).sum::<usize>(),
        }
    }
}

impl<T: Clone, const D: usize> Node<T, D> {
    /// Copy every leaf record in the subtree into `out` (used by deletion's
    /// condense step to reinsert orphans — the subtree itself may still be
    /// shared with older snapshots, so records are cloned, never drained).
    pub fn collect_records(&self, out: &mut Vec<LeafEntry<T, D>>) {
        match self {
            Node::Leaf(v) => out.extend(v.iter().cloned()),
            Node::Internal(v) => {
                for c in v {
                    c.node.collect_records(out);
                }
            }
        }
    }
}
