//! 2-D synthetic workloads: mixed disk / rectangle uncertain objects
//! scattered over a square domain, plus 2-D query points.
//!
//! The paper's evaluation is 1-D (Sec. V); this module feeds its "extension
//! to 2D space" (Sec. IV-A) — the 2-D engine and its k-NN workload — through
//! the `cpnn knn2d` CLI command and the `knn2d` bench experiment.

use cpnn_core::{Object2d, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for synthetic 2-D object sets.
#[derive(Debug, Clone, Copy)]
pub struct Synthetic2dConfig {
    /// Number of objects.
    pub count: usize,
    /// Square domain extent (objects fit inside `[0, domain]²`).
    pub domain: f64,
    /// Minimum disk radius / rectangle half-side.
    pub min_radius: f64,
    /// Maximum disk radius / rectangle half-side.
    pub max_radius: f64,
}

impl Default for Synthetic2dConfig {
    fn default() -> Self {
        Self {
            count: 5_000,
            domain: 1_000.0,
            min_radius: 1.0,
            max_radius: 6.0,
        }
    }
}

/// `cfg.count` uncertain 2-D objects, alternating uniform disks and
/// uniform axis-aligned rectangles (both region shapes the 2-D engine
/// supports), deterministic in `seed`.
///
/// # Panics
/// The configuration must satisfy
/// `0 < min_radius < max_radius < domain / 2` so the sampled centers and
/// radii fit the domain; anything else is a caller bug and panics with a
/// descriptive message (the CLI validates `--domain` before calling).
pub fn objects_2d(seed: u64, cfg: Synthetic2dConfig) -> Vec<Object2d> {
    assert!(
        cfg.domain.is_finite()
            && cfg.min_radius > 0.0
            && cfg.min_radius < cfg.max_radius
            && cfg.domain > 2.0 * cfg.max_radius,
        "Synthetic2dConfig requires 0 < min_radius < max_radius < domain / 2 \
         (got min_radius {}, max_radius {}, domain {})",
        cfg.min_radius,
        cfg.max_radius,
        cfg.domain
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cfg.count)
        .map(|i| {
            let r = rng.gen_range(cfg.min_radius..cfg.max_radius);
            let cx = rng.gen_range(cfg.max_radius..(cfg.domain - cfg.max_radius));
            let cy = rng.gen_range(cfg.max_radius..(cfg.domain - cfg.max_radius));
            let id = ObjectId(i as u64);
            if i % 2 == 0 {
                Object2d::circle(id, [cx, cy], r).expect("generated disk is valid")
            } else {
                // An aspect-skewed rectangle of comparable footprint.
                let w = r * rng.gen_range(0.5..1.5);
                let h = r * rng.gen_range(0.5..1.5);
                Object2d::rectangle(id, [cx - w, cy - h], [cx + w, cy + h])
                    .expect("generated rectangle is valid")
            }
        })
        .collect()
}

/// `count` query points uniform over `[0, domain)²`, deterministic in
/// `seed`.
pub fn query_points_2d(seed: u64, count: usize, domain: f64) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| [rng.gen_range(0.0..domain), rng.gen_range(0.0..domain)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_are_deterministic_and_in_domain() {
        let cfg = Synthetic2dConfig {
            count: 200,
            ..Default::default()
        };
        let a = objects_2d(7, cfg);
        let b = objects_2d(7, cfg);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        for o in &a {
            let bb = o.bounding_box();
            assert!(bb.min()[0] >= 0.0 && bb.max()[0] <= cfg.domain);
            assert!(bb.min()[1] >= 0.0 && bb.max()[1] <= cfg.domain);
        }
    }

    #[test]
    fn query_points_are_deterministic() {
        let a = query_points_2d(1, 50, 100.0);
        assert_eq!(a, query_points_2d(1, 50, 100.0));
        assert!(a.iter().all(|p| p.iter().all(|c| (0.0..100.0).contains(c))));
    }
}
