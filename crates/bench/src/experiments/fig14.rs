//! Fig. 14 — *Gaussian pdf*: the threshold sweep repeated with Gaussian
//! uncertainty pdfs (mean at region center, σ = width/6, 300-bar
//! histograms), plotted in log scale in the paper.
//!
//! Paper shape: VR again wins, with larger savings than the uniform case
//! (Gaussian probability evaluation is pricier, and the verifiers avoid
//! it); at P = 1 all methods are cheap because at most one candidate can
//! satisfy the query.

use cpnn_core::{Strategy, UncertainDb};
use cpnn_datagen::{gaussian_variant, longbeach::longbeach_with, LongBeachConfig};

use crate::experiments::{workload_queries, DEFAULT_DELTA};
use crate::harness::run_queries;
use crate::report::{ms, Table};

/// Build the Gaussian variant of the Long Beach analog.
pub fn gaussian_db(quick: bool, bars: usize) -> UncertainDb {
    let cfg = LongBeachConfig {
        count: if quick { 4_000 } else { 20_000 },
        ..LongBeachConfig::default()
    };
    let base = longbeach_with(0xC0FFEE, cfg);
    UncertainDb::build(gaussian_variant(&base, bars)).expect("valid generated data")
}

/// Run the experiment (300-bar Gaussians as in the paper).
pub fn run(quick: bool) -> Table {
    let db = gaussian_db(quick, 300);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 14",
        "Gaussian pdfs: time vs. threshold (log-scale shape)",
        &["P", "Basic (ms)", "Refine (ms)", "VR (ms)", "VR/Basic"],
    );
    table.note("paper: VR's saving is larger than with uniform pdfs; all methods cheap at P = 1");
    let sweep = if quick {
        vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    };
    for p in sweep {
        let basic = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Basic);
        let refine = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::RefineOnly);
        let vr = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Verified);
        let ratio = vr.avg_total.as_secs_f64() / basic.avg_total.as_secs_f64().max(1e-12);
        table.push_row(vec![
            format!("{p:.1}"),
            ms(basic.avg_total),
            ms(refine.avg_total),
            ms(vr.avg_total),
            format!("{ratio:.3}"),
        ]);
    }
    table
}
