//! Distributed shard serving: shard processes on sockets, plus the
//! horizon-pruned query router that makes a fleet of them answer exactly
//! like one in-process [`ShardedDb`](cpnn_core::ShardedDb).
//!
//! Every building block here is a thin lift of an existing in-process
//! seam onto a wire:
//!
//! * **shard process** ([`serve`]) — one OS process hosts one slab's
//!   flat model behind a [`QueryServer`](cpnn_core::QueryServer)
//!   (coalesced write lane, write-ahead durability, per-shard
//!   checkpoint + journal in its own `--data-dir`), and answers
//!   *filter* requests against pinned snapshots over a Unix-domain or
//!   TCP socket;
//! * **wire protocol** ([`wire`]) — length-prefixed, FNV-checksummed
//!   frames in the `storage.rs` record idiom, with a torn/corrupt error
//!   taxonomy instead of panics on any malformed input;
//! * **router** ([`router`]) — owns the shard map (partition axis +
//!   slab boundaries), prunes fan-out with the *same*
//!   [`select_overlapping`](cpnn_core::shard::select_overlapping)
//!   horizon argument the in-process database uses, merges shard
//!   candidate replies through the *same*
//!   [`fan_out_filter`](cpnn_core::pipeline::fan_out_filter) /
//!   [`evaluate_candidates`](cpnn_core::pipeline::evaluate_candidates)
//!   seam (verify/refine runs once, router-side), routes update bursts
//!   to the owning shard by the *same* slab arithmetic, and degrades
//!   with a typed [`RouterError::ShardUnavailable`](router::RouterError)
//!   instead of a wrong answer when a shard dies.
//!
//! The headline property (see `tests/proptest_router.rs`): a routed
//! query is **bit-for-bit** the single-process answer — same verdicts,
//! same probability bounds — for 1-D, 2-D, and k-NN queries, under
//! interleaved coalesced updates, at any shard-process count, and
//! regardless of the order shard replies arrive in.

#![warn(missing_docs)]

use cpnn_core::persist::PersistentModel;
use cpnn_core::shard::{ShardPoint, ShardableModel};
use cpnn_core::store::CowModel;
use cpnn_core::{DistanceModel, UncertainDb, UncertainDb2d};

pub mod map;
pub mod net;
pub mod router;
pub mod serve;
pub mod wire;

pub use map::ShardMap;
pub use net::{ShardAddr, ShardListener, ShardStream};
pub use router::{
    merge_replies, ClusterStats, QueryRouter, RouterConfig, RouterError, RouterStats, ShardReply,
    UpdateReport,
};
pub use serve::{ShardServeConfig, ShardServerHandle};
pub use wire::{Request, Response, ShardStatus, UpdateOp, WireError};

/// A model a shard process can host and a router can fan out over: a
/// [`ShardableModel`] (per-shard builds, exact extents, copy-on-write
/// updates) that is also a [`PersistentModel`] (object wire codec,
/// per-shard checkpoint + journal recovery) built from the same
/// configuration type, whose query points cross the wire as plain
/// coordinates.
///
/// Implementations: [`UncertainDb`] (1-D) and [`UncertainDb2d`] (2-D).
pub trait RoutedModel:
    DistanceModel<Query: ShardPoint + Send + Sync + 'static>
    + CowModel<Object: Send + 'static>
    + ShardableModel
    + PersistentModel<Context = <Self as ShardableModel>::Config>
    + Send
    + Sync
    + 'static
{
    /// Rebuild a query point from its wire coordinates (length
    /// [`PersistentModel::DIM`]); `None` when the length is wrong.
    fn query_from_coords(coords: &[f64]) -> Option<Self::Query>;
}

impl RoutedModel for UncertainDb {
    fn query_from_coords(coords: &[f64]) -> Option<f64> {
        match coords {
            [q] => Some(*q),
            _ => None,
        }
    }
}

impl RoutedModel for UncertainDb2d {
    fn query_from_coords(coords: &[f64]) -> Option<[f64; 2]> {
        match coords {
            [x, y] => Some([*x, *y]),
            _ => None,
        }
    }
}

/// The wire coordinates of a query point (length [`PersistentModel::DIM`]).
pub fn query_coords<M: RoutedModel>(q: &M::Query) -> Vec<f64> {
    (0..M::DIM as usize).map(|a| q.coord(a)).collect()
}
