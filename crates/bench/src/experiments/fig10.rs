//! Fig. 10 — *Time vs. threshold P* for Basic / Refine / VR.
//!
//! Paper shape: both Refine and VR beat Basic everywhere; at P = 0.3 the
//! costs of Refine and VR are ~80% and ~16% of Basic; VR is ~5× faster than
//! Refine at P = 0.3 and ~40× at P = 0.7.

use cpnn_core::Strategy;

use crate::experiments::{longbeach_db, threshold_sweep, workload_queries, DEFAULT_DELTA};
use crate::harness::run_queries;
use crate::report::{ms, Table};

/// Run the experiment. One row per threshold; three timing series plus the
/// headline ratios.
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 10",
        "query time vs. threshold P (Basic / Refine / VR)",
        &[
            "P",
            "Basic (ms)",
            "Refine (ms)",
            "VR (ms)",
            "VR/Basic",
            "Refine/VR",
        ],
    );
    table.note("paper: VR ≈ 16% of Basic at P=0.3; VR 5× faster than Refine at 0.3, 40× at 0.7");
    for p in threshold_sweep() {
        let basic = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Basic);
        let refine = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::RefineOnly);
        let vr = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Verified);
        let vr_over_basic = vr.avg_total.as_secs_f64() / basic.avg_total.as_secs_f64().max(1e-12);
        let refine_over_vr = refine.avg_total.as_secs_f64() / vr.avg_total.as_secs_f64().max(1e-12);
        table.push_row(vec![
            format!("{p:.1}"),
            ms(basic.avg_total),
            ms(refine.avg_total),
            ms(vr.avg_total),
            format!("{vr_over_basic:.3}"),
            format!("{refine_over_vr:.1}"),
        ]);
    }
    table
}
