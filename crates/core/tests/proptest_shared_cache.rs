//! Properties of the process-wide shared cache tier
//! (`cache::SharedVerifyCache`) and the per-band outcome memoization it
//! carries, on random workloads:
//!
//! 1. **cross-worker equivalence** — scratches that share one tier
//!    return bit-for-bit the verdicts and probability bounds of fresh
//!    uncached evaluation, for 1-D, 2-D, and k-NN specs, at capacities
//!    small enough to force both LRU tiers to evict, under both
//!    admission policies — and the tier actually serves cross-scratch
//!    hits;
//! 2. **batch equivalence** — the batch executor with the shared tier
//!    layered behind its per-worker caches matches flat sequential
//!    uncached evaluation, and every query consults the cache exactly
//!    once (local hits + shared hits + misses = queries);
//! 3. **no stale outcomes under serving** — a shared-tier-enabled
//!    `QueryServer` under interleaved coalesced update bursts answers
//!    every query exactly as sequential evaluation against the snapshot
//!    version the response cites (the tier advances *before* the swap
//!    publishes, so no worker ever reads entries the burst should have
//!    dropped);
//! 4. **TTL / admission neutrality** — an always-expiring TTL and
//!    either admission policy change hit counters only, never answers.
//!
//! Deterministic regressions at the bottom pin the incremental
//! invalidation walk (far-away updates preserve shared entries, nearby
//! ones drop them) and the cross-scratch promote/outcome counters.

use std::sync::Arc;
use std::time::Duration;

use cpnn_core::cache::{CacheConfig, SharedCacheConfig};
use cpnn_core::pipeline::{cpnn, cpnn_with};
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    BatchExecutor, CpnnResult, Extent, Object2d, ObjectId, PipelineConfig, QueryScratch, QuerySpec,
    SharedVerifyCache, UncertainDb, UncertainDb2d, UncertainObject,
};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Random uniform-pdf objects with ids `0..n` on a bounded domain.
fn objects_1d(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

/// Random mixed 2-D objects (disks and rectangles).
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0, 0.5f64..6.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| {
                let id = ObjectId(i as u64);
                if i % 3 == 0 {
                    Object2d::rectangle(id, [x, y], [x + r, y + 0.5 * r + 0.1]).unwrap()
                } else {
                    Object2d::circle(id, [x, y], r).unwrap()
                }
            })
            .collect()
    })
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

/// A tier-enabled config plus the tier itself and `n` worker scratches
/// attached to it.
fn tier_setup(
    capacity: usize,
    shared: SharedCacheConfig,
    n: usize,
) -> (PipelineConfig, Arc<SharedVerifyCache>, Vec<QueryScratch>) {
    let cfg = PipelineConfig {
        cache: CacheConfig::new(capacity, 0.0),
        shared_cache: shared,
        ..Default::default()
    };
    let tier = Arc::new(SharedVerifyCache::new(cfg.shared_cache));
    let scratches = (0..n)
        .map(|_| {
            let mut s = QueryScratch::with_cache(cfg.cache);
            s.attach_shared(Arc::clone(&tier));
            s
        })
        .collect();
    (cfg, tier, scratches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property 1 (1-D + k-NN): three scratches sharing one tier ≡
    /// uncached bit-for-bit at quantum 0, across strategies and both
    /// admission policies, with capacity 2 forcing constant eviction in
    /// both tiers — and at least one lookup is served *by the tier*.
    #[test]
    fn shared_tier_equals_uncached_1d(
        objs in objects_1d(14),
        base in prop::collection::vec(-60.0f64..60.0, 2..6),
        capacity in prop::sample::select(vec![2usize, 64]),
        admit_first in prop::bool::ANY,
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let shared = if admit_first {
            SharedCacheConfig::new(capacity).admit_immediately()
        } else {
            SharedCacheConfig::new(capacity)
        };
        let (cfg, tier, mut scratches) = tier_setup(capacity, shared, 3);
        let uncached_cfg = PipelineConfig::default();
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::nn(0.5, 0.0, EvalStrategy::Basic),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        for round in 0..2 {
            for (i, &q) in base.iter().enumerate() {
                for spec in &specs {
                    let want = cpnn(&db, &q, spec, &uncached_cfg).unwrap();
                    // Every scratch must agree, whichever mix of local
                    // hits, shared hits, and misses each one sees.
                    for (w, scratch) in scratches.iter_mut().enumerate() {
                        let got = cpnn_with(&db, &q, spec, &cfg, scratch).unwrap();
                        assert_same(
                            &got,
                            &want,
                            &format!("q = {q}, query {i}, round {round}, k = {}, worker {w}", spec.k),
                        )?;
                    }
                }
            }
        }
        // Worker 0 publishes (immediately or on second sight via worker
        // 1); a later worker's first visit to the same point must then
        // be served by the tier, not recomputed.
        let shared_hits: u64 = scratches.iter().map(|s| s.cache_stats().shared_hits).sum();
        prop_assert!(shared_hits > 0, "tier never served a cross-worker hit");
        prop_assert!(tier.stats().admitted > 0, "tier never admitted an entry");
    }

    /// Property 1 (2-D): the same cross-worker equivalence over the 2-D
    /// engine.
    #[test]
    fn shared_tier_equals_uncached_2d(
        objs in objects_2d(10),
        base in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 2..5),
    ) {
        let db = UncertainDb2d::build(objs).unwrap();
        let (cfg, tier, mut scratches) =
            tier_setup(32, SharedCacheConfig::new(32).admit_immediately(), 2);
        let uncached_cfg = PipelineConfig::default();
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        for round in 0..2 {
            for (i, &(x, y)) in base.iter().enumerate() {
                for spec in &specs {
                    let q = [x, y];
                    let want = cpnn(&db, &q, spec, &uncached_cfg).unwrap();
                    for (w, scratch) in scratches.iter_mut().enumerate() {
                        let got = cpnn_with(&db, &q, spec, &cfg, scratch).unwrap();
                        assert_same(
                            &got,
                            &want,
                            &format!(
                                "q = {q:?}, query {i}, round {round}, k = {}, worker {w}",
                                spec.k
                            ),
                        )?;
                    }
                }
            }
        }
        let shared_hits: u64 = scratches.iter().map(|s| s.cache_stats().shared_hits).sum();
        prop_assert!(shared_hits > 0, "tier never served a cross-worker hit");
        prop_assert!(tier.len() <= 32, "tier exceeded its capacity");
    }

    /// Property 2: batch execution with the shared tier behind the
    /// per-worker caches ≡ flat sequential uncached evaluation, with
    /// every query counted exactly once across the three counters.
    #[test]
    fn batch_with_shared_tier_matches_uncached(
        objs in objects_1d(16),
        base in prop::collection::vec(-60.0f64..60.0, 2..8),
        threads in prop::sample::select(vec![2usize, 4]),
        capacity in prop::sample::select(vec![2usize, 64]),
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        // Three passes over every (point, spec) pair so repeats cross
        // worker boundaries.
        let mut jobs: Vec<(f64, QuerySpec)> = Vec::new();
        for _ in 0..3 {
            for &q in &base {
                for spec in &specs {
                    jobs.push((q, *spec));
                }
            }
        }
        let mut cfg = PipelineConfig {
            cache: CacheConfig::new(capacity, 0.0),
            shared_cache: SharedCacheConfig::new(capacity).admit_immediately(),
            ..Default::default()
        };
        cfg.cache.quantum = 0.0;
        let out = BatchExecutor::new(threads).run(&db, &jobs, &cfg);
        prop_assert_eq!(out.results.len(), jobs.len());
        let uncached_cfg = PipelineConfig::default();
        for (i, ((q, spec), got)) in jobs.iter().zip(&out.results).enumerate() {
            let want = cpnn(&db, q, spec, &uncached_cfg).unwrap();
            assert_same(
                got.as_ref().unwrap(),
                &want,
                &format!("query {i}, T = {threads}, capacity {capacity}"),
            )?;
        }
        let s = &out.summary;
        prop_assert_eq!(
            s.cache_hits + s.shared_hits + s.cache_misses,
            jobs.len() as u64,
            "every query consults the cache exactly once"
        );
    }

    /// Property 3: shared-tier serving under interleaved coalesced update
    /// bursts — every response matches sequential uncached evaluation
    /// against exactly the snapshot version it cites. The tier advances
    /// before each burst's swap publishes, so a passing run means no
    /// worker ever read a shared entry (or memoized outcome) the burst
    /// should have dropped.
    #[test]
    fn server_shared_tier_never_serves_stale_bounds(
        objs in objects_1d(12),
        points in prop::collection::vec(-60.0f64..60.0, 4..14),
        threads in 2usize..5,
        burst in 1usize..4,
    ) {
        use cpnn_core::server::QueryServer;
        let base = objs.len() as u64;
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(64, 0.0),
            shared_cache: SharedCacheConfig::new(64).admit_immediately(),
            ..Default::default()
        };
        let uncached_cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        // `models[v]` mirrors the contents the server publishes as
        // version v (each burst = one version).
        let mut models = vec![db.clone()];
        let mut mirror = db.clone();
        let server = QueryServer::start(db, threads, cfg);

        let mut tickets = Vec::new();
        let mut update_tickets = Vec::new();
        let mut fresh: u64 = 0;
        for (i, &q) in points.iter().enumerate() {
            tickets.push((q, server.submit(q, spec)));
            tickets.push((q, server.submit(q, spec)));
            if i % 2 == 0 {
                for _ in 0..burst {
                    fresh += 1;
                    let object =
                        UncertainObject::uniform(ObjectId(base + fresh), q - 1.0, q + 1.0)
                            .unwrap();
                    mirror.insert(object.clone()).unwrap();
                    update_tickets.push(server.queue_insert(object));
                }
                let report = server.flush_writes();
                prop_assert_eq!(report.applied, burst);
                prop_assert!(report.published.is_some());
                models.push(mirror.clone());
            }
        }
        for (i, (q, ticket)) in tickets.into_iter().enumerate() {
            let served = ticket.wait();
            let v = served.snapshot_version as usize;
            prop_assert!(v < models.len(), "unknown version {}", v);
            let want = cpnn(&models[v], &q, &spec, &uncached_cfg).unwrap();
            let got = served.result.unwrap();
            assert_same(&got, &want, &format!("query {i} at v{v}, T = {threads}"))?;
        }
        for t in update_tickets {
            prop_assert!(t.wait().result.is_ok());
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.served, 2 * points.len() as u64);
        prop_assert!(
            stats.cache_hits + stats.shared_hits + stats.cache_misses >= stats.served,
            "every query consults the cache"
        );
    }

    /// Property 4: TTL and admission policy shift traffic between the
    /// counters but never change answers — including `Duration::ZERO`,
    /// which expires every entry on its next shared lookup.
    #[test]
    fn ttl_and_admission_never_change_answers(
        objs in objects_1d(12),
        base in prop::collection::vec(-60.0f64..60.0, 2..6),
        ttl_mode in prop::sample::select(vec![0usize, 1, 2]),
        admit_first in prop::bool::ANY,
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let mut shared = SharedCacheConfig::new(32);
        if admit_first {
            shared = shared.admit_immediately();
        }
        shared = match ttl_mode {
            1 => shared.with_ttl(Duration::ZERO),
            2 => shared.with_ttl(Duration::from_secs(3_600)),
            _ => shared,
        };
        let (cfg, tier, mut scratches) = tier_setup(32, shared, 3);
        let uncached_cfg = PipelineConfig::default();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let mut evaluations = 0u64;
        for round in 0..2 {
            for (i, &q) in base.iter().enumerate() {
                let want = cpnn(&db, &q, &spec, &uncached_cfg).unwrap();
                for (w, scratch) in scratches.iter_mut().enumerate() {
                    let got = cpnn_with(&db, &q, &spec, &cfg, scratch).unwrap();
                    evaluations += 1;
                    assert_same(
                        &got,
                        &want,
                        &format!("q = {q}, query {i}, round {round}, worker {w}, ttl {ttl_mode}"),
                    )?;
                }
            }
        }
        let totals = scratches
            .iter()
            .fold((0u64, 0u64, 0u64), |(h, s, m), sc| {
                let st = sc.cache_stats();
                (h + st.hits, s + st.shared_hits, m + st.misses)
            });
        prop_assert_eq!(
            totals.0 + totals.1 + totals.2,
            evaluations,
            "every evaluation counted exactly once"
        );
        if ttl_mode == 1 && admit_first {
            // Zero TTL: every shared lookup that finds an entry expires
            // it instead, so the tier never serves a hit — all its
            // traffic shows up as expirations and misses.
            prop_assert_eq!(totals.1, 0, "zero TTL must never serve a shared hit");
            prop_assert!(tier.stats().expired > 0, "zero TTL never expired an entry");
        }
    }
}

/// Non-proptest regression: the incremental invalidation walk over the
/// shared tier — a far-away update preserves shared entries (a second
/// worker gets a shared hit and a memoized outcome, bit-identical), a
/// nearby update drops them (the fresh answer reflects the new object).
#[test]
fn far_update_preserves_shared_entries_nearby_update_drops_them() {
    // Tight cluster near 0; queries at 0 have a small candidate horizon.
    let objects: Vec<UncertainObject> = (0..8)
        .map(|i| {
            UncertainObject::uniform(ObjectId(i), i as f64 * 0.5, i as f64 * 0.5 + 0.4).unwrap()
        })
        .collect();
    let mut db = UncertainDb::build(objects).unwrap();
    let cfg = PipelineConfig {
        cache: CacheConfig::new(32, 0.0),
        shared_cache: SharedCacheConfig::new(32).admit_immediately(),
        ..Default::default()
    };
    let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
    let tier = Arc::new(SharedVerifyCache::new(cfg.shared_cache));

    // Worker A warms the tier at version 0.
    let mut a = QueryScratch::with_cache(cfg.cache);
    a.attach_shared(Arc::clone(&tier));
    let baseline = cpnn_with(&db, &0.0, &spec, &cfg, &mut a).unwrap();
    assert_eq!(tier.len(), 1, "worker A published its fill");

    // A far-away insert (mindist from q = 0 is ~1000, way past the
    // cluster horizon of ~4): the tier walks its segments and the entry
    // survives.
    db.insert(UncertainObject::uniform(ObjectId(500), 1000.0, 1001.0).unwrap())
        .unwrap();
    tier.advance_version(1, Some(&[Extent::new(vec![1000.0], vec![1001.0])]));
    assert_eq!(tier.len(), 1, "far-away update preserved the entry");

    // A fresh worker B pinned to v1 is served entirely by the tier: a
    // shared hit plus a memoized outcome, bit-identical to the baseline.
    let mut b = QueryScratch::with_cache(cfg.cache);
    b.attach_shared(Arc::clone(&tier));
    b.set_snapshot_version(1);
    let again = cpnn_with(&db, &0.0, &spec, &cfg, &mut b).unwrap();
    assert_eq!(again.answers, baseline.answers);
    assert_eq!(again.reports, baseline.reports);
    let sb = b.cache_stats();
    assert_eq!(
        (sb.hits, sb.shared_hits, sb.misses, sb.outcome_hits),
        (0, 1, 0, 1),
        "worker B was served by the shared tier, skipping verify/refine"
    );

    // A nearby insert (inside the horizon) must drop the entry — worker
    // C misses and the fresh answer reflects the new object.
    db.insert(UncertainObject::uniform(ObjectId(501), 0.01, 0.05).unwrap())
        .unwrap();
    tier.advance_version(2, Some(&[Extent::new(vec![0.01], vec![0.05])]));
    assert_eq!(tier.len(), 0, "nearby update dropped the entry");
    let mut c = QueryScratch::with_cache(cfg.cache);
    c.attach_shared(Arc::clone(&tier));
    c.set_snapshot_version(2);
    let after = cpnn_with(&db, &0.0, &spec, &cfg, &mut c).unwrap();
    assert_eq!(after.answers, vec![ObjectId(501)]);
    let sc = c.cache_stats();
    assert_eq!((sc.hits, sc.shared_hits, sc.misses), (0, 0, 1));
}

/// Non-proptest regression: cross-scratch counter semantics under
/// second-sight admission — the first two sightings are misses (the
/// second admits), the third scratch's lookup is reclassified from miss
/// to shared hit, and the per-scratch `lookups()` totals stay exact.
#[test]
fn second_sight_admission_counts_cross_scratch_hits_exactly() {
    let objects: Vec<UncertainObject> = (0..10)
        .map(|i| {
            UncertainObject::uniform(ObjectId(i), i as f64 * 3.0, i as f64 * 3.0 + 2.0).unwrap()
        })
        .collect();
    let db = UncertainDb::build(objects).unwrap();
    let cfg = PipelineConfig {
        cache: CacheConfig::new(16, 0.0),
        shared_cache: SharedCacheConfig::new(16),
        ..Default::default()
    };
    let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
    let tier = Arc::new(SharedVerifyCache::new(cfg.shared_cache));
    let mut scratches: Vec<QueryScratch> = (0..3)
        .map(|_| {
            let mut s = QueryScratch::with_cache(cfg.cache);
            s.attach_shared(Arc::clone(&tier));
            s
        })
        .collect();
    let mut results = Vec::new();
    for scratch in scratches.iter_mut() {
        results.push(cpnn_with(&db, &5.0, &spec, &cfg, scratch).unwrap());
    }
    assert_eq!(results[0].answers, results[1].answers);
    assert_eq!(results[0].reports, results[1].reports);
    assert_eq!(results[0].answers, results[2].answers);
    assert_eq!(results[0].reports, results[2].reports);
    // Scratch 0: miss, publish deferred (first sighting). Scratch 1:
    // miss, publish admitted (second sighting). Scratch 2: shared hit.
    let s0 = scratches[0].cache_stats();
    let s1 = scratches[1].cache_stats();
    let s2 = scratches[2].cache_stats();
    assert_eq!((s0.hits, s0.shared_hits, s0.misses), (0, 0, 1));
    assert_eq!((s1.hits, s1.shared_hits, s1.misses), (0, 0, 1));
    assert_eq!((s2.hits, s2.shared_hits, s2.misses), (0, 1, 0));
    assert_eq!(
        s2.outcome_hits, 1,
        "the shared hit replayed the memoized outcome"
    );
    let t = tier.stats();
    assert_eq!((t.deferred, t.admitted, t.hits), (1, 1, 1));
}
