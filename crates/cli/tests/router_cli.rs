//! Process-level distributed serving test: real `cpnn` binaries, real
//! sockets, real `kill -9`. Drives the full `shard-split` →
//! `shard-serve` (one OS process per shard) → `route` flow and checks,
//! against an uninterrupted single-process `serve` run of the same
//! workload, that:
//!
//! - routed answers match `serve --shards N` line for line (answers and
//!   candidate counts; timings and version counters are process-local
//!   and excluded),
//! - a SIGKILLed shard degrades its queries to a typed `unavailable`
//!   line while the surviving shard keeps answering correctly,
//! - restarting the dead shard recovers its durable data dir
//!   (checkpoint + write-ahead journal) and the fleet converges back to
//!   the uninterrupted transcript.
//!
//! This is the in-repo twin of the CI multi-process smoke.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use cpnn_core::persist::save_to_path;
use cpnn_core::{ObjectId, UncertainDb, UncertainObject};

const CPNN: &str = env!("CARGO_BIN_EXE_cpnn");

/// Two far-apart clusters so a 2-way split puts each on its own shard:
/// queries near 0 never fan out to the shard owning the cluster near
/// 100, which is what makes the outage scenario deterministic.
fn clustered_dataset(path: &Path) {
    let objects: Vec<UncertainObject> = (0..8)
        .map(|i| {
            let base = if i < 4 {
                i as f64 * 1.5
            } else {
                100.0 + (i - 4) as f64 * 1.5
            };
            UncertainObject::uniform(ObjectId(i), base, base + 1.0).unwrap()
        })
        .collect();
    let db = UncertainDb::build(objects).unwrap();
    save_to_path(&db, path).unwrap();
}

fn cpnn(args: &[&str]) -> Command {
    let mut cmd = Command::new(CPNN);
    cmd.args(args);
    cmd
}

/// Spawn a `shard-serve` process and block until it prints its readiness
/// line (so the socket is bound before anyone dials it). The child's
/// remaining stderr drains on a thread to keep the pipe from filling.
fn spawn_shard(dir: &Path) -> Child {
    let mut child = cpnn(&["shard-serve", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn shard-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr);
    let mut line = String::new();
    loop {
        line.clear();
        let n = lines.read_line(&mut line).expect("read shard stderr");
        assert!(n > 0, "shard-serve exited before becoming ready");
        if line.contains("shard serving") {
            break;
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = lines.read_to_string(&mut sink);
    });
    child
}

/// `#3 v7 answers=[1, 4] cands=2 t=12µs` → `answers=[1, 4] cands=2` —
/// the process-independent part of a query reply. Update lines keep
/// their `objects=N batch=B` tail (versions are router-local counters).
fn comparable(line: &str) -> String {
    if let Some(at) = line.find("answers=") {
        let rest = &line[at..];
        let end = rest.find(" t=").unwrap_or(rest.len());
        return rest[..end].to_string();
    }
    if let Some(at) = line.find("objects=") {
        return line[at..].to_string();
    }
    panic!("unexpected serve/route output line: {line}");
}

#[test]
fn routed_fleet_matches_serve_and_survives_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("cpnn-router-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.cpnn");
    clustered_dataset(&data);

    // Split into two durable shard dirs + a shard map. `--out` is
    // absolute, so the socket paths in the map are too (cwd-independent).
    let fleet = dir.join("fleet");
    let split = cpnn(&[
        "shard-split",
        data.to_str().unwrap(),
        "--out",
        fleet.to_str().unwrap(),
        "--shards",
        "2",
    ])
    .output()
    .expect("run shard-split");
    assert!(
        split.status.success(),
        "shard-split failed: {}",
        String::from_utf8_lossy(&split.stderr)
    );
    let map = fleet.join("shards.cpsm");
    let shard_dir = |i: usize| fleet.join(format!("shard{i}"));

    let mut shards: Vec<Option<Child>> = (0..2).map(|i| Some(spawn_shard(&shard_dir(i)))).collect();

    // The uninterrupted single-process baseline over the same workload
    // (minus the outage-window query, which has no baseline to match).
    let baseline_workload = "0.5 0.3\n100.5 0.3\n\
                            insert 100 102 103.5\nremove 0\n\
                            100.5 0.3\n0.5 0.3\n\
                            0.5 0.3\n\
                            100.5 0.3\nknn 100.5 2 0.2\nquit\n";
    let serve = cpnn(&["serve", data.to_str().unwrap(), "--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    serve
        .stdin
        .as_ref()
        .unwrap()
        .write_all(baseline_workload.as_bytes())
        .unwrap();
    let serve_out = serve.wait_with_output().expect("serve baseline");
    assert!(serve_out.status.success(), "serve baseline failed");
    let want: Vec<String> = String::from_utf8(serve_out.stdout)
        .unwrap()
        .lines()
        .map(comparable)
        .collect();
    assert_eq!(want.len(), 9, "baseline: 7 query replies + 2 update lines");

    // The routed run: same workload, but shard 1 (the cluster near 100)
    // is SIGKILLed mid-stream and restarted from its own data dir.
    let mut route = cpnn(&["route", map.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn route");
    let mut stdin = route.stdin.take().unwrap();
    let mut stdout = BufReader::new(route.stdout.take().unwrap());
    let mut read_line = |what: &str| -> String {
        let mut line = String::new();
        let n = stdout.read_line(&mut line).expect("read route stdout");
        assert!(n > 0, "route closed stdout early, expected {what}");
        line.trim_end().to_string()
    };

    // Phase 1: both shards up — queries, then a durable update burst.
    stdin
        .write_all(b"0.5 0.3\n100.5 0.3\ninsert 100 102 103.5\nremove 0\n100.5 0.3\n0.5 0.3\n")
        .unwrap();
    let mut got: Vec<String> = (0..6)
        .map(|i| comparable(&read_line(&format!("phase-1 line {i}"))))
        .collect();

    // Phase 2: kill -9 the shard owning the far cluster. Reading the
    // phase-1 replies above synchronized us: the burst is journaled.
    let mut victim = shards[1].take().unwrap();
    victim.kill().expect("SIGKILL shard 1");
    victim.wait().expect("reap shard 1");
    stdin.write_all(b"100.5 0.3\n0.5 0.3\n").unwrap();
    let outage = read_line("outage query");
    assert!(
        outage.contains("unavailable"),
        "a query needing the dead shard must degrade typed, got: {outage}"
    );
    got.push(comparable(&read_line("survivor query")));

    // Phase 3: restart the shard on the same socket; it recovers the
    // pre-kill burst from its checkpoint + journal tail, and the router
    // reconnects on the next request that needs it.
    shards[1] = Some(spawn_shard(&shard_dir(1)));
    stdin
        .write_all(b"100.5 0.3\nknn 100.5 2 0.2\nquit\n")
        .unwrap();
    got.push(comparable(&read_line("post-recovery query")));
    got.push(comparable(&read_line("post-recovery knn")));
    drop(stdin);
    let status = route.wait().expect("route exit");
    assert!(status.success(), "route must exit cleanly");

    assert_eq!(
        got, want,
        "routed transcript (crash + recovery) must match the uninterrupted serve run"
    );

    for shard in shards.iter_mut().flatten() {
        let _ = shard.kill();
        let _ = shard.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
