//! Fault injection: a shard killed mid-workload degrades to a *typed*
//! [`RouterError::ShardUnavailable`] — never a panic, never a wrong
//! answer — and a restart that recovers the shard's own `--data-dir`
//! (checkpoint + write-ahead journal) brings the fleet back to answers
//! bit-for-bit identical to an uninterrupted single-process run.
//!
//! The scenario uses two far-apart clusters so the partition puts each
//! cluster on its own shard: queries near the surviving cluster are
//! provably unaffected (horizon pruning never selects the dead shard),
//! while queries near the dead cluster *must* fail typed rather than
//! answer from partial data.

use std::sync::Arc;
use std::time::Duration;

use cpnn_core::pipeline::{cpnn, PipelineConfig, QuerySpec};
use cpnn_core::{
    CpnnResult, FileBackend, ObjectId, QueryServer, ShardableModel, ShardedDb, Strategy,
    UncertainDb, UncertainObject,
};
use cpnn_router::{
    QueryRouter, RouterConfig, RouterError, ShardAddr, ShardListener, ShardMap, ShardServeConfig,
    ShardServerHandle, UpdateOp,
};

/// Two clusters, far apart: ids 0..4 near the origin, ids 4..8 near 100.
fn clustered_objects() -> Vec<UncertainObject> {
    (0..8)
        .map(|i| {
            let base = if i < 4 {
                i as f64 * 1.5
            } else {
                100.0 + (i - 4) as f64 * 1.5
            };
            UncertainObject::uniform(ObjectId(i), base, base + 1.0).unwrap()
        })
        .collect()
}

fn quick_cfg() -> RouterConfig {
    RouterConfig {
        timeout: Duration::from_secs(5),
        retries: 1,
        backoff: Duration::from_millis(5),
    }
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) {
    assert_eq!(got.answers, want.answers, "answers differ: {ctx}");
    assert_eq!(got.reports, want.reports, "reports differ: {ctx}");
}

/// Spawn shard `i` of `db` on `socket`, durable in `data_dir`: recover
/// whatever the directory holds (empty on first boot), fall back to the
/// reference model, attach the backend, checkpoint immediately.
fn spawn_durable_shard(
    db: &ShardedDb<UncertainDb>,
    i: usize,
    data_dir: &std::path::Path,
    socket: &std::path::Path,
) -> ShardServerHandle<UncertainDb> {
    let mut backend = FileBackend::open(data_dir).expect("open shard data dir");
    let recovered = backend
        .recover::<UncertainDb>(db.shard_configuration())
        .expect("shard recovery must not fail");
    let (model, version) = match recovered {
        Some(rec) => (rec.model, rec.version),
        None => (
            UncertainDb::with_config(db.shard_model(i).shard_objects(), *db.shard_configuration())
                .unwrap(),
            0,
        ),
    };
    let server = Arc::new(QueryServer::start_at(
        model,
        version,
        1,
        db.pipeline_config(),
    ));
    server.attach_storage(Box::new(backend));
    server.checkpoint_now().expect("seed checkpoint");
    let listener = ShardListener::bind(&ShardAddr::Unix(socket.to_path_buf())).unwrap();
    ShardServerHandle::spawn(
        server,
        listener,
        ShardServeConfig {
            checkpoint_every: 2,
        },
    )
    .unwrap()
}

#[test]
fn killed_shard_degrades_typed_then_recovers_from_its_data_dir() {
    let dir = std::env::temp_dir().join(format!("cpnn-router-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let flat = UncertainDb::build(clustered_objects()).unwrap();
    // `local` is the uninterrupted single-process run the routed answers
    // must keep matching through crash and recovery.
    let mut local = ShardedDb::from_model(&flat, 2).unwrap();
    let cfg = PipelineConfig::default();
    let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);

    let data_dir = |i: usize| dir.join(format!("shard{i}"));
    let socket = |i: usize| dir.join(format!("s{i}.sock"));
    let mut handles: Vec<Option<ShardServerHandle<UncertainDb>>> = (0..2)
        .map(|i| Some(spawn_durable_shard(&local, i, &data_dir(i), &socket(i))))
        .collect();
    let map = ShardMap {
        axis: local.partition_axis(),
        bounds: local.slab_bounds().to_vec(),
        addrs: (0..2).map(|i| ShardAddr::Unix(socket(i))).collect(),
    };
    let mut router: QueryRouter<UncertainDb> =
        QueryRouter::connect(&map, cfg, quick_cfg()).unwrap();

    // Baseline: both clusters answer, bit for bit.
    for q in [0.5, 100.5, 50.0] {
        let want = cpnn(&local, &q, &spec, &cfg).unwrap();
        let got = router.query(&q, &spec).unwrap();
        assert_same(&got, &want, &format!("baseline q = {q}"));
    }

    // A durable burst before the crash: insert into the far cluster,
    // remove from the near one. This is the state recovery must restore.
    let inserted = UncertainObject::uniform(ObjectId(100), 102.0, 103.5).unwrap();
    local.insert(inserted.clone()).unwrap();
    assert!(local.remove(ObjectId(0)).is_some());
    let report = router
        .update(vec![
            UpdateOp::Insert(inserted.clone()),
            UpdateOp::Remove(ObjectId(0)),
        ])
        .unwrap();
    assert_eq!(report.outcomes, vec![Ok(()), Ok(())]);
    assert_eq!(report.objects as usize, local.len());
    for q in [0.5, 100.5] {
        let want = cpnn(&local, &q, &spec, &cfg).unwrap();
        assert_same(
            &router.query(&q, &spec).unwrap(),
            &want,
            &format!("post-burst q = {q}"),
        );
    }

    // Crash the far-cluster shard: sockets severed mid-conversation, no
    // farewell — the in-process twin of `kill -9`.
    handles[1].take().unwrap().kill();

    // Near-cluster queries are untouched: horizon pruning never selects
    // the dead shard, so the answer is still bit-for-bit correct.
    let want = cpnn(&local, &0.5, &spec, &cfg).unwrap();
    assert_same(
        &router.query(&0.5, &spec).unwrap(),
        &want,
        "near cluster during outage",
    );

    // Far-cluster queries must degrade typed — no panic, no wrong answer.
    match router.query(&100.5, &spec) {
        Err(RouterError::ShardUnavailable { shard: 1, detail }) => {
            assert!(
                RouterError::ShardUnavailable { shard: 1, detail }
                    .to_string()
                    .contains("unavailable"),
                "degradation line must name the failure"
            );
        }
        other => panic!("expected ShardUnavailable for the dead shard, got {other:?}"),
    }

    // Updates routed to the dead shard degrade the same way, and must
    // not half-apply: the tentative id-map entry is retracted.
    let doomed = UncertainObject::uniform(ObjectId(200), 104.0, 105.0).unwrap();
    match router.update(vec![UpdateOp::Insert(doomed)]) {
        Err(RouterError::ShardUnavailable { shard: 1, .. }) => {}
        other => panic!("expected ShardUnavailable for a dead-shard update, got {other:?}"),
    }

    // Restart the shard on the same socket, recovering from its own
    // data dir — checkpoint + journal tail, no global rebuild. The
    // pre-crash burst (insert 100) must come back with it.
    handles[1] = Some(spawn_durable_shard(&local, 1, &data_dir(1), &socket(1)));

    // The router reconnects lazily on the next request and resyncs its
    // id map from the recovered shard.
    for q in [0.5, 100.5, 50.0] {
        let want = cpnn(&local, &q, &spec, &cfg).unwrap();
        let got = router.query(&q, &spec).unwrap();
        assert_same(&got, &want, &format!("post-recovery q = {q}"));
    }

    // The recovered id map still enforces cross-shard uniqueness: the
    // pre-crash insert survives as a duplicate, the doomed one (never
    // applied) inserts cleanly — exactly like the uninterrupted run.
    let dup = UncertainObject::uniform(ObjectId(100), 1.0, 2.0).unwrap();
    let retry = UncertainObject::uniform(ObjectId(200), 104.0, 105.0).unwrap();
    let expected = vec![
        local.insert(dup.clone()).map_err(|e| e.to_string()),
        local.insert(retry.clone()).map_err(|e| e.to_string()),
    ];
    assert!(expected[0].is_err(), "id 100 must be a duplicate");
    assert!(expected[1].is_ok(), "id 200 never applied, must insert");
    let report = router
        .update(vec![UpdateOp::Insert(dup), UpdateOp::Insert(retry)])
        .unwrap();
    assert_eq!(report.outcomes, expected);
    assert_eq!(report.objects as usize, local.len());
    for q in [0.5, 100.5] {
        let want = cpnn(&local, &q, &spec, &cfg).unwrap();
        assert_same(
            &router.query(&q, &spec).unwrap(),
            &want,
            &format!("final q = {q}"),
        );
    }

    // One more crash/recover cycle, immediately after a burst that was
    // journaled but (checkpoint_every = 2) possibly not yet folded into
    // a checkpoint: the journal tail alone must carry it.
    handles[1].take().unwrap().kill();
    handles[1] = Some(spawn_durable_shard(&local, 1, &data_dir(1), &socket(1)));
    for q in [0.5, 100.5] {
        let want = cpnn(&local, &q, &spec, &cfg).unwrap();
        assert_same(
            &router.query(&q, &spec).unwrap(),
            &want,
            &format!("second recovery q = {q}"),
        );
    }

    for h in handles.into_iter().flatten() {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The typed degradation is stable under repeated attempts: every retry
/// against a dead shard keeps failing `ShardUnavailable` (no panics, no
/// hangs), and the router's own counters record the reconnect attempts.
#[test]
fn repeated_queries_against_a_dead_shard_stay_typed() {
    let dir = std::env::temp_dir().join(format!("cpnn-router-deadloop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let flat = UncertainDb::build(clustered_objects()).unwrap();
    let local = ShardedDb::from_model(&flat, 2).unwrap();
    let cfg = PipelineConfig::default();
    let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);

    let socket = |i: usize| dir.join(format!("s{i}.sock"));
    let mut handles = Vec::new();
    for i in 0..2 {
        let model = UncertainDb::with_config(
            local.shard_model(i).shard_objects(),
            *local.shard_configuration(),
        )
        .unwrap();
        let server = Arc::new(QueryServer::start(model, 1, local.pipeline_config()));
        let listener = ShardListener::bind(&ShardAddr::Unix(socket(i))).unwrap();
        handles
            .push(ShardServerHandle::spawn(server, listener, ShardServeConfig::default()).unwrap());
    }
    let map = ShardMap {
        axis: local.partition_axis(),
        bounds: local.slab_bounds().to_vec(),
        addrs: (0..2).map(|i| ShardAddr::Unix(socket(i))).collect(),
    };
    let mut router: QueryRouter<UncertainDb> =
        QueryRouter::connect(&map, cfg, quick_cfg()).unwrap();

    handles.remove(1).kill();
    let before = router.router_stats().retries;
    for attempt in 0..3 {
        match router.query(&100.5, &spec) {
            Err(RouterError::ShardUnavailable { shard: 1, .. }) => {}
            other => panic!("attempt {attempt}: expected ShardUnavailable, got {other:?}"),
        }
        // The near cluster keeps answering between failed attempts.
        let want = cpnn(&local, &0.5, &spec, &cfg).unwrap();
        assert_same(&router.query(&0.5, &spec).unwrap(), &want, "near cluster");
    }
    assert!(
        router.router_stats().retries > before,
        "redial attempts against the dead shard must be counted"
    );

    for h in handles {
        h.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
