//! A persistent (path-copying) ordered map from object ids to small
//! values.
//!
//! The storage layer ([`crate::store::IndexedStore`]) keeps objects inside
//! the persistent R-tree, but two operations still need an id-keyed side
//! structure: duplicate-id detection on insert and id → rect lookup on
//! remove. A plain `Vec`/`HashMap` would make every copy-on-write update
//! O(n) again — exactly the cost the path-copying index removes — so this
//! module provides the same trick for the id dimension: a B-tree with
//! `Arc`-shared nodes where [`IdMap::with_inserted`] /
//! [`IdMap::with_removed`] clone only the root-to-leaf path.
//!
//! Deletions do not rebalance: nodes only ever split (on insert), so the
//! height is bounded by the insert history and lookups stay O(log n);
//! removals shrink nodes in place (path-copied) and dissolve them when
//! empty. This keeps the structure ~100 lines and is plenty for id sets.

use std::sync::Arc;

/// Fan-out: max keys per node before a split.
const MAX_KEYS: usize = 16;

#[derive(Debug)]
enum MapNode<V> {
    /// Sorted `(key, value)` records.
    Leaf(Vec<(u64, V)>),
    /// `(max key in subtree, child)` in ascending max-key order.
    Internal(Vec<(u64, Arc<MapNode<V>>)>),
}

impl<V> MapNode<V> {
    /// Largest key in the subtree (`None` when empty).
    fn max_key(&self) -> Option<u64> {
        match self {
            MapNode::Leaf(v) => v.last().map(|(k, _)| *k),
            MapNode::Internal(v) => v.last().map(|(k, _)| *k),
        }
    }
}

/// A persistent sorted map `u64 → V` with O(log n) path-copying updates.
/// `Clone` is O(1) (shares the root).
#[derive(Debug)]
pub struct IdMap<V> {
    root: Arc<MapNode<V>>,
    len: usize,
}

impl<V> Clone for IdMap<V> {
    fn clone(&self) -> Self {
        Self {
            root: Arc::clone(&self.root),
            len: self.len,
        }
    }
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IdMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            root: Arc::new(MapNode::Leaf(Vec::new())),
            len: 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `key` present?
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node: &MapNode<V> = &self.root;
        loop {
            match node {
                MapNode::Leaf(v) => {
                    return v
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| &v[i].1);
                }
                MapNode::Internal(children) => {
                    let i = children.partition_point(|(max, _)| *max < key);
                    if i == children.len() {
                        return None;
                    }
                    node = &children[i].1;
                }
            }
        }
    }
}

impl<V: Clone> IdMap<V> {
    /// Bulk-build from pairs **sorted ascending by key, without
    /// duplicates** (the caller checks — see
    /// [`crate::store::IndexedStore::build`]).
    pub fn from_sorted(pairs: Vec<(u64, V)>) -> Self {
        let len = pairs.len();
        if len == 0 {
            return Self::new();
        }
        let mut level: Vec<Arc<MapNode<V>>> = pairs
            .chunks(MAX_KEYS)
            .map(|c| Arc::new(MapNode::Leaf(c.to_vec())))
            .collect();
        while level.len() > 1 {
            level = level
                .chunks(MAX_KEYS)
                .map(|c| {
                    let children: Vec<(u64, Arc<MapNode<V>>)> = c
                        .iter()
                        .map(|n| {
                            (
                                n.max_key().expect("packed nodes are non-empty"),
                                Arc::clone(n),
                            )
                        })
                        .collect();
                    Arc::new(MapNode::Internal(children))
                })
                .collect();
        }
        Self {
            root: level.pop().expect("at least one node"),
            len,
        }
    }

    /// Path-copying insert. `None` if the key is already present (`self`
    /// is never changed).
    pub fn with_inserted(&self, key: u64, value: V) -> Option<Self> {
        let (new_root, sibling) = ins(&self.root, key, value)?;
        let root = match sibling {
            None => Arc::new(new_root),
            Some(sibling) => {
                let left = (new_root.max_key().expect("non-empty"), Arc::new(new_root));
                let right = (sibling.max_key().expect("non-empty"), Arc::new(sibling));
                Arc::new(MapNode::Internal(vec![left, right]))
            }
        };
        Some(Self {
            root,
            len: self.len + 1,
        })
    }

    /// Path-copying remove. `None` if the key is absent (`self` is never
    /// changed); otherwise the new map and the removed value.
    pub fn with_removed(&self, key: u64) -> Option<(Self, V)> {
        let (replacement, value) = rem(&self.root, key)?;
        let mut root = match replacement {
            Some(node) => Arc::new(node),
            None => Arc::new(MapNode::Leaf(Vec::new())),
        };
        loop {
            let collapsed = match &*root {
                MapNode::Internal(children) if children.len() == 1 => Arc::clone(&children[0].1),
                _ => break,
            };
            root = collapsed;
        }
        Some((
            Self {
                root,
                len: self.len - 1,
            },
            value,
        ))
    }
}

/// Recursive path-copying insert: the copied node plus an optional split
/// sibling; `None` on a duplicate key.
fn ins<V: Clone>(
    node: &MapNode<V>,
    key: u64,
    value: V,
) -> Option<(MapNode<V>, Option<MapNode<V>>)> {
    match node {
        MapNode::Leaf(records) => {
            let at = match records.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(_) => return None, // duplicate
                Err(at) => at,
            };
            let mut records = records.clone();
            records.insert(at, (key, value));
            if records.len() > MAX_KEYS {
                let right = records.split_off(records.len() / 2);
                Some((MapNode::Leaf(records), Some(MapNode::Leaf(right))))
            } else {
                Some((MapNode::Leaf(records), None))
            }
        }
        MapNode::Internal(children) => {
            // Descend into the first child whose max covers the key (the
            // last child absorbs keys beyond every max).
            let i = children
                .partition_point(|(max, _)| *max < key)
                .min(children.len() - 1);
            let (new_child, sibling) = ins(&children[i].1, key, value)?;
            let mut children = children.clone();
            children[i] = (new_child.max_key().expect("non-empty"), Arc::new(new_child));
            if let Some(sibling) = sibling {
                children.insert(
                    i + 1,
                    (sibling.max_key().expect("non-empty"), Arc::new(sibling)),
                );
                if children.len() > MAX_KEYS {
                    let right = children.split_off(children.len() / 2);
                    return Some((MapNode::Internal(children), Some(MapNode::Internal(right))));
                }
            }
            Some((MapNode::Internal(children), None))
        }
    }
}

/// Recursive path-copying remove: the copied replacement (`None` when the
/// node dissolved) plus the removed value; outer `None` when absent.
fn rem<V: Clone>(node: &MapNode<V>, key: u64) -> Option<(Option<MapNode<V>>, V)> {
    match node {
        MapNode::Leaf(records) => {
            let at = records.binary_search_by_key(&key, |(k, _)| *k).ok()?;
            let value = records[at].1.clone();
            let mut records = records.clone();
            records.remove(at);
            let replacement = (!records.is_empty()).then_some(MapNode::Leaf(records));
            Some((replacement, value))
        }
        MapNode::Internal(children) => {
            let i = children.partition_point(|(max, _)| *max < key);
            if i == children.len() {
                return None;
            }
            let (replacement, value) = rem(&children[i].1, key)?;
            let mut children = children.clone();
            match replacement {
                Some(new_child) => {
                    children[i] = (new_child.max_key().expect("non-empty"), Arc::new(new_child));
                }
                None => {
                    children.remove(i);
                }
            }
            let replacement = (!children.is_empty()).then_some(MapNode::Internal(children));
            Some((replacement, value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_behaviour() {
        let m: IdMap<u32> = IdMap::new();
        assert!(m.is_empty());
        assert!(!m.contains(3));
        assert!(m.with_removed(3).is_none());
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut m: IdMap<u64> = IdMap::new();
        for k in (0..500u64).map(|i| (i * 37) % 1000) {
            m = m.with_inserted(k, k * 2).unwrap();
        }
        assert_eq!(m.len(), 500);
        for k in (0..500u64).map(|i| (i * 37) % 1000) {
            assert_eq!(m.get(k), Some(&(k * 2)), "key {k}");
        }
        assert!(m.with_inserted(37, 0).is_none(), "duplicate rejected");
        for k in (0..500u64).map(|i| (i * 37) % 1000).step_by(3) {
            let (next, v) = m.with_removed(k).unwrap();
            assert_eq!(v, k * 2);
            m = next;
            assert!(!m.contains(k));
        }
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let pairs: Vec<(u64, u64)> = (0..300).map(|k| (k, k + 7)).collect();
        let bulk = IdMap::from_sorted(pairs.clone());
        let mut incr: IdMap<u64> = IdMap::new();
        for &(k, v) in &pairs {
            incr = incr.with_inserted(k, v).unwrap();
        }
        assert_eq!(bulk.len(), incr.len());
        for &(k, v) in &pairs {
            assert_eq!(bulk.get(k), Some(&v));
            assert_eq!(incr.get(k), Some(&v));
        }
        assert!(bulk.get(300).is_none());
    }

    #[test]
    fn old_snapshots_survive_updates() {
        let v0 = IdMap::from_sorted((0..100).map(|k| (k, k)).collect());
        let v1 = v0.with_inserted(1000, 1).unwrap();
        let (v2, _) = v1.with_removed(50).unwrap();
        assert_eq!(v0.len(), 100);
        assert!(v0.contains(50));
        assert!(!v0.contains(1000));
        assert!(v1.contains(1000));
        assert!(v1.contains(50));
        assert!(!v2.contains(50));
    }

    #[test]
    fn remove_everything_leaves_empty() {
        let mut m = IdMap::from_sorted((0..64).map(|k| (k, ())).collect());
        for k in 0..64 {
            let (next, ()) = m.with_removed(k).unwrap();
            m = next;
        }
        assert!(m.is_empty());
        assert!(m.with_inserted(5, ()).is_some());
    }
}
