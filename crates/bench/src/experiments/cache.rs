//! Verification-cache experiment — beyond the paper: throughput of the
//! batch executor on a skewed, repeated-query workload with the
//! per-thread [`VerifyCache`](cpnn_core::VerifyCache) off and on, across
//! hot-spot counts (which set the achievable hit rate) and one
//! quantization row.
//!
//! The workload is Zipf-skewed repeat traffic
//! ([`cpnn_datagen::zipfian_query_points`]): a handful of hot query
//! points dominate the stream, exactly the regime the ROADMAP's caching
//! item targets. With the cache on, repeats skip filter + init (distance
//! distributions and the subregion table come from the LRU); verify and
//! refine always run, so answers are bit-identical — asserted per row
//! against the uncached run. The quantization row jitters every point
//! around its hot spot and snaps with `quantum` wider than the jitter,
//! showing nearby-point traffic collapsing onto shared entries.

use cpnn_core::{BatchExecutor, CacheConfig, CpnnQuery, Strategy};
use cpnn_datagen::zipfian_query_points;

use crate::experiments::{longbeach_db, DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Hot-spot counts to sweep (fewer hot spots → higher hit rate).
const HOT_SPOT_SWEEP: [usize; 3] = [8, 64, 512];
/// Zipf exponent of the rank-frequency law.
const ZIPF_EXPONENT: f64 = 1.1;
/// Cache capacity under test (entries per worker thread).
const CAPACITY: usize = 1_024;

/// One measured row: best-of-2 throughput for a given cache config, plus
/// the hit/miss counters of the measured run.
fn measure(
    db: &cpnn_core::UncertainDb,
    queries: &[f64],
    threads: usize,
    cache: CacheConfig,
) -> (f64, u64, u64, Vec<Vec<cpnn_core::ObjectId>>) {
    let batch: Vec<CpnnQuery> = queries
        .iter()
        .map(|&q| CpnnQuery::new(q, DEFAULT_P, DEFAULT_DELTA))
        .collect();
    let mut cfg = db.config().pipeline();
    cfg.cache = cache;
    let mut best = 0.0f64;
    let mut hits = 0;
    let mut misses = 0;
    let mut answers = Vec::new();
    for _ in 0..2 {
        let out = BatchExecutor::new(threads).run_cpnn(db, &batch, Strategy::Verified, &cfg);
        assert_eq!(out.summary.errors, 0, "benchmark queries are valid");
        if out.summary.throughput() >= best {
            best = out.summary.throughput();
        }
        hits = out.summary.cache_hits;
        misses = out.summary.cache_misses;
        answers = out
            .results
            .iter()
            .map(|r| r.as_ref().expect("valid query").answers.clone())
            .collect();
    }
    (best, hits, misses, answers)
}

/// Run the experiment. Columns: hot-spot count, quantum, uncached and
/// cached throughput, speedup, and the measured hit rate.
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let n_queries = if quick { 2_000 } else { 10_000 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Cache",
        &format!(
            "VerifyCache on Zipf({ZIPF_EXPONENT}) repeat traffic: cached vs. uncached \
             throughput across hot-spot counts, {n_queries} queries"
        ),
        &[
            "hot spots",
            "quantum",
            "uncached q/s",
            "cached q/s",
            "speedup",
            "hit rate",
            "hits",
            "misses",
        ],
    );
    table.note(format!(
        "|T| = {}, P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, {threads} thread(s), \
         cache capacity {CAPACITY}/worker, best-of-2; answers asserted identical cached \
         vs. uncached on every row (quantum-0 rows) / vs. the snapped stream (quantum row)",
        db.len()
    ));
    for hot_spots in HOT_SPOT_SWEEP {
        let queries = zipfian_query_points(
            0xCACE,
            n_queries,
            0.0,
            10_000.0,
            hot_spots,
            ZIPF_EXPONENT,
            0.0,
        );
        let (off_qps, _, _, off_answers) = measure(&db, &queries, threads, CacheConfig::disabled());
        let (on_qps, hits, misses, on_answers) =
            measure(&db, &queries, threads, CacheConfig::new(CAPACITY, 0.0));
        assert_eq!(
            off_answers, on_answers,
            "cached answers must equal uncached at quantum 0"
        );
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        table.push_row(vec![
            hot_spots.to_string(),
            "0".into(),
            format!("{off_qps:.0}"),
            format!("{on_qps:.0}"),
            format!("{:.2}x", on_qps / off_qps.max(1e-9)),
            format!("{:.1}%", 100.0 * rate),
            hits.to_string(),
            misses.to_string(),
        ]);
    }
    // Quantization row: jittered traffic (±2 units around each hot spot)
    // with a 10-unit grid — nearby points share entries, and every cached
    // answer must equal uncached evaluation of the *snapped* stream.
    let quantum = 10.0;
    let jittered = zipfian_query_points(0xCACE, n_queries, 0.0, 10_000.0, 64, ZIPF_EXPONENT, 2.0);
    let snapped: Vec<f64> = jittered
        .iter()
        .map(|&q| cpnn_core::cache::quantize_coord(q, quantum))
        .collect();
    let (off_qps, _, _, _) = measure(&db, &jittered, threads, CacheConfig::disabled());
    let (_, _, _, snapped_answers) = measure(&db, &snapped, threads, CacheConfig::disabled());
    let (on_qps, hits, misses, on_answers) =
        measure(&db, &jittered, threads, CacheConfig::new(CAPACITY, quantum));
    assert_eq!(
        snapped_answers, on_answers,
        "quantized answers must equal uncached evaluation of the snapped stream"
    );
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    table.push_row(vec![
        "64±2".into(),
        format!("{quantum}"),
        format!("{off_qps:.0}"),
        format!("{on_qps:.0}"),
        format!("{:.2}x", on_qps / off_qps.max(1e-9)),
        format!("{:.1}%", 100.0 * rate),
        hits.to_string(),
        misses.to_string(),
    ]);
    table
}
