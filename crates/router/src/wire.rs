//! The shard-serving wire protocol: length-prefixed, FNV-checksummed
//! frames in the `storage.rs` record idiom, carrying a small set of
//! tagged messages.
//!
//! ## Frame layout
//!
//! ```text
//! | len: u32 LE | payload (len bytes) | fnv1a(payload): u64 LE |
//! ```
//!
//! `len` is capped at [`MAX_FRAME`]; the payload's first byte is the
//! message tag. The error taxonomy mirrors the write-ahead journal's
//! torn-vs-corrupt split: a clean EOF at a frame boundary is end of
//! stream (`Ok(None)`), an EOF *inside* a frame is [`WireError::Torn`]
//! (the peer died mid-send), and everything else — bad checksum,
//! oversized prefix, unknown tag, undecodable body, trailing garbage —
//! is a typed [`WireError`], never a panic (fixture-tested in
//! `tests/wire_fixtures.rs`).
//!
//! ## Bit-exact candidate transport
//!
//! `Candidates` replies ship each surviving object's distance histogram
//! as its **raw parts** (edges, densities, cdf knots, every `f64` bit
//! preserved) and the router reassembles them through
//! [`HistogramPdf::from_raw_parts`] — validation without
//! renormalization — so a routed candidate set compares equal to the one
//! an in-process [`ShardedDb`](cpnn_core::ShardedDb) builds. That is the
//! keystone of the routed ≡ single-process property.

use std::fmt;
use std::io::{self, Read, Write};

use cpnn_core::persist::{fnv1a, SnapshotReader, SnapshotWriter};
use cpnn_core::shard::Extent;
use cpnn_core::{DistanceDistribution, ObjectId, ServerStats};
use cpnn_pdf::HistogramPdf;

use crate::RoutedModel;

/// Connection magic, sent inside every `Hello` request.
pub const WIRE_MAGIC: [u8; 4] = *b"CPRT";
/// Protocol version, checked at `Hello`.
pub const WIRE_VERSION: u32 = 1;
/// Maximum frame payload length (16 MiB) — anything larger is rejected
/// as [`WireError::Oversized`] before any allocation happens.
pub const MAX_FRAME: u32 = 1 << 24;

/// Request tags (payload byte 0).
pub mod tag {
    /// Handshake: magic + protocol version + spatial dimension.
    pub const HELLO: u8 = 0x01;
    /// Filter phase for one query point.
    pub const FILTER: u8 = 0x02;
    /// One coalesced update burst.
    pub const UPDATE: u8 = 0x03;
    /// Server counters.
    pub const STATS: u8 = 0x04;
    /// All stored object ids (router id-map seeding / resync).
    pub const IDS: u8 = 0x05;
    /// Reply: shard status after a handshake.
    pub const HELLO_OK: u8 = 0x11;
    /// Reply: filter survivors with their distance histograms.
    pub const CANDIDATES: u8 = 0x12;
    /// Reply: post-burst status plus per-op outcomes.
    pub const UPDATE_OK: u8 = 0x13;
    /// Reply: counters.
    pub const STATS_OK: u8 = 0x14;
    /// Reply: stored object ids.
    pub const IDS_OK: u8 = 0x15;
    /// Reply: a typed remote error (never a closed socket mid-frame).
    pub const ERROR: u8 = 0x1F;
}

const MAX_ITEMS: u32 = 1 << 20;
const MAX_BARS: u32 = 1 << 20;
const MAX_STR: u32 = 4096;
const MAX_IDS: u32 = 1 << 26;
/// Pre-allocation clamp: counts are validated against the caps above,
/// but allocation still grows incrementally so a lying length prefix
/// cannot balloon memory before the decode fails.
const PREALLOC: usize = 1 << 16;

/// Wire-level failures, split along the journal's torn-vs-corrupt
/// taxonomy.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed (includes read/write timeouts).
    Io(io::Error),
    /// The stream ended inside a frame — the peer died mid-send.
    Torn(&'static str),
    /// A structurally invalid frame or message: checksum mismatch,
    /// unknown tag, short body, trailing bytes, invalid histogram parts.
    Corrupt(String),
    /// A length prefix beyond [`MAX_FRAME`] (or zero).
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket i/o failed: {e}"),
            Self::Torn(what) => write!(f, "stream torn mid-frame ({what})"),
            Self::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            Self::Oversized { len, max } => {
                write!(f, "frame length {len} outside (0, {max}]")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl WireError {
    /// Whether the connection is worth redialing: transport errors and
    /// torn streams are (the peer or network died); corrupt frames are
    /// not a transient condition but desynchronize the stream, so the
    /// caller should drop the connection either way.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, Self::Io(_) | Self::Torn(_))
    }
}

/// Write one frame: length prefix, payload, checksum trailer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME as usize,
        "frame payloads are bounded by construction"
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    w.flush()
}

/// Read one frame's payload. `Ok(None)` is a clean EOF at a frame
/// boundary; an EOF anywhere inside a frame is [`WireError::Torn`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Torn("length prefix")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_frame(r, &mut payload, "payload")?;
    let mut crc = [0u8; 8];
    read_exact_frame(r, &mut crc, "checksum trailer")?;
    if u64::from_le_bytes(crc) != fnv1a(&payload) {
        return Err(WireError::Corrupt("checksum mismatch".into()));
    }
    Ok(Some(payload))
}

fn read_exact_frame<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Torn(what)
        } else {
            WireError::Io(e)
        }
    })
}

/// One element of an update burst — the wire twin of the server's
/// `queue_insert` / `queue_remove` lane.
pub enum UpdateOp<M: RoutedModel> {
    /// Insert one object.
    Insert(M::Object),
    /// Remove one object by id.
    Remove(ObjectId),
}

impl<M: RoutedModel> fmt::Debug for UpdateOp<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Insert(object) => write!(f, "Insert({:?})", M::object_id(object)),
            Self::Remove(id) => write!(f, "Remove({id:?})"),
        }
    }
}

/// A request frame, router → shard.
pub enum Request<M: RoutedModel> {
    /// Handshake: verify magic, protocol version, and spatial dimension;
    /// the reply carries the shard's status summary.
    Hello,
    /// Run the filter phase for the query at `coords` with candidate
    /// budget `k`; the reply ships the survivors' distance histograms.
    Filter {
        /// Wire coordinates of the query point (length `M::DIM`).
        coords: Vec<f64>,
        /// Candidate budget (`k` of the k-NN query).
        k: u64,
    },
    /// Apply one coalesced burst: queue every op, publish once.
    Update(Vec<UpdateOp<M>>),
    /// Report counters.
    Stats,
    /// Report every stored object id (id-map seeding / post-crash
    /// resync).
    Ids,
}

impl<M: RoutedModel> fmt::Debug for Request<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hello => write!(f, "Hello"),
            Self::Filter { coords, k } => write!(f, "Filter {{ coords: {coords:?}, k: {k} }}"),
            Self::Update(ops) => write!(f, "Update({ops:?})"),
            Self::Stats => write!(f, "Stats"),
            Self::Ids => write!(f, "Ids"),
        }
    }
}

/// A shard's status summary: snapshot version, object count, and exact
/// extent — everything [`select_overlapping`](cpnn_core::shard::select_overlapping)
/// needs for horizon-pruned fan-out.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// The shard server's current snapshot version.
    pub version: u64,
    /// Objects stored.
    pub objects: u64,
    /// Exact extent of the stored objects (`None` when empty).
    pub extent: Option<Extent>,
}

/// A shard process's counters: wire-level filter requests served plus
/// the hosted [`QueryServer`](cpnn_core::QueryServer)'s own counters.
#[derive(Debug, Clone)]
pub struct ShardProcessStats {
    /// Filter requests answered over the socket.
    pub filters: u64,
    /// The hosted server's counters (updates, WAL records, checkpoints…).
    pub server: ServerStats,
}

/// A response frame, shard → router.
#[derive(Debug)]
pub enum Response {
    /// Handshake accepted.
    Hello(ShardStatus),
    /// Filter survivors at the snapshot `version` that answered.
    Candidates {
        /// Snapshot version the filter ran against.
        version: u64,
        /// `(id, distance distribution)` per surviving object.
        items: Vec<(ObjectId, DistanceDistribution)>,
    },
    /// Burst applied (publish happened iff any op succeeded).
    Update {
        /// Post-burst status.
        status: ShardStatus,
        /// Per-op outcome, in burst order.
        outcomes: Vec<Result<(), String>>,
    },
    /// Counters.
    Stats(ShardProcessStats),
    /// Stored object ids.
    Ids(Vec<u64>),
    /// A typed remote failure (bad request, filter error, …). The
    /// connection stays framed; the peer may continue.
    Error(String),
}

fn writer() -> SnapshotWriter<Vec<u8>> {
    SnapshotWriter::new(Vec::new())
}

fn put_extent(w: &mut SnapshotWriter<Vec<u8>>, extent: &Option<Extent>) -> io::Result<()> {
    match extent {
        None => w.put_u8(0),
        Some(e) => {
            w.put_u8(1)?;
            w.put_u32(e.dims() as u32)?;
            for &v in &e.lo {
                w.put_f64(v)?;
            }
            for &v in &e.hi {
                w.put_f64(v)?;
            }
            Ok(())
        }
    }
}

fn put_status(w: &mut SnapshotWriter<Vec<u8>>, status: &ShardStatus) -> io::Result<()> {
    w.put_u64(status.version)?;
    w.put_u64(status.objects)?;
    put_extent(w, &status.extent)
}

fn put_str(w: &mut SnapshotWriter<Vec<u8>>, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    let take = bytes.len().min(MAX_STR as usize);
    // Truncate at a char boundary so the decode side never sees broken
    // UTF-8 (error strings only; data is never truncated).
    let mut end = take;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    w.put_u32(end as u32)?;
    w.put(&bytes[..end])
}

impl<M: RoutedModel> Request<M> {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = writer();
        let encode = |w: &mut SnapshotWriter<Vec<u8>>| -> io::Result<()> {
            match self {
                Self::Hello => {
                    w.put_u8(tag::HELLO)?;
                    w.put(&WIRE_MAGIC)?;
                    w.put_u32(WIRE_VERSION)?;
                    w.put_u32(M::DIM)
                }
                Self::Filter { coords, k } => {
                    w.put_u8(tag::FILTER)?;
                    w.put_u32(coords.len() as u32)?;
                    for &c in coords {
                        w.put_f64(c)?;
                    }
                    w.put_u64(*k)
                }
                Self::Update(ops) => {
                    w.put_u8(tag::UPDATE)?;
                    w.put_u32(ops.len() as u32)?;
                    for op in ops {
                        match op {
                            UpdateOp::Insert(object) => {
                                w.put_u8(0)?;
                                M::write_object(object, w)?;
                            }
                            UpdateOp::Remove(id) => {
                                w.put_u8(1)?;
                                w.put_u64(id.0)?;
                            }
                        }
                    }
                    Ok(())
                }
                Self::Stats => w.put_u8(tag::STATS),
                Self::Ids => w.put_u8(tag::IDS),
            }
        };
        encode(&mut w).expect("in-memory encode never fails");
        w.into_inner()
    }

    /// Decode a frame payload. Every failure is typed; unknown tags,
    /// short bodies, and trailing bytes are [`WireError::Corrupt`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = SnapshotReader::new(payload);
        let req = match take_u8(&mut r)? {
            tag::HELLO => {
                let magic: [u8; 4] = take_bytes(&mut r)?;
                if magic != WIRE_MAGIC {
                    return Err(WireError::Corrupt("bad hello magic".into()));
                }
                let version = take_u32(&mut r)?;
                if version != WIRE_VERSION {
                    return Err(WireError::Corrupt(format!(
                        "unsupported protocol version {version} (expected {WIRE_VERSION})"
                    )));
                }
                let dim = take_u32(&mut r)?;
                if dim != M::DIM {
                    return Err(WireError::Corrupt(format!(
                        "dimension mismatch: peer speaks {dim}-D, shard is {}-D",
                        M::DIM
                    )));
                }
                Self::Hello
            }
            tag::FILTER => {
                let n = take_count(&mut r, 16, "query coordinates")?;
                let coords = take_f64s(&mut r, n)?;
                let k = take_u64(&mut r)?;
                Self::Filter { coords, k }
            }
            tag::UPDATE => {
                let n = take_count(&mut r, MAX_ITEMS, "update ops")?;
                let mut ops = Vec::with_capacity(n.min(PREALLOC as u32) as usize);
                for _ in 0..n {
                    match take_u8(&mut r)? {
                        0 => {
                            let object = M::read_object(&mut r)
                                .map_err(|e| WireError::Corrupt(format!("bad object: {e}")))?;
                            ops.push(UpdateOp::Insert(object));
                        }
                        1 => ops.push(UpdateOp::Remove(ObjectId(take_u64(&mut r)?))),
                        k => return Err(WireError::Corrupt(format!("unknown update op kind {k}"))),
                    }
                }
                Self::Update(ops)
            }
            tag::STATS => Self::Stats,
            tag::IDS => Self::Ids,
            t => return Err(WireError::Corrupt(format!("unknown request tag {t:#04x}"))),
        };
        expect_consumed(r)?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = writer();
        let encode = |w: &mut SnapshotWriter<Vec<u8>>| -> io::Result<()> {
            match self {
                Self::Hello(status) => {
                    w.put_u8(tag::HELLO_OK)?;
                    put_status(w, status)
                }
                Self::Candidates { version, items } => {
                    w.put_u8(tag::CANDIDATES)?;
                    w.put_u64(*version)?;
                    w.put_u32(items.len() as u32)?;
                    for (id, dist) in items {
                        w.put_u64(id.0)?;
                        let hist = dist.histogram();
                        w.put_u32(hist.bar_count() as u32)?;
                        for &e in hist.edges() {
                            w.put_f64(e)?;
                        }
                        for &d in hist.densities() {
                            w.put_f64(d)?;
                        }
                        for &c in hist.cdf_at_edges() {
                            w.put_f64(c)?;
                        }
                    }
                    Ok(())
                }
                Self::Update { status, outcomes } => {
                    w.put_u8(tag::UPDATE_OK)?;
                    put_status(w, status)?;
                    w.put_u32(outcomes.len() as u32)?;
                    for outcome in outcomes {
                        match outcome {
                            Ok(()) => w.put_u8(0)?,
                            Err(msg) => {
                                w.put_u8(1)?;
                                put_str(w, msg)?;
                            }
                        }
                    }
                    Ok(())
                }
                Self::Stats(stats) => {
                    w.put_u8(tag::STATS_OK)?;
                    w.put_u64(stats.filters)?;
                    let s = &stats.server;
                    for v in [
                        s.served,
                        s.updates,
                        s.coalesced_batches,
                        s.applied_updates,
                        s.cache_hits,
                        s.cache_misses,
                        s.shared_hits,
                        s.outcome_hits,
                        s.wal_records,
                        s.checkpoints,
                    ] {
                        w.put_u64(v)?;
                    }
                    Ok(())
                }
                Self::Ids(ids) => {
                    w.put_u8(tag::IDS_OK)?;
                    w.put_u32(ids.len() as u32)?;
                    for &id in ids {
                        w.put_u64(id)?;
                    }
                    Ok(())
                }
                Self::Error(msg) => {
                    w.put_u8(tag::ERROR)?;
                    put_str(w, msg)
                }
            }
        };
        encode(&mut w).expect("in-memory encode never fails");
        w.into_inner()
    }

    /// Decode a frame payload; the dual of [`encode`](Self::encode),
    /// with the same typed-error discipline as
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = SnapshotReader::new(payload);
        let resp = match take_u8(&mut r)? {
            tag::HELLO_OK => Self::Hello(take_status(&mut r)?),
            tag::CANDIDATES => {
                let version = take_u64(&mut r)?;
                let n = take_count(&mut r, MAX_ITEMS, "candidate items")?;
                let mut items = Vec::with_capacity(n.min(PREALLOC as u32) as usize);
                for _ in 0..n {
                    let id = ObjectId(take_u64(&mut r)?);
                    let bars = take_count(&mut r, MAX_BARS, "histogram bars")?;
                    let edges = take_f64s(&mut r, bars + 1)?;
                    let density = take_f64s(&mut r, bars)?;
                    let cdf = take_f64s(&mut r, bars + 1)?;
                    let hist = HistogramPdf::from_raw_parts(edges, density, cdf)
                        .map_err(|e| WireError::Corrupt(format!("bad distance histogram: {e}")))?;
                    items.push((id, DistanceDistribution::from_histogram(hist)));
                }
                Self::Candidates { version, items }
            }
            tag::UPDATE_OK => {
                let status = take_status(&mut r)?;
                let n = take_count(&mut r, MAX_ITEMS, "update outcomes")?;
                let mut outcomes = Vec::with_capacity(n.min(PREALLOC as u32) as usize);
                for _ in 0..n {
                    match take_u8(&mut r)? {
                        0 => outcomes.push(Ok(())),
                        1 => outcomes.push(Err(take_str(&mut r)?)),
                        k => {
                            return Err(WireError::Corrupt(format!("unknown outcome kind {k}")));
                        }
                    }
                }
                Self::Update { status, outcomes }
            }
            tag::STATS_OK => {
                let filters = take_u64(&mut r)?;
                let mut f = || take_u64(&mut r);
                let server = ServerStats {
                    served: f()?,
                    updates: f()?,
                    coalesced_batches: f()?,
                    applied_updates: f()?,
                    cache_hits: f()?,
                    cache_misses: f()?,
                    shared_hits: f()?,
                    outcome_hits: f()?,
                    wal_records: f()?,
                    checkpoints: f()?,
                };
                Self::Stats(ShardProcessStats { filters, server })
            }
            tag::IDS_OK => {
                let n = take_count(&mut r, MAX_IDS, "object ids")?;
                let mut ids = Vec::with_capacity(n.min(PREALLOC as u32) as usize);
                for _ in 0..n {
                    ids.push(take_u64(&mut r)?);
                }
                Self::Ids(ids)
            }
            tag::ERROR => Self::Error(take_str(&mut r)?),
            t => return Err(WireError::Corrupt(format!("unknown response tag {t:#04x}"))),
        };
        expect_consumed(r)?;
        Ok(resp)
    }
}

fn truncated(_: io::Error) -> WireError {
    WireError::Corrupt("truncated message body".into())
}

fn take_u8(r: &mut SnapshotReader<&[u8]>) -> Result<u8, WireError> {
    r.take_u8().map_err(truncated)
}

fn take_u32(r: &mut SnapshotReader<&[u8]>) -> Result<u32, WireError> {
    r.take_u32().map_err(truncated)
}

fn take_u64(r: &mut SnapshotReader<&[u8]>) -> Result<u64, WireError> {
    r.take_u64().map_err(truncated)
}

fn take_bytes<const N: usize>(r: &mut SnapshotReader<&[u8]>) -> Result<[u8; N], WireError> {
    r.take::<N>().map_err(truncated)
}

fn take_count(
    r: &mut SnapshotReader<&[u8]>,
    max: u32,
    what: &'static str,
) -> Result<u32, WireError> {
    let n = take_u32(r)?;
    if n > max {
        return Err(WireError::Corrupt(format!(
            "implausible {what} count {n} (cap {max})"
        )));
    }
    Ok(n)
}

fn take_f64s(r: &mut SnapshotReader<&[u8]>, n: u32) -> Result<Vec<f64>, WireError> {
    let mut out = Vec::with_capacity((n as usize).min(PREALLOC));
    for _ in 0..n {
        out.push(r.take_f64().map_err(truncated)?);
    }
    Ok(out)
}

fn take_str(r: &mut SnapshotReader<&[u8]>) -> Result<String, WireError> {
    let n = take_count(r, MAX_STR, "string bytes")?;
    let mut bytes = vec![0u8; n as usize];
    for b in bytes.iter_mut() {
        *b = r.take_u8().map_err(truncated)?;
    }
    String::from_utf8(bytes).map_err(|_| WireError::Corrupt("non-UTF-8 string".into()))
}

fn take_extent(r: &mut SnapshotReader<&[u8]>) -> Result<Option<Extent>, WireError> {
    match take_u8(r)? {
        0 => Ok(None),
        1 => {
            let dims = take_count(r, 16, "extent dimensions")?;
            if dims == 0 {
                return Err(WireError::Corrupt("zero-dimensional extent".into()));
            }
            let lo = take_f64s(r, dims)?;
            let hi = take_f64s(r, dims)?;
            if lo
                .iter()
                .zip(&hi)
                .any(|(a, b)| !a.is_finite() || !b.is_finite() || a > b)
            {
                return Err(WireError::Corrupt("inverted or non-finite extent".into()));
            }
            Ok(Some(Extent::new(lo, hi)))
        }
        k => Err(WireError::Corrupt(format!("unknown extent marker {k}"))),
    }
}

fn take_status(r: &mut SnapshotReader<&[u8]>) -> Result<ShardStatus, WireError> {
    Ok(ShardStatus {
        version: take_u64(r)?,
        objects: take_u64(r)?,
        extent: take_extent(r)?,
    })
}

fn expect_consumed(r: SnapshotReader<&[u8]>) -> Result<(), WireError> {
    let mut rest = r.into_inner();
    let mut probe = [0u8; 1];
    match rest.read(&mut probe) {
        Ok(0) => Ok(()),
        _ => Err(WireError::Corrupt("trailing bytes after message".into())),
    }
}
