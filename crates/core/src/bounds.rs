//! Probability bounds `[p.l, p.u]` (paper Sec. III-A).

/// A closed interval `[lo, hi] ⊆ [0, 1]` known to contain an object's
/// qualification probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbBound {
    lo: f64,
    hi: f64,
}

impl ProbBound {
    /// The vacuous bound `[0, 1]` every candidate starts with.
    pub fn vacuous() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// An exact (collapsed) bound `[p, p]`.
    pub fn exact(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        Self { lo: p, hi: p }
    }

    /// Construct from raw endpoints, clamping to `[0, 1]` and repairing
    /// inversions smaller than numerical noise.
    pub fn new(lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        if lo > hi {
            debug_assert!(
                lo - hi < 1e-6,
                "probability bound badly inverted: [{lo}, {hi}]"
            );
            let mid = 0.5 * (lo + hi);
            Self { lo: mid, hi: mid }
        } else {
            Self { lo, hi }
        }
    }

    /// Lower probability bound `p.l`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper probability bound `p.u`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bound width `p.u − p.l` (the estimation error of Sec. III-A).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Tighten the lower bound if `lo` improves it (the framework "only
    /// adjusts the probability bound … if this new bound is smaller than
    /// the one previously computed").
    pub fn raise_lo(&mut self, lo: f64) {
        if lo > self.lo {
            *self = Self::new(lo, self.hi.max(lo.min(1.0)));
        }
    }

    /// Tighten the upper bound if `hi` improves it.
    pub fn lower_hi(&mut self, hi: f64) {
        if hi < self.hi {
            *self = Self::new(self.lo.min(hi.max(0.0)), hi);
        }
    }

    /// Does the bound contain `p` (with slack for numerical noise)?
    pub fn contains(&self, p: f64, eps: f64) -> bool {
        p >= self.lo - eps && p <= self.hi + eps
    }
}

impl std::fmt::Display for ProbBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacuous_and_exact() {
        let v = ProbBound::vacuous();
        assert_eq!((v.lo(), v.hi()), (0.0, 1.0));
        let e = ProbBound::exact(0.3);
        assert_eq!((e.lo(), e.hi()), (0.3, 0.3));
        assert_eq!(e.width(), 0.0);
    }

    #[test]
    fn new_clamps_to_unit_interval() {
        let b = ProbBound::new(-0.5, 1.5);
        assert_eq!((b.lo(), b.hi()), (0.0, 1.0));
    }

    #[test]
    fn tightening_is_monotone() {
        let mut b = ProbBound::vacuous();
        b.raise_lo(0.2);
        b.lower_hi(0.8);
        assert_eq!((b.lo(), b.hi()), (0.2, 0.8));
        // Worse bounds are ignored.
        b.raise_lo(0.1);
        b.lower_hi(0.9);
        assert_eq!((b.lo(), b.hi()), (0.2, 0.8));
        // Better bounds apply.
        b.raise_lo(0.5);
        assert_eq!((b.lo(), b.hi()), (0.5, 0.8));
    }

    #[test]
    fn tiny_inversions_are_repaired() {
        let b = ProbBound::new(0.5 + 1e-12, 0.5);
        assert!(b.lo() <= b.hi());
        assert!((b.lo() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn contains_with_slack() {
        let b = ProbBound::new(0.2, 0.4);
        assert!(b.contains(0.3, 0.0));
        assert!(b.contains(0.2, 0.0));
        assert!(!b.contains(0.41, 1e-6));
        assert!(b.contains(0.400001, 1e-5));
    }
}
