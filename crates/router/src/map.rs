//! The shard map: the router's authoritative picture of the fleet — the
//! partition axis, the slab boundaries, and where each shard listens.
//!
//! Persisted as a tiny `CPSM` file in the snapshot idiom (`cpnn
//! shard-split` writes it next to the per-shard data directories; `cpnn
//! route` loads it). The axis and boundaries are the *same* values a
//! single-process [`ShardedDb`](cpnn_core::ShardedDb) would carry, which
//! is what lets the router reuse
//! [`slab_of`](cpnn_core::shard::slab_of) for update routing and claim
//! equivalence with in-process placement.
//!
//! ```text
//! magic "CPSM" | format version u32 (= 1) | axis u32
//! | boundary count u32 | boundaries [f64]
//! | shard count u32 | per shard: kind u8 (0 unix, 1 tcp)
//!                   | addr byte length u32 | addr bytes (UTF-8)
//! | FNV-1a trailer u64
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use cpnn_core::persist::{SnapshotError, SnapshotReader, SnapshotResult, SnapshotWriter};

use crate::net::ShardAddr;

const MAGIC: &[u8; 4] = b"CPSM";
const VERSION: u32 = 1;

/// Partition axis + slab boundaries + shard addresses. `bounds` has
/// `addrs.len() + 1` ascending entries; shard `i` owns slab
/// `[bounds[i], bounds[i + 1])` along `axis` (outer slabs unbounded in
/// practice — inserts clamp, exactly as
/// [`slab_of`](cpnn_core::shard::slab_of) does in-process).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    /// The partition axis (0 for 1-D; widest domain axis for 2-D).
    pub axis: usize,
    /// `addrs.len() + 1` ascending slab boundaries along `axis`.
    pub bounds: Vec<f64>,
    /// Where each shard listens, in slab order.
    pub addrs: Vec<ShardAddr>,
}

impl ShardMap {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.addrs.len()
    }

    /// Structural validity: at least one shard, one more boundary than
    /// shards, boundaries finite and non-decreasing (quantile balancing
    /// can produce duplicate boundaries — empty slabs — exactly as
    /// [`ShardedDb::from_parts`](cpnn_core::ShardedDb::from_parts)
    /// accepts).
    pub fn validate(&self) -> SnapshotResult<()> {
        let ok = !self.addrs.is_empty()
            && self.bounds.len() == self.addrs.len() + 1
            && self.bounds.iter().all(|b| b.is_finite())
            && self.bounds.windows(2).all(|w| w[0] <= w[1]);
        if ok {
            Ok(())
        } else {
            Err(SnapshotError::BadHeader)
        }
    }

    /// Encode into `sink` (snapshot idiom: hashed body + FNV trailer).
    pub fn write_to<W: Write>(&self, sink: W) -> SnapshotResult<()> {
        self.validate()?;
        let mut w = SnapshotWriter::new(sink);
        w.put(MAGIC)?;
        w.put_u32(VERSION)?;
        w.put_u32(self.axis as u32)?;
        w.put_u32(self.bounds.len() as u32)?;
        for &b in &self.bounds {
            w.put_f64(b)?;
        }
        w.put_u32(self.addrs.len() as u32)?;
        for addr in &self.addrs {
            let (kind, text) = match addr {
                ShardAddr::Unix(p) => (0u8, p.display().to_string()),
                ShardAddr::Tcp(a) => (1u8, a.clone()),
            };
            w.put_u8(kind)?;
            let bytes = text.as_bytes();
            w.put_u32(bytes.len() as u32)?;
            w.put(bytes)?;
        }
        let mut sink = w.finish()?;
        sink.flush()?;
        Ok(())
    }

    /// Decode from `source`; the dual of [`write_to`](Self::write_to).
    pub fn read_from<R: Read>(source: R) -> SnapshotResult<Self> {
        let mut r = SnapshotReader::new(source);
        if &r.take::<4>()? != MAGIC {
            return Err(SnapshotError::BadHeader);
        }
        let version = r.take_u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let axis = r.take_u32()? as usize;
        let nb = r.take_u32()?;
        if !(2..=65_536).contains(&nb) {
            return Err(SnapshotError::BadHeader);
        }
        let mut bounds = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            bounds.push(r.take_f64()?);
        }
        let na = r.take_u32()?;
        if na + 1 != nb {
            return Err(SnapshotError::BadHeader);
        }
        let mut addrs = Vec::with_capacity(na as usize);
        for _ in 0..na {
            let kind = r.take_u8()?;
            let len = r.take_u32()?;
            if len > 4096 {
                return Err(SnapshotError::BadHeader);
            }
            let mut bytes = vec![0u8; len as usize];
            for b in bytes.iter_mut() {
                *b = r.take_u8()?;
            }
            let text = String::from_utf8(bytes).map_err(|_| SnapshotError::BadHeader)?;
            addrs.push(match kind {
                0 => ShardAddr::Unix(text.into()),
                1 => ShardAddr::Tcp(text),
                _ => return Err(SnapshotError::BadHeader),
            });
        }
        r.verify_trailer()?;
        let map = Self {
            axis,
            bounds,
            addrs,
        };
        map.validate()?;
        Ok(map)
    }

    /// Write to a file (buffered; creates or truncates).
    pub fn write_to_path(&self, path: &Path) -> SnapshotResult<()> {
        self.write_to(BufWriter::new(File::create(path)?))
    }

    /// Read from a file (buffered).
    pub fn read_from_path(path: &Path) -> SnapshotResult<Self> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}
