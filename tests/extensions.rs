//! Integration tests for the beyond-the-paper features on generated
//! workloads: extended verifier chain, persistence, batch execution, k-NN
//! and range queries.

use cpnn::core::persist::{load_snapshot, save_snapshot};
use cpnn::core::{CpnnQuery, EngineConfig, Strategy, UncertainDb};
use cpnn::datagen::{longbeach::longbeach_with, query_points, LongBeachConfig};

fn dataset(seed: u64, count: usize) -> Vec<cpnn::core::UncertainObject> {
    longbeach_with(
        seed,
        LongBeachConfig {
            count,
            ..LongBeachConfig::default()
        },
    )
}

#[test]
fn extended_chain_answers_match_and_never_add_refinement() {
    let data = dataset(41, 4_000);
    let paper = UncertainDb::build(data.clone()).unwrap();
    let extended = UncertainDb::with_config(
        data,
        EngineConfig {
            extended_verifiers: true,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut paper_integrations = 0usize;
    let mut extended_integrations = 0usize;
    for q in query_points(42, 12) {
        for p in [0.05, 0.1, 0.3] {
            let query = CpnnQuery::new(q, p, 0.01);
            let a = paper.cpnn(&query, Strategy::Verified).unwrap();
            let b = extended.cpnn(&query, Strategy::Verified).unwrap();
            assert_eq!(a.answers, b.answers, "q = {q}, P = {p}");
            paper_integrations += a.stats.integrations;
            extended_integrations += b.stats.integrations;
        }
    }
    assert!(
        extended_integrations <= paper_integrations,
        "FL-SR must not add refinement work: {extended_integrations} vs {paper_integrations}"
    );
}

#[test]
fn snapshot_round_trip_on_generated_workload() {
    let db = UncertainDb::build(dataset(43, 2_500)).unwrap();
    let mut buf = Vec::new();
    save_snapshot(&db, &mut buf).unwrap();
    let loaded = load_snapshot(buf.as_slice()).unwrap();
    assert_eq!(loaded.len(), db.len());
    for q in query_points(44, 6) {
        let query = CpnnQuery::new(q, 0.3, 0.01);
        let a = db.cpnn(&query, Strategy::Verified).unwrap();
        let b = loaded.cpnn(&query, Strategy::Verified).unwrap();
        assert_eq!(a.answers, b.answers, "q = {q}");
    }
}

#[test]
fn parallel_batch_equals_sequential_on_workload() {
    let db = UncertainDb::build(dataset(45, 3_000)).unwrap();
    let queries: Vec<CpnnQuery> = query_points(46, 24)
        .into_iter()
        .map(|q| CpnnQuery::new(q, 0.3, 0.01))
        .collect();
    let seq = db.cpnn_batch(&queries, Strategy::Verified, 1);
    let par = db.cpnn_batch(&queries, Strategy::Verified, 8);
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.as_ref().unwrap().answers, p.as_ref().unwrap().answers);
    }
}

#[test]
fn knn_on_workload_is_consistent_across_k() {
    let db = UncertainDb::build(dataset(47, 2_000)).unwrap();
    let q = 5_000.0;
    let p1 = db.pknn(q, 1).unwrap();
    let p3 = db.pknn(q, 3).unwrap();
    // k = 3 probabilities sum to ~3 and dominate the k = 1 values of the
    // same objects.
    let total: f64 = p3.probabilities.iter().map(|(_, p)| p).sum();
    assert!((total - 3.0).abs() < 1e-4, "sum = {total}");
    for (id, p) in &p1.probabilities {
        let p3v = p3
            .probabilities
            .iter()
            .find(|(i, _)| i == id)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        assert!(p3v >= p - 1e-6, "object {id}: k3 {p3v} < k1 {p}");
    }
    // Constrained variant agrees with thresholding.
    let res = db.cknn(q, 3, 0.5, 0.0).unwrap();
    let want: Vec<_> = {
        let mut v: Vec<_> = p3
            .probabilities
            .iter()
            .filter(|(_, p)| *p >= 0.5)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(res.answers, want);
}

#[test]
fn range_query_on_workload_matches_scan() {
    let db = UncertainDb::build(dataset(48, 2_000)).unwrap();
    let (lo, hi) = (4_000.0, 4_050.0);
    let res = db.range_query(lo, hi, 0.4).unwrap();
    // Brute-force reference.
    use cpnn::pdf::Pdf as _;
    let mut want: Vec<(cpnn::core::ObjectId, f64)> = db
        .objects()
        .iter()
        .map(|o| (o.id(), o.pdf().mass_between(lo, hi)))
        .filter(|(_, p)| *p >= 0.4)
        .collect();
    want.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    assert_eq!(res.len(), want.len());
    for (got, want) in res.iter().zip(&want) {
        assert_eq!(got.id, want.0);
        assert!((got.probability - want.1).abs() < 1e-12);
    }
}
