//! The Far-endpoint Lower-Subregion (FL-SR) verifier — a lower-bound
//! verifier *beyond the paper*, obtained by specializing the k-NN
//! subregion bound of [`crate::knn`] to `k = 1`.
//!
//! Given `R_i ∈ S_j`, if every other object lies at distance ≥ `e_{j+1}`
//! then `X_i` is certainly the nearest neighbor, so
//!
//! ```text
//! q_ij.l' = Π_{m≠i} (1 − D_m(e_{j+1}))
//! ```
//!
//! is a valid lower bound — *without* the `1/c_j` dilution of L-SR
//! (Lemma 2). Neither bound dominates the other:
//!
//! * when competitors have substantial mass inside `S_j`, the product at
//!   the far end-point collapses and L-SR's symmetry argument wins;
//! * when many competitors merely *graze* `S_j` (tiny `s_mj`), L-SR still
//!   pays the full `1/c_j` factor while FL-SR's product stays near 1 — the
//!   unit test constructs a case where FL-SR is ~6× tighter.
//!
//! The framework takes the per-subregion maximum of both, which is always
//! at least as tight as the paper's chain. Cost: `O(|C|·M)`, same as L-SR.

use crate::classify::Label;
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{VerificationState, Verifier};

/// The FL-SR verifier. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct FarLowerSubregion;

impl Verifier for FarLowerSubregion {
    fn name(&self) -> &'static str {
        "FL-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let shared = state.kernel.try_shared_products(table);
        // Same adaptive gate as L-SR: stage whole columns only while at
        // least half the rows are still unlabeled (`fill_excl_scalar`'s
        // expression either way).
        let active = state
            .labels
            .iter()
            .filter(|&&lb| lb == Label::Unknown)
            .count();
        let stage = 2 * active >= n;
        for j in 0..l {
            if !shared {
                state.kernel.excl.recompute_survival(table.cdf_col(j + 1));
            }
            let mass = table.mass_col(j);
            if stage {
                // Stage the far-end-point product column through the vector
                // kernel, then apply with the scalar label/mass gates.
                state.kernel.stage_excl(n, shared, j + 1);
                for (i, &m) in mass.iter().enumerate() {
                    if state.labels[i] != Label::Unknown || m <= MASS_EPS {
                        continue;
                    }
                    let q = state.kernel.q_col[i];
                    let cell = &mut state.qij_lo[i * l + j];
                    if q > *cell {
                        *cell = q;
                    }
                }
            } else {
                let st = &mut *state;
                let (pref, suff) = st.kernel.col_products(shared, j + 1);
                for i in 0..n {
                    if st.labels[i] != Label::Unknown || mass[i] <= MASS_EPS {
                        continue;
                    }
                    let q = (pref[i] * suff[i + 1]).clamp(0.0, 1.0);
                    let cell = &mut st.qij_lo[i * l + j];
                    if q > *cell {
                        *cell = q;
                    }
                }
            }
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateSet;
    use crate::exact::exact_probabilities;
    use crate::object::{ObjectId, UncertainObject};
    use crate::testutil::{fig7_exact, fig7_scenario};
    use crate::verifiers::LowerSubregion;
    use cpnn_pdf::HistogramPdf;

    /// One object tightly bracketing q, five competitors with only 1% mass
    /// in the decisive subregion.
    fn grazing_scenario() -> CandidateSet {
        let mut objects = vec![UncertainObject::uniform(ObjectId(0), 0.0, 1.0).unwrap()];
        for i in 1..=5 {
            objects.push(UncertainObject::from_histogram(
                ObjectId(i),
                HistogramPdf::from_masses(vec![0.0, 1.0, 10.0], vec![0.01, 0.99]).unwrap(),
            ));
        }
        CandidateSet::build(&objects, 0.0, 0).unwrap()
    }

    #[test]
    fn flsr_bound_is_sound_on_fig7() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        FarLowerSubregion.apply(&table, &mut state);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(
                state.bounds[i].lo() <= p + 1e-9,
                "object {i}: {} > exact {p}",
                state.bounds[i].lo()
            );
        }
    }

    #[test]
    fn flsr_beats_lsr_on_grazing_competitors() {
        let cands = grazing_scenario();
        let table = SubregionTable::build(&cands);

        let mut lsr_state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut lsr_state);
        let mut flsr_state = VerificationState::new(&table);
        FarLowerSubregion.apply(&table, &mut flsr_state);

        // Candidate 0 is the bracketing object (near point 0 ties; find it
        // by id).
        let idx = cands
            .members()
            .iter()
            .position(|m| m.id == ObjectId(0))
            .unwrap();
        let lsr = lsr_state.bounds[idx].lo();
        let flsr = flsr_state.bounds[idx].lo();
        // L-SR pays 1/c_1 = 1/6; FL-SR keeps (0.99)^5 ≈ 0.951.
        assert!(lsr < 0.2, "L-SR = {lsr}");
        assert!(flsr > 0.9, "FL-SR = {flsr}");
        // And both remain below the exact value.
        let (exact, _) = exact_probabilities(&table);
        assert!(flsr <= exact[idx] + 1e-9);
    }

    #[test]
    fn lsr_beats_flsr_on_identical_objects() {
        // Two identical uniforms: exact = 1/2 each. FL-SR's product at the
        // far end-point is 0; L-SR gives exactly 1/2.
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 1.0, 3.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 1.0, 3.0).unwrap(),
        ];
        let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let mut lsr_state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut lsr_state);
        let mut flsr_state = VerificationState::new(&table);
        FarLowerSubregion.apply(&table, &mut flsr_state);
        assert!((lsr_state.bounds[0].lo() - 0.5).abs() < 1e-12);
        assert!(flsr_state.bounds[0].lo() < 1e-12);
    }

    #[test]
    fn combined_chain_takes_the_max_per_subregion() {
        let cands = grazing_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        LowerSubregion.apply(&table, &mut state);
        FarLowerSubregion.apply(&table, &mut state);
        let idx = cands
            .members()
            .iter()
            .position(|m| m.id == ObjectId(0))
            .unwrap();
        assert!(state.bounds[idx].lo() > 0.9);
        let (exact, _) = exact_probabilities(&table);
        for (i, p) in exact.iter().enumerate() {
            assert!(state.bounds[i].lo() <= p + 1e-9, "object {i}");
        }
    }
}
