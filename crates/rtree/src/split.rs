//! Guttman's quadratic node split.
//!
//! When a node overflows, pick the two entries that would waste the most
//! area if grouped together as seeds, then assign the rest greedily to the
//! group whose MBR grows least, forcing assignment when a group must absorb
//! all remaining entries to reach the minimum fill.

use crate::geometry::Rect;
use crate::node::Bounded;

/// Split `entries` (which has overflowed) into two groups, each with at
/// least `min_fill` entries.
pub fn quadratic_split<E: Bounded<D>, const D: usize>(
    mut entries: Vec<E>,
    min_fill: usize,
) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2);
    debug_assert!(2 * min_fill <= entries.len());

    let (seed_a, seed_b) = pick_seeds(&entries);
    // Remove the later index first so the earlier stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let e_hi = entries.swap_remove(hi);
    let e_lo = entries.swap_remove(lo);

    let mut rect_a = e_lo.bounds();
    let mut rect_b = e_hi.bounds();
    let mut group_a = vec![e_lo];
    let mut group_b = vec![e_hi];

    while let Some(idx) = pick_next(&entries, &rect_a, &rect_b) {
        let remaining = entries.len();
        // Forced assignment: a group must take everything left to reach fill.
        if group_a.len() + remaining == min_fill {
            for e in entries.drain(..) {
                rect_a = rect_a.union(&e.bounds());
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + remaining == min_fill {
            for e in entries.drain(..) {
                rect_b = rect_b.union(&e.bounds());
                group_b.push(e);
            }
            break;
        }

        let e = entries.swap_remove(idx);
        let r = e.bounds();
        let grow_a = rect_a.enlargement(&r);
        let grow_b = rect_b.enlargement(&r);
        let to_a = match grow_a.partial_cmp(&grow_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => match rect_a.area().partial_cmp(&rect_b.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            rect_a = rect_a.union(&r);
            group_a.push(e);
        } else {
            rect_b = rect_b.union(&r);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

/// PickSeeds: the pair wasting the most area when joined.
fn pick_seeds<E: Bounded<D>, const D: usize>(entries: &[E]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_waste = f64::NEG_INFINITY;
    for (i, ei) in entries.iter().enumerate() {
        let ri = ei.bounds();
        for (j, ej) in entries.iter().enumerate().skip(i + 1) {
            let rj = ej.bounds();
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > best_waste {
                best_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// PickNext: the entry with the strongest preference between the two groups.
fn pick_next<E: Bounded<D>, const D: usize>(
    entries: &[E],
    rect_a: &Rect<D>,
    rect_b: &Rect<D>,
) -> Option<usize> {
    if entries.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_pref = f64::NEG_INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let r = e.bounds();
        let pref = (rect_a.enlargement(&r) - rect_b.enlargement(&r)).abs();
        if pref > best_pref {
            best_pref = pref;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;

    fn entry(lo: f64, hi: f64, id: usize) -> LeafEntry<usize, 1> {
        LeafEntry {
            rect: Rect::interval(lo, hi),
            item: id,
        }
    }

    #[test]
    fn split_separates_distant_clusters() {
        // Two obvious clusters: around 0 and around 100.
        let entries = vec![
            entry(0.0, 1.0, 0),
            entry(0.5, 1.5, 1),
            entry(100.0, 101.0, 2),
            entry(100.5, 101.5, 3),
            entry(1.0, 2.0, 4),
            entry(101.0, 102.0, 5),
        ];
        let (a, b) = quadratic_split(entries, 2);
        let (left, right): (Vec<usize>, Vec<usize>) = {
            let ids = |g: &[LeafEntry<usize, 1>]| g.iter().map(|e| e.item).collect::<Vec<_>>();
            let (mut ia, mut ib) = (ids(&a), ids(&b));
            ia.sort_unstable();
            ib.sort_unstable();
            if ia.contains(&0) {
                (ia, ib)
            } else {
                (ib, ia)
            }
        };
        assert_eq!(left, vec![0, 1, 4]);
        assert_eq!(right, vec![2, 3, 5]);
    }

    #[test]
    fn split_respects_min_fill() {
        // Pathological: all entries identical; forced assignment must still
        // give each side at least min_fill.
        let entries: Vec<_> = (0..10).map(|i| entry(0.0, 1.0, i)).collect();
        let (a, b) = quadratic_split(entries, 4);
        assert!(a.len() >= 4, "group a has {}", a.len());
        assert!(b.len() >= 4, "group b has {}", b.len());
        assert_eq!(a.len() + b.len(), 10);
    }

    #[test]
    fn split_preserves_all_entries() {
        let entries: Vec<_> = (0..20)
            .map(|i| entry(i as f64 * 3.0, i as f64 * 3.0 + 2.0, i))
            .collect();
        let (a, b) = quadratic_split(entries, 8);
        let mut ids: Vec<usize> = a.iter().chain(b.iter()).map(|e| e.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }
}
