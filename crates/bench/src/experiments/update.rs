//! Update-path experiment — beyond the paper: per-update latency and
//! sustained mixed read/write throughput of the persistent (path-copying)
//! storage stack, against the rebuild baseline it replaced.
//!
//! Three write paths are compared at each database size and shard count:
//!
//! * **rebuild** — the pre-persistent behavior: materialize the owning
//!   shard's objects and bulk-build a fresh model around the change
//!   (O(|shard| log |shard|) per update);
//! * **path-copy** — [`cpnn_core::QueryServer::insert`]/`remove`: a
//!   copy-on-write snapshot swap that clones only the root-to-leaf index
//!   path and the id-map path (O(log n) — flat-ish as |T| grows);
//! * **coalesced** — a burst of [`queue_insert`]s published by one
//!   [`flush_writes`]: one version bump and one cache-invalidation pass
//!   amortized over the whole burst.
//!
//! The mixed column streams a read-heavy workload (15 queries : 1 queued
//! update, flushed every burst) through a running server — the sustained
//! regime the moving-object workloads of the related literature imply.
//!
//! [`queue_insert`]: cpnn_core::QueryServer::queue_insert
//! [`flush_writes`]: cpnn_core::QueryServer::flush_writes

use std::time::{Duration, Instant};

use cpnn_core::{
    ObjectId, QueryServer, QuerySpec, ShardableModel, ShardedDb, Strategy, UncertainDb,
    UncertainObject,
};
use cpnn_datagen::{longbeach::longbeach_with, query_points, LongBeachConfig};

use crate::experiments::{DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Size of one coalesced burst.
const BURST: usize = 16;

fn db_of(count: usize) -> Vec<UncertainObject> {
    let cfg = LongBeachConfig {
        count,
        ..LongBeachConfig::default()
    };
    longbeach_with(0xC0FFEE, cfg)
}

/// A fresh update object far from collision with generated ids.
fn update_object(i: usize) -> UncertainObject {
    let lo = (i as f64 * 37.3) % 9_000.0;
    UncertainObject::uniform(ObjectId(10_000_000 + i as u64), lo, lo + 5.0)
        .expect("valid update object")
}

/// The rebuild baseline: per update, materialize the owning shard's
/// objects and bulk-build a replacement shard (what `insert` did before
/// the index went persistent). Averaged over `reps` inserts.
fn rebuild_latency(db: &ShardedDb<UncertainDb>, reps: usize) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..reps {
        let object = update_object(i);
        // Identify the shard the object routes to — the cost we charge is
        // the rebuild itself, as the old code path would pay it.
        let shard = (0..db.num_shards())
            .min_by(|&a, &b| {
                let d = |s: usize| {
                    db.shard_model(s)
                        .model_extent()
                        .map(|e| e.mindist(&((object.region().0 + object.region().1) * 0.5)))
                        .unwrap_or(f64::INFINITY)
                };
                d(a).total_cmp(&d(b))
            })
            .unwrap_or(0);
        let start = Instant::now();
        let mut objects = db.shard_model(shard).shard_objects();
        objects.push(object);
        let rebuilt = UncertainDb::build_shard(objects, db.shard_model(shard).config())
            .expect("rebuild of a valid shard");
        total += start.elapsed();
        std::hint::black_box(&rebuilt);
    }
    total / reps.max(1) as u32
}

/// Mean per-update snapshot-swap latency through the persistent path
/// (`insert` + `remove` round-trips against a running server).
fn path_copy_latency(db: &ShardedDb<UncertainDb>, reps: usize) -> Duration {
    let server = QueryServer::start(db.clone(), 1, db.pipeline_config());
    let mut total = Duration::ZERO;
    for i in 0..reps {
        let object = update_object(i);
        let id = ObjectId(10_000_000 + i as u64);
        let start = Instant::now();
        server.insert(object).expect("fresh id inserts cleanly");
        server.remove(id).expect("update applies");
        total += start.elapsed();
    }
    server.shutdown();
    total / (2 * reps.max(1)) as u32
}

/// Mean per-op latency when updates coalesce: queue `BURST` inserts, one
/// flush, then the same for removes. One publish per burst.
fn coalesced_latency(db: &ShardedDb<UncertainDb>, rounds: usize) -> Duration {
    let server = QueryServer::start(db.clone(), 1, db.pipeline_config());
    let mut total = Duration::ZERO;
    let mut ops = 0usize;
    for round in 0..rounds {
        let base = round * BURST;
        let start = Instant::now();
        let tickets: Vec<_> = (0..BURST)
            .map(|i| server.queue_insert(update_object(base + i)))
            .collect();
        let report = server.flush_writes();
        total += start.elapsed();
        assert_eq!(report.applied, BURST, "burst applies cleanly");
        for t in tickets {
            assert!(t.wait().result.is_ok());
        }
        ops += BURST;
        let start = Instant::now();
        let tickets: Vec<_> = (0..BURST)
            .map(|i| server.queue_remove(ObjectId(10_000_000 + (base + i) as u64)))
            .collect();
        server.flush_writes();
        total += start.elapsed();
        for t in tickets {
            assert!(t.wait().result.is_ok());
        }
        ops += BURST;
    }
    let stats = server.shutdown();
    assert!(stats.coalesced_batches >= 2 * rounds as u64);
    total / ops.max(1) as u32
}

/// Post-workload R-tree quality counters, aggregated over every shard of
/// the server's final snapshot: total node count, and the average leaf
/// fill factor (leaf entries / leaf capacity).
fn index_quality(db: &ShardedDb<UncertainDb>) -> (usize, f64) {
    let mut stats = cpnn_core::TreeStats::default();
    let mut max_entries = 0;
    for s in 0..db.num_shards() {
        let model = db.shard_model(s);
        let t = model.index_stats();
        stats.nodes += t.nodes;
        stats.leaves += t.leaves;
        stats.leaf_entries += t.leaf_entries;
        max_entries = max_entries.max(model.index_params().max_entries);
    }
    (stats.nodes, stats.leaf_fill(max_entries))
}

/// Sustained mixed read/write throughput: a read-heavy stream (15 : 1)
/// with queued updates flushed per burst, through a multi-worker server.
/// Returns queries per second of wall-clock time, plus the post-workload
/// [`index_quality`] counters of the final snapshot (how healthy the
/// persistent R-tree is after the update churn).
fn mixed_throughput(
    db: &ShardedDb<UncertainDb>,
    n_queries: usize,
    threads: usize,
) -> (f64, usize, f64) {
    let server = QueryServer::start(db.clone(), threads, db.pipeline_config());
    let points = query_points(0x0DDC0DE, n_queries);
    let spec = QuerySpec::nn(DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n_queries);
    let mut updates = Vec::new();
    let mut upd = 0usize;
    for (i, &q) in points.iter().enumerate() {
        if i % 15 == 14 {
            if upd.is_multiple_of(2) {
                updates.push(server.queue_insert(update_object(upd / 2)));
            } else {
                updates.push(server.queue_remove(ObjectId(10_000_000 + (upd / 2) as u64)));
            }
            upd += 1;
            server.flush_writes();
        }
        tickets.push(server.submit(q, spec));
    }
    for t in tickets {
        t.wait().result.expect("benchmark queries are valid");
    }
    for t in updates {
        assert!(t.wait().result.is_ok());
    }
    let wall = start.elapsed();
    let (nodes, leaf_fill) = index_quality(&server.snapshot().model);
    server.shutdown();
    let qps = n_queries as f64 / wall.as_secs_f64().max(1e-9);
    (qps, nodes, leaf_fill)
}

/// Run the experiment. Rows sweep |T| × shard count; columns compare the
/// three write paths (mean µs per update, speedup of path-copy over
/// rebuild) plus the sustained mixed read/write throughput.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[1_000, 4_000, 16_000]
    } else {
        &[1_000, 8_000, 32_000]
    };
    let shard_sweep = [1usize, 8];
    let reps = if quick { 16 } else { 40 };
    let rounds = if quick { 2 } else { 5 };
    let n_queries = if quick { 600 } else { 3_000 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Update",
        "Per-update latency and mixed read/write throughput: full-rebuild \
         baseline vs. persistent path-copy vs. coalesced bursts",
        &[
            "|T|",
            "shards",
            "rebuild (µs)",
            "path-copy (µs)",
            "speedup",
            "coalesced (µs/op)",
            "mixed q/s",
            "rtree nodes",
            "leaf fill",
        ],
    );
    table.note(format!(
        "path-copy / coalesced are QueryServer snapshot swaps (persistent \
         R-tree + id map, O(log n) structural edits); rebuild is the \
         pre-persistent baseline (owning shard re-bulk-loaded per update); \
         coalesced bursts are {BURST} queued ops per flush (one publish \
         each); mixed streams {n_queries} VR queries (P = {DEFAULT_P}, \
         Δ = {DEFAULT_DELTA}) with 1 flushed update per 15 queries on \
         {threads} worker thread(s); {reps} reps per latency cell; \
         rtree nodes / leaf fill are post-workload counters of the final \
         snapshot's shard indexes (avg leaf entries over leaf capacity)"
    ));
    for &size in sizes {
        let objects = db_of(size);
        for shards in shard_sweep {
            let db = ShardedDb::<UncertainDb>::build(objects.clone(), Default::default(), shards)
                .expect("valid generated data");
            let rebuild = rebuild_latency(&db, reps);
            let path = path_copy_latency(&db, reps);
            let coalesced = coalesced_latency(&db, rounds);
            let (qps, nodes, leaf_fill) = mixed_throughput(&db, n_queries, threads);
            let rebuild_us = rebuild.as_secs_f64() * 1e6;
            let path_us = path.as_secs_f64() * 1e6;
            table.push_row(vec![
                size.to_string(),
                shards.to_string(),
                format!("{rebuild_us:.1}"),
                format!("{path_us:.1}"),
                format!("{:.1}x", rebuild_us / path_us.max(1e-9)),
                format!("{:.1}", coalesced.as_secs_f64() * 1e6),
                format!("{qps:.0}"),
                nodes.to_string(),
                format!("{leaf_fill:.3}"),
            ]);
        }
    }
    table
}
