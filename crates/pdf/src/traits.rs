//! The [`Pdf`] trait: the paper's attribute-uncertainty model.

use rand::RngCore;

use crate::integrate::{adaptive_simpson, gauss_legendre, GlOrder};

/// A probability density function bounded inside a closed uncertainty region.
///
/// This is the paper's uncertainty model (Sec. I): "the actual data value is
/// located within a closed region, called the uncertainty region. In this
/// region, a non-zero probability density function (pdf) of the value is
/// defined, where the integration of pdf inside the region is equal to one."
///
/// Implementations must guarantee:
/// * `support()` returns `(lo, hi)` with `lo < hi`;
/// * `density(x) == 0` for `x` outside `[lo, hi]` and `≥ 0` inside;
/// * `cdf` is monotone non-decreasing with `cdf(lo) = 0`, `cdf(hi) = 1`.
pub trait Pdf {
    /// The closed uncertainty region `[lo, hi]`.
    fn support(&self) -> (f64, f64);

    /// Probability density at `x` (zero outside the region).
    fn density(&self, x: f64) -> f64;

    /// Cumulative distribution `Pr[X ≤ x]`, clamped to `[0, 1]`.
    fn cdf(&self, x: f64) -> f64;

    /// Probability mass on `[a, b]` (default: cdf difference).
    fn mass_between(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        (self.cdf(b) - self.cdf(a)).clamp(0.0, 1.0)
    }

    /// Quantile function: smallest `x` with `cdf(x) ≥ p`.
    ///
    /// Default implementation bisects the cdf, which works for any monotone
    /// implementation; concrete types override with closed forms.
    fn quantile(&self, p: f64) -> f64 {
        let (lo, hi) = self.support();
        if p <= 0.0 {
            return lo;
        }
        if p >= 1.0 {
            return hi;
        }
        let (mut a, mut b) = (lo, hi);
        for _ in 0..200 {
            let m = 0.5 * (a + b);
            if self.cdf(m) < p {
                a = m;
            } else {
                b = m;
            }
            if b - a <= 1e-14 * (hi - lo).max(1.0) {
                break;
            }
        }
        0.5 * (a + b)
    }

    /// Draw a sample by inverse-transform sampling.
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng as _;
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// Expected value (default: numeric integration of `x·f(x)`).
    fn mean(&self) -> f64 {
        let (lo, hi) = self.support();
        adaptive_simpson(|x| x * self.density(x), lo, hi, 1e-12)
    }

    /// Variance (default: numeric integration of the second central moment).
    fn variance(&self) -> f64 {
        let (lo, hi) = self.support();
        let mu = self.mean();
        gauss_legendre(
            |x| (x - mu) * (x - mu) * self.density(x),
            lo,
            hi,
            GlOrder::Sixteen,
        )
        .max(0.0)
    }

    /// Width of the uncertainty region.
    fn width(&self) -> f64 {
        let (lo, hi) = self.support();
        hi - lo
    }
}
