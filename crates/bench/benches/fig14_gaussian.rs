//! Criterion bench for Fig. 14: strategy latencies with Gaussian (300-bar)
//! uncertainty pdfs.

use std::time::Duration;

use cpnn_core::{CpnnQuery, Strategy, UncertainDb};
use cpnn_datagen::{gaussian_variant, longbeach::longbeach_with, query_points, LongBeachConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = LongBeachConfig {
        count: 2_000,
        ..LongBeachConfig::default()
    };
    let base = longbeach_with(0xC0FFEE, cfg);
    let db = UncertainDb::build(gaussian_variant(&base, 300)).unwrap();
    let queries = query_points(0xBEEF, 8);
    let mut group = c.benchmark_group("fig14_gaussian");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for (name, strategy) in [
        ("basic", Strategy::Basic),
        ("refine", Strategy::RefineOnly),
        ("vr", Strategy::Verified),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "P=0.3"), &db, |b, db| {
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                db.cpnn(&CpnnQuery::new(q, 0.3, 0.01), strategy).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
