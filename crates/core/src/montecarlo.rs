//! Monte-Carlo baseline (Kriegel, Kunath & Renz, DASFAA 2007 \[9\]).
//!
//! Each "possible world" draws one concrete distance per candidate from its
//! distance distribution (inverse-transform sampling); the candidate with
//! the minimum sampled distance is the world's nearest neighbor. Tallying
//! over many worlds estimates the qualification probabilities. The paper
//! positions this as the sampling-based alternative whose accuracy depends
//! on the number of samples — our property tests quantify exactly that.

use rand::Rng;

use crate::candidate::CandidateSet;
use crate::error::{CoreError, Result};

/// Estimate qualification probabilities from `worlds` sampled worlds.
pub fn monte_carlo_probabilities<R: Rng + ?Sized>(
    cands: &CandidateSet,
    worlds: usize,
    rng: &mut R,
) -> Result<Vec<f64>> {
    if worlds == 0 {
        return Err(CoreError::ZeroWorlds);
    }
    let members = cands.members();
    let mut counts = vec![0usize; members.len()];
    for _ in 0..worlds {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, m) in members.iter().enumerate() {
            let u: f64 = rng.gen();
            let r = m.dist.quantile(u);
            if r < best_dist {
                best_dist = r;
                best = i;
            }
        }
        counts[best] += 1;
    }
    Ok(counts
        .into_iter()
        .map(|c| c as f64 / worlds as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig7_exact, fig7_scenario};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_worlds_is_an_error() {
        let (cands, _) = fig7_scenario();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(monte_carlo_probabilities(&cands, 0, &mut rng).is_err());
    }

    #[test]
    fn estimates_converge_to_exact() {
        let (cands, _) = fig7_scenario();
        let mut rng = StdRng::seed_from_u64(2024);
        let probs = monte_carlo_probabilities(&cands, 200_000, &mut rng).unwrap();
        for (got, want) in probs.iter().zip(fig7_exact()) {
            // 200k worlds: standard error ≈ sqrt(p(1-p)/n) < 0.0012.
            assert!((got - want).abs() < 0.006, "{got} vs {want}");
        }
    }

    #[test]
    fn estimates_form_a_distribution() {
        let (cands, _) = fig7_scenario();
        let mut rng = StdRng::seed_from_u64(7);
        let probs = monte_carlo_probabilities(&cands, 10_000, &mut rng).unwrap();
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (cands, _) = fig7_scenario();
        let a = monte_carlo_probabilities(&cands, 1000, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = monte_carlo_probabilities(&cands, 1000, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }
}
