//! Streaming server: a long-lived [`QueryServer`] absorbing a query
//! stream while the database changes underneath it.
//!
//! This is the moving-object scenario from the related literature: a fleet
//! of uncertain objects (location readings with error intervals) is
//! queried continuously, and object updates arrive *during* the stream.
//! Each update swaps in a new immutable snapshot; in-flight queries finish
//! against the version they pinned, so every response is consistent with
//! exactly one database state — reported as `v<version>` below.
//!
//! Run with: `cargo run --example streaming_server`

use cpnn::core::server::QueryServer;
use cpnn::core::{ObjectId, PipelineConfig, QuerySpec, Strategy, UncertainDb, UncertainObject};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten vehicles on a 1-D road, each position an uncertainty interval.
    let vehicles: Vec<UncertainObject> = (0..10)
        .map(|i| {
            let center = 10.0 * i as f64;
            UncertainObject::uniform(ObjectId(i), center - 2.0, center + 2.0).unwrap()
        })
        .collect::<Vec<_>>();
    let db = UncertainDb::build(vehicles)?;
    let server = QueryServer::start(db, 4, PipelineConfig::default());
    let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);

    // Phase 1: stream a few queries against the initial snapshot (v0).
    println!("-- initial fleet --");
    let tickets: Vec<_> = [5.0, 25.0, 47.0, 88.0]
        .into_iter()
        .map(|q| (q, server.submit(q, spec)))
        .collect();
    for (q, t) in tickets {
        let served = t.wait();
        let res = served.result?;
        println!(
            "q = {q:>4}: v{} answers = {:?}",
            served.snapshot_version,
            res.answers.iter().map(|id| id.0).collect::<Vec<_>>()
        );
    }

    // Phase 2: vehicle 99 merges in near q = 25 while queries keep coming.
    // The snapshot swap is atomic: responses cite the version that served
    // them, and a pinned version never mixes old and new states.
    let snap = server.insert(UncertainObject::uniform(ObjectId(99), 24.0, 26.0)?)?;
    println!("-- vehicle 99 merged in (snapshot v{}) --", snap.version);
    let served = server.submit(25.0, spec).wait();
    println!(
        "q = 25.0: v{} answers = {:?}",
        served.snapshot_version,
        served
            .result?
            .answers
            .iter()
            .map(|id| id.0)
            .collect::<Vec<_>>()
    );

    // Phase 3: a micro-batch is a consistent multi-query read — all of its
    // members are answered from one pinned snapshot, even if an update
    // lands mid-batch.
    let batch = server.submit_batch((0..5).map(|i| (20.0 * i as f64, spec)).collect());
    server.remove(ObjectId(99))?;
    let served = batch.wait();
    let v = served[0].snapshot_version;
    println!("-- micro-batch (all answered from snapshot v{v}) --");
    for (i, s) in served.into_iter().enumerate() {
        assert_eq!(s.snapshot_version, v, "micro-batches never tear");
        let res = s.result?;
        println!(
            "q = {:>4}: answers = {:?}",
            20.0 * i as f64,
            res.answers.iter().map(|id| id.0).collect::<Vec<_>>()
        );
    }

    let stats = server.shutdown();
    println!(
        "-- served {} queries across {} snapshot update(s) --",
        stats.served, stats.updates
    );
    Ok(())
}
