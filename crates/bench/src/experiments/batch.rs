//! Batch scaling — beyond the paper: throughput of the batch executor on a
//! 10k-query workload as worker threads grow. The per-query work is
//! unchanged (identical answers at every thread count — the parity tests
//! assert this); what this experiment measures is how close the executor
//! gets to linear wall-clock scaling on the machine it runs on.
//!
//! The database size |T| is swept too (4k and 8k in quick mode, 8k and the
//! full 53,144 otherwise), so the series files carry directly comparable
//! throughput numbers across PRs at fixed |T| rows.

use cpnn_core::Strategy;

use crate::experiments::{longbeach_db_sized, DEFAULT_DELTA, DEFAULT_P};
use crate::harness::run_queries_batched;
use crate::report::Table;
use cpnn_datagen::query_points;

/// Thread counts to sweep: powers of two up to the core count, and always
/// at least `[1, 2, 4]` — on a single-core box the extra rows demonstrate
/// that oversubscription costs (almost) nothing, on a multi-core box they
/// show the actual speedup.
pub fn thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    let mut t = 8;
    while t < cores {
        counts.push(t);
        t *= 2;
    }
    if cores > 4 {
        counts.push(cores);
    }
    counts
}

/// Database sizes to sweep at the given mode.
pub fn size_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![4_000, 8_000]
    } else {
        vec![8_000, 53_144]
    }
}

/// Run the experiment. Columns: |T|, threads, wall-clock ms for the whole
/// batch, throughput (queries/s), and speedup over one thread at that |T|.
pub fn run(quick: bool) -> Table {
    let n_queries = if quick { 2_000 } else { 10_000 };
    let reps = 3;
    let queries = query_points(0xBA7C4, n_queries);
    let mut table = Table::new(
        "Batch",
        &format!("Batch-executor scaling on a {n_queries}-query VR workload"),
        &["|T|", "threads", "wall (ms)", "queries/s", "speedup"],
    );
    table.note(format!(
        "{} queries, P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, {} core(s), best of {reps} runs per row",
        n_queries,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    for size in size_sweep(quick) {
        let db = longbeach_db_sized(size);
        let mut base_wall = None;
        for threads in thread_sweep() {
            let s = (0..reps)
                .map(|_| {
                    run_queries_batched(
                        &db,
                        &queries,
                        DEFAULT_P,
                        DEFAULT_DELTA,
                        Strategy::Verified,
                        threads,
                    )
                })
                .min_by_key(|s| s.wall_time)
                .expect("at least one rep");
            let wall = s.wall_time.as_secs_f64() * 1e3;
            let base = *base_wall.get_or_insert(wall);
            table.push_row(vec![
                size.to_string(),
                threads.to_string(),
                format!("{wall:.1}"),
                format!("{:.0}", s.throughput()),
                format!("{:.2}x", base / wall.max(1e-9)),
            ]);
        }
    }
    table
}
