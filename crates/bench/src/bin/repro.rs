//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! repro [--quick] [--out DIR] [EXPERIMENT ...]
//! ```
//! where `EXPERIMENT` is any of `fig9 fig10 fig11 fig12 fig13 fig14 table3
//! ablations` or `all` (default). `--quick` uses a reduced workload (same
//! shapes, faster); `--out` selects the results directory (default
//! `results/`).

use std::fs;
use std::path::PathBuf;

use cpnn_bench::experiments;
use cpnn_bench::report::Table;

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--out DIR] \
                     [fig9|fig10|fig11|fig12|fig13|fig14|table3|ablations|all ...]"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    fs::create_dir_all(&out_dir).expect("can create results directory");
    let mut produced: Vec<Table> = Vec::new();

    let run = |name: &str, f: &dyn Fn(bool) -> Table, produced: &mut Vec<Table>| {
        eprintln!(">> running {name} ({}) ...", if quick { "quick" } else { "full" });
        let t = f(quick);
        println!("{}", t.to_text());
        produced.push(t);
    };

    if want("fig9") {
        run("fig9", &experiments::fig09::run, &mut produced);
    }
    if want("fig10") {
        run("fig10", &experiments::fig10::run, &mut produced);
    }
    if want("fig11") {
        run("fig11", &experiments::fig11::run, &mut produced);
    }
    if want("fig12") {
        run("fig12", &experiments::fig12::run, &mut produced);
    }
    if want("fig13") {
        run("fig13", &experiments::fig13::run, &mut produced);
    }
    if want("fig14") {
        run("fig14", &experiments::fig14::run, &mut produced);
    }
    if want("table3") {
        run("table3", &experiments::table3::run, &mut produced);
    }
    if want("ablations") {
        run("ablation-a", &experiments::ablations::verifier_chain, &mut produced);
        run("ablation-b", &experiments::ablations::refinement_order, &mut produced);
        run("ablation-c", &experiments::ablations::distance_bins, &mut produced);
        run("ablation-d", &experiments::ablations::extended_chain, &mut produced);
    }

    for t in &produced {
        let stem: String = t
            .id
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect::<String>()
            .trim_matches('_')
            .replace("__", "_");
        fs::write(out_dir.join(format!("{stem}.md")), t.to_markdown())
            .expect("can write markdown result");
        fs::write(out_dir.join(format!("{stem}.csv")), t.to_csv())
            .expect("can write csv result");
    }
    eprintln!(
        ">> wrote {} result table(s) to {}",
        produced.len(),
        out_dir.display()
    );
}
