//! Property tests for the probability substrate: every distribution must
//! behave like a distribution, for arbitrary parameters.

use cpnn_pdf::integrate::{adaptive_simpson, gauss_legendre, GlOrder};
use cpnn_pdf::{discretize, HistogramPdf, Pdf, TruncatedGaussian, UniformPdf};
use proptest::prelude::*;

fn histogram_strategy() -> impl Strategy<Value = HistogramPdf> {
    (
        -100.0f64..100.0,
        prop::collection::vec(0.01f64..10.0, 1..12),
        prop::collection::vec(0.0f64..5.0, 1..12),
    )
        .prop_filter_map(
            "need matching lens and nonzero mass",
            |(lo, widths, dens)| {
                let n = widths.len().min(dens.len());
                if n == 0 {
                    return None;
                }
                let mut edges = vec![lo];
                for w in widths.iter().take(n) {
                    edges.push(edges.last().unwrap() + w);
                }
                let density: Vec<f64> = dens.iter().take(n).copied().collect();
                if density.iter().sum::<f64>() <= 0.0 {
                    return None;
                }
                HistogramPdf::from_densities(edges, density).ok()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_total_mass_is_one(h in histogram_strategy()) {
        let (lo, hi) = h.support();
        prop_assert!((h.cdf(hi) - 1.0).abs() < 1e-12);
        prop_assert_eq!(h.cdf(lo), 0.0);
        let integral = adaptive_simpson(|x| h.density(x), lo, hi, 1e-10);
        prop_assert!((integral - 1.0).abs() < 1e-6, "integral = {integral}");
    }

    #[test]
    fn histogram_cdf_monotone(h in histogram_strategy(), steps in 2usize..40) {
        let (lo, hi) = h.support();
        let mut prev = -1e-15;
        for i in 0..=steps {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            let c = h.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn histogram_quantile_inverts_cdf(h in histogram_strategy(), p in 0.001f64..0.999) {
        let x = h.quantile(p);
        prop_assert!((h.cdf(x) - p).abs() < 1e-9, "p = {p}, cdf(q(p)) = {}", h.cdf(x));
    }

    #[test]
    fn discretization_preserves_edge_cdf(h in histogram_strategy(), bars in 2usize..60) {
        let d = discretize(&h, bars).unwrap();
        let (lo, hi) = h.support();
        let (dlo, dhi) = d.support();
        prop_assert!((lo - dlo).abs() < 1e-9 && (hi - dhi).abs() < 1e-9);
        // At the coarse histogram's own edges the cdfs agree exactly.
        for &e in d.edges() {
            prop_assert!((d.cdf(e) - h.cdf(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_is_a_distribution(
        lo in -50.0f64..50.0,
        width in 0.5f64..40.0,
        sigma_frac in 0.05f64..0.5,
    ) {
        let hi = lo + width;
        let g = TruncatedGaussian::new(lo + width / 2.0, width * sigma_frac, lo, hi).unwrap();
        prop_assert!((g.cdf(hi) - 1.0).abs() < 1e-12);
        prop_assert_eq!(g.cdf(lo), 0.0);
        let total = adaptive_simpson(|x| g.density(x), lo, hi, 1e-10);
        prop_assert!((total - 1.0).abs() < 1e-7);
        // Symmetric around the (centered) mean.
        prop_assert!((g.cdf(lo + width / 2.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_mean_variance(lo in -50.0f64..50.0, width in 0.1f64..30.0) {
        let u = UniformPdf::new(lo, lo + width).unwrap();
        prop_assert!((u.mean() - (lo + width / 2.0)).abs() < 1e-9);
        prop_assert!((u.variance() - width * width / 12.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_legendre_matches_adaptive_simpson_on_smooth(
        a in -5.0f64..0.0,
        b in 0.1f64..5.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        let f = |x: f64| (c1 * x).sin() + c2 * x * x;
        let gl = gauss_legendre(f, a, b, GlOrder::Sixteen);
        let simp = adaptive_simpson(f, a, b, 1e-12);
        prop_assert!((gl - simp).abs() < 1e-7, "gl {gl} vs simpson {simp}");
    }
}
