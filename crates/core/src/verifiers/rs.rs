//! The Rightmost-Subregion (RS) verifier (paper Sec. IV-B, Lemma 1).
//!
//! Any object whose distance exceeds `fmin` cannot be the nearest neighbor,
//! because the object realizing `fmin` is certainly closer. Hence
//! `p_i.u ≤ 1 − s_iM`, where `s_iM = Pr[R_i ∈ S_M] = 1 − D_i(fmin)` is the
//! object's mass in the rightmost subregion. Cost: `O(|C|)`.

use crate::classify::Label;
use crate::subregion::SubregionTable;
use crate::verifiers::{VerificationState, Verifier};

/// The RS verifier. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct RightmostSubregion;

impl Verifier for RightmostSubregion {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        for i in 0..table.n_objects() {
            if state.labels[i] != Label::Unknown {
                continue;
            }
            state.bounds[i].lower_hi(1.0 - table.rightmost(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subregion::SubregionTable;
    use crate::testutil::{fig7_exact, fig7_scenario};

    #[test]
    fn rs_bounds_match_hand_computation() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        RightmostSubregion.apply(&table, &mut state);
        // 1 − s_iM: X1 = 1 − .175, X2 = 1 − 0, X3 = 1 − .5.
        let want = [0.825, 1.0, 0.5];
        for (i, w) in want.iter().enumerate() {
            assert!(
                (state.bounds[i].hi() - w).abs() < 1e-12,
                "object {i}: {} vs {w}",
                state.bounds[i].hi()
            );
            assert_eq!(state.bounds[i].lo(), 0.0);
        }
    }

    #[test]
    fn rs_bound_contains_exact_probability() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        RightmostSubregion.apply(&table, &mut state);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(state.bounds[i].contains(*p, 1e-9), "object {i}");
        }
    }

    #[test]
    fn rs_skips_already_classified_objects() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        state.labels[2] = Label::Fail;
        RightmostSubregion.apply(&table, &mut state);
        // Object 2 untouched (still vacuous).
        assert_eq!(state.bounds[2].hi(), 1.0);
        assert!((state.bounds[0].hi() - 0.825).abs() < 1e-12);
    }
}
