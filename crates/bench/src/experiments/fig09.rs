//! Fig. 9 — *Basic vs. Filtering*: as the dataset grows, the Basic
//! method's probability-evaluation time comes to dominate the R-tree
//! filtering time (crossover near |T| ≈ 5,000 in the paper).

use cpnn_core::Strategy;
use cpnn_datagen::{longbeach::longbeach_with, LongBeachConfig};

use crate::experiments::{workload_queries, DEFAULT_DELTA, DEFAULT_P};
use crate::harness::run_queries;
use crate::report::{frac, ms, Table};

/// Run the experiment. Columns: dataset size, filtering ms, Basic ms, and
/// the fraction of total time spent in Basic (the paper's y-axis).
pub fn run(quick: bool) -> Table {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 2_000, 5_000, 10_000]
    } else {
        vec![1_000, 2_000, 5_000, 10_000, 20_000, 53_144]
    };
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 9",
        "Basic vs. Filtering time as |T| grows",
        &[
            "|T|",
            "filter (ms)",
            "basic eval (ms)",
            "basic share",
            "avg |C|",
        ],
    );
    table.note("paper: Basic starts to dominate filtering beyond |T| ≈ 5,000");
    for &size in &sizes {
        let cfg = LongBeachConfig {
            count: size,
            ..LongBeachConfig::default()
        };
        let db = cpnn_core::UncertainDb::build(longbeach_with(0xC0FFEE, cfg))
            .expect("valid generated data");
        let s = run_queries(&db, &queries, DEFAULT_P, DEFAULT_DELTA, Strategy::Basic);
        let basic = s.avg_refine; // Basic's evaluation is booked as "refine"
        let share = basic.as_secs_f64() / (basic + s.avg_filter).as_secs_f64().max(1e-12);
        table.push_row(vec![
            size.to_string(),
            ms(s.avg_filter),
            ms(basic),
            frac(share),
            format!("{:.1}", s.avg_candidates),
        ]);
    }
    table
}
