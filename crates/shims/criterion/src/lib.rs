//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the benchmark-group API subset our benches use
//! (`benchmark_group`, `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`) with a simple mean/min timing loop and plain-text
//! reporting. No statistics, plots, or baseline comparison — swap the path
//! dependency for the real crate to get those back.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendering (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = self.measure(&mut f);
        println!(
            "{}/{:<32} avg {:>12?}   min {:>12?}   ({} samples)",
            self.name, id.name, report.mean, report.min, report.samples
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting is incremental; this is a no-op hook for
    /// API compatibility).
    pub fn finish(&mut self) {}

    fn measure<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> SampleReport {
        // Warm-up: run the body until the warm-up budget is spent.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while Instant::now() < warm_until {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters == 0 {
                break; // body never called iter(); avoid spinning
            }
        }
        // Sampling: up to `sample_size` samples within the measurement budget.
        let measure_until = Instant::now() + self.measurement_time;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 0;
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters as u32);
            }
            if Instant::now() >= measure_until {
                break;
            }
        }
        if samples.is_empty() {
            return SampleReport::default();
        }
        let total: Duration = samples.iter().sum();
        SampleReport {
            mean: total / samples.len() as u32,
            min: samples.iter().copied().min().unwrap_or_default(),
            samples: samples.len(),
        }
    }
}

#[derive(Debug, Default)]
struct SampleReport {
    mean: Duration,
    min: Duration,
    samples: usize,
}

/// Times the benchmark body handed to it by `iter`.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // A small fixed batch per sample keeps one sample cheap while
        // amortizing timer overhead.
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(body());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}
