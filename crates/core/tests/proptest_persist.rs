//! Snapshot round-trip properties of the generalized (dimension-tagged)
//! persistence format: for 1-D, 2-D, and sharded databases —
//! including empty databases and single-bar histograms —
//! `read_model(write_model(db))` answers **every** query identically to
//! the live database, report for report.
//!
//! Bit-exactness caveat baked into the generators: the 1-D snapshot
//! stores per-bar *masses* (cdf differences) and rebuilding divides by
//! bar width then re-normalizes, so a round trip is bit-identical
//! exactly when bar widths are powers of two and masses are dyadic
//! rationals summing to exactly 1.0. The generators below emit integer
//! edges with widths in {1, 2, 4} and masses on the k/64 grid, which the
//! format preserves exactly. (2-D objects store raw f64 bits — circles
//! and rectangles round-trip exactly for arbitrary coordinates.)

use cpnn_core::persist::{self, SnapshotError};
use cpnn_core::{
    CpnnQuery, CpnnResult, EngineConfig, Object2d, ObjectId, ShardBalance, ShardedDb, Strategy,
    UncertainDb, UncertainDb2d, UncertainObject,
};
use cpnn_pdf::HistogramPdf;
use proptest::prelude::*;
use proptest::Strategy as _;
use proptest::TestCaseError;

/// Raw material for one dyadic histogram object: an integer low edge,
/// per-bar power-of-two widths, and mass cut points on the /64 grid.
type RawObject = (i32, Vec<f64>, Vec<u32>);

/// Objects whose histograms round-trip bit-for-bit (see module docs):
/// integer edges, widths in {1, 2, 4}, masses summing to exactly 64/64.
/// `cuts` may collapse to nothing after dedup — a single-bar histogram.
fn dyadic_objects(max: usize) -> impl proptest::Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(
        (
            -64i32..64,
            prop::collection::vec(prop::sample::select(vec![1.0f64, 2.0, 4.0]), 1..5),
            prop::collection::vec(1u32..64, 0..4),
        ),
        0..max,
    )
    .prop_map(|raw: Vec<RawObject>| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (lo, widths, cuts))| {
                // Bars share the histogram: `widths.len()` geometric bars,
                // masses split at the (deduped) cut points on the /64 grid.
                let mut cuts: Vec<u32> = cuts.into_iter().map(|c| c % 63 + 1).collect();
                cuts.sort_unstable();
                cuts.dedup();
                cuts.truncate(widths.len() - 1);
                // Edges: integers via power-of-two partial sums (exact).
                let mut edges = vec![lo as f64];
                let bars = cuts.len() + 1;
                for w in widths.iter().take(bars) {
                    edges.push(edges.last().unwrap() + w);
                }
                // Masses: consecutive differences of [0, cuts.., 64] / 64.
                let mut bounds = vec![0u32];
                bounds.extend(&cuts);
                bounds.push(64);
                let masses: Vec<f64> = bounds
                    .windows(2)
                    .map(|w| (w[1] - w[0]) as f64 / 64.0)
                    .collect();
                let pdf = HistogramPdf::from_masses(edges, masses).expect("dyadic histogram");
                UncertainObject::from_histogram(ObjectId(i as u64), pdf)
            })
            .collect()
    })
}

fn assert_same(got: &CpnnResult, want: &CpnnResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&got.answers, &want.answers, "answers differ: {}", ctx);
    prop_assert_eq!(&got.reports, &want.reports, "reports differ: {}", ctx);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 1-D: `read_model(write_model(db))` — including the snapshot
    /// version tag — answers every C-PNN and C-PkNN query identically.
    #[test]
    fn snapshot_round_trip_1d(
        objects in dyadic_objects(12),
        points in prop::collection::vec(-70.0f64..70.0, 2..5),
        version in 0u64..1000,
    ) {
        let db = UncertainDb::build(objects).unwrap();
        let mut image = Vec::new();
        persist::write_model(&db, version, &mut image).unwrap();
        let (back, got_version) =
            persist::read_model::<UncertainDb, _>(image.as_slice(), &EngineConfig::default())
                .unwrap();
        prop_assert_eq!(got_version, version);
        prop_assert_eq!(back.len(), db.len());
        for &q in &points {
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = db.cpnn(&query, Strategy::Verified).unwrap();
            let b = back.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("cpnn q = {q}"))?;
            let a = db.cknn(q, 2, 0.4, 0.0).unwrap();
            let b = back.cknn(q, 2, 0.4, 0.0).unwrap();
            assert_same(&a, &b, &format!("cknn q = {q}"))?;
        }
    }

    /// 2-D: circles and rectangles store raw f64 bits, so arbitrary
    /// coordinates round-trip exactly — every 2-D k-NN query agrees.
    #[test]
    fn snapshot_round_trip_2d(
        circles in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0, 0.5f64..5.0), 0..8),
        rects in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0, 0.5f64..6.0, 0.5f64..4.0), 0..6),
        points in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..4),
    ) {
        let mut objects: Vec<Object2d> = Vec::new();
        for (i, &(x, y, r)) in circles.iter().enumerate() {
            objects.push(Object2d::circle(ObjectId(i as u64), [x, y], r).unwrap());
        }
        for (i, &(x, y, w, h)) in rects.iter().enumerate() {
            objects.push(
                Object2d::rectangle(ObjectId(1_000 + i as u64), [x, y], [x + w, y + h]).unwrap(),
            );
        }
        let db = UncertainDb2d::build(objects).unwrap();
        let mut image = Vec::new();
        persist::write_model(&db, 7, &mut image).unwrap();
        let (back, _) = persist::read_model::<UncertainDb2d, _>(
            image.as_slice(),
            &Default::default(),
        )
        .unwrap();
        prop_assert_eq!(back.len(), db.len());
        for &(x, y) in &points {
            let a = db.cpnn([x, y], 0.3, 0.01).unwrap();
            let b = back.cpnn([x, y], 0.3, 0.01).unwrap();
            assert_same(&a, &b, &format!("2d q = ({x}, {y})"))?;
            let a = db.cknn([x, y], 2, 0.4, 0.0).unwrap();
            let b = back.cknn([x, y], 2, 0.4, 0.0).unwrap();
            assert_same(&a, &b, &format!("2d knn q = ({x}, {y})"))?;
        }
    }

    /// Sharded: the snapshot persists the partitioning itself (axis +
    /// exact slab bounds), so the recovered database keeps the same
    /// layout and answers identically — under both balancing schemes.
    #[test]
    fn snapshot_round_trip_sharded(
        objects in dyadic_objects(16),
        points in prop::collection::vec(-70.0f64..70.0, 2..4),
        shards in prop::sample::select(vec![1usize, 3, 5]),
        quantile in prop::bool::ANY,
    ) {
        let balance = if quantile { ShardBalance::Quantile } else { ShardBalance::Width };
        if objects.is_empty() {
            return Ok(()); // sharded build requires at least one object
        }
        let db = ShardedDb::<UncertainDb>::build_with(
            objects,
            EngineConfig::default(),
            shards,
            balance,
        )
        .unwrap();
        let mut image = Vec::new();
        persist::write_model(&db, 3, &mut image).unwrap();
        let (back, _) = persist::read_model::<ShardedDb<UncertainDb>, _>(
            image.as_slice(),
            &EngineConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(back.num_shards(), db.num_shards());
        prop_assert_eq!(back.partition_axis(), db.partition_axis());
        prop_assert_eq!(back.slab_bounds(), db.slab_bounds());
        for &q in &points {
            let query = CpnnQuery::new(q, 0.25, 0.01);
            let a = db.cpnn(&query, Strategy::Verified).unwrap();
            let b = back.cpnn(&query, Strategy::Verified).unwrap();
            assert_same(&a, &b, &format!("sharded q = {q}, {shards} shards"))?;
        }
    }
}

/// An empty database round-trips (zero records, version preserved).
#[test]
fn empty_database_round_trips() {
    let db = UncertainDb::build(Vec::new()).unwrap();
    let mut image = Vec::new();
    persist::write_model(&db, 11, &mut image).unwrap();
    let (back, version) =
        persist::read_model::<UncertainDb, _>(image.as_slice(), &EngineConfig::default()).unwrap();
    assert_eq!(version, 11);
    assert_eq!(back.len(), 0);
}

/// A single-bar (pure uniform) histogram with a power-of-two width
/// round-trips bit for bit.
#[test]
fn single_bar_histogram_round_trips() {
    let pdf = HistogramPdf::from_masses(vec![3.0, 7.0], vec![1.0]).unwrap();
    let db = UncertainDb::build(vec![UncertainObject::from_histogram(ObjectId(1), pdf)]).unwrap();
    let mut image = Vec::new();
    persist::write_model(&db, 0, &mut image).unwrap();
    let (back, _) =
        persist::read_model::<UncertainDb, _>(image.as_slice(), &EngineConfig::default()).unwrap();
    let a = db
        .cpnn(&CpnnQuery::new(5.0, 0.3, 0.01), Strategy::Verified)
        .unwrap();
    let b = back
        .cpnn(&CpnnQuery::new(5.0, 0.3, 0.01), Strategy::Verified)
        .unwrap();
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.reports, b.reports);
}

/// A version-bumped header is a *dedicated* error — future formats must
/// be distinguishable from corruption through the public load path.
#[test]
fn version_bumped_header_is_unsupported_not_corrupt() {
    let db = UncertainDb::build(vec![
        UncertainObject::uniform(ObjectId(1), 0.0, 4.0).unwrap()
    ])
    .unwrap();
    let mut image = Vec::new();
    persist::write_model(&db, 0, &mut image).unwrap();
    // Bump the little-endian version word (bytes 4..8) past the current
    // format version.
    image[4] = 0xEE;
    match persist::read_model::<UncertainDb, _>(image.as_slice(), &EngineConfig::default()) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 0xEE);
            assert_eq!(supported, persist::VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
