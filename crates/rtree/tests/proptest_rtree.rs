//! Property tests: the R-tree must agree with brute force on every
//! operation, for arbitrary inputs.

use cpnn_rtree::{Params, RTree, Rect};
use proptest::prelude::*;

/// Strategy: a list of random 1-D intervals in [-100, 100].
fn intervals(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-100.0f64..100.0, 0.01f64..20.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(lo, w)| (lo, lo + w)).collect())
}

fn build(ranges: &[(f64, f64)]) -> RTree<usize, 1> {
    let mut t = RTree::new(Params::new(8, 3));
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        t.insert(Rect::interval(lo, hi), i);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_search_matches_brute_force(
        ranges in intervals(200),
        q_lo in -120.0f64..120.0,
        q_w in 0.0f64..50.0,
    ) {
        let tree = build(&ranges);
        prop_assert!(tree.check_invariants().is_ok());
        let query = Rect::interval(q_lo, q_lo + q_w);
        let mut got: Vec<usize> = tree
            .search_intersecting(&query)
            .into_iter()
            .map(|(_, &i)| i)
            .collect();
        got.sort_unstable();
        let want: Vec<usize> = ranges
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| lo <= q_lo + q_w && q_lo <= hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_incremental(ranges in intervals(150), q in -120.0f64..120.0) {
        let incr = build(&ranges);
        let packed = RTree::bulk_load(
            ranges.iter().enumerate().map(|(i, &(lo, hi))| (Rect::interval(lo, hi), i)).collect(),
        );
        prop_assert_eq!(incr.len(), packed.len());
        let query = Rect::interval(q, q + 10.0);
        let norm = |mut v: Vec<usize>| { v.sort_unstable(); v };
        let a = norm(incr.search_intersecting(&query).into_iter().map(|(_, &i)| i).collect());
        let b = norm(packed.search_intersecting(&query).into_iter().map(|(_, &i)| i).collect());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn knn_matches_brute_force(ranges in intervals(120), q in -120.0f64..120.0, k in 1usize..20) {
        let tree = build(&ranges);
        let got: Vec<f64> = tree
            .k_nearest_neighbors(&[q], k)
            .into_iter()
            .map(|(_, d)| d)
            .collect();
        let mut want: Vec<f64> = ranges
            .iter()
            .map(|&(lo, hi)| if q >= lo && q <= hi { 0.0 } else { (lo - q).abs().min((q - hi).abs()) })
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn pnn_filter_matches_brute_force(ranges in intervals(150), q in -120.0f64..120.0) {
        let tree = build(&ranges);
        let (cands, stats) = tree.pnn_candidates(&[q]);
        let mut got: Vec<usize> = cands.iter().map(|c| *c.item).collect();
        got.sort_unstable();

        let near = |&(lo, hi): &(f64, f64)| if q >= lo && q <= hi { 0.0 } else { (lo - q).abs().min((q - hi).abs()) };
        let far = |&(lo, hi): &(f64, f64)| (q - lo).abs().max((q - hi).abs());
        let fmin = ranges.iter().map(far).fold(f64::INFINITY, f64::min);
        let want: Vec<usize> = ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| near(r) <= fmin)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
        prop_assert!((stats.fmin - fmin).abs() < 1e-9);
    }

    #[test]
    fn insert_then_remove_everything_leaves_empty_tree(ranges in intervals(80)) {
        let mut tree = build(&ranges);
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let removed = tree.remove_one(&Rect::interval(lo, hi), |&id| id == i);
            prop_assert_eq!(removed, Some(i));
            prop_assert!(tree.check_invariants().is_ok());
        }
        prop_assert!(tree.is_empty());
    }

    /// Persistent snapshots: an interleaved insert/remove sequence applied
    /// through path-copying handles must (a) agree with brute force on the
    /// final contents and (b) leave every intermediate snapshot answering
    /// exactly for its own historical contents.
    #[test]
    fn path_copied_snapshots_answer_their_history(
        ranges in intervals(100),
        extra in prop::collection::vec((-100.0f64..100.0, 0.01f64..20.0), 1..30),
        q_lo in -120.0f64..120.0,
    ) {
        let tree = build(&ranges);
        // live[id] = rect currently stored under id (ids: base set 0..n,
        // inserts n..n+extra).
        let mut live: Vec<Option<(f64, f64)>> = ranges.iter().map(|r| Some(*r)).collect();
        let mut snapshots = vec![(tree.clone(), live.clone())];
        let mut cur = tree;
        for (j, &(lo, w)) in extra.iter().enumerate() {
            let id = ranges.len() + j;
            cur = cur.with_inserted(Rect::interval(lo, lo + w), id);
            live.push(Some((lo, lo + w)));
            // Every third step also removes the oldest still-live entry.
            if j % 3 == 2 {
                if let Some(victim) = live.iter().position(|r| r.is_some()) {
                    let (vlo, vhi) = live[victim].unwrap();
                    let (next, removed) =
                        cur.with_removed(&Rect::interval(vlo, vhi), |&i| i == victim);
                    prop_assert_eq!(removed, Some(victim));
                    cur = next;
                    live[victim] = None;
                }
            }
            snapshots.push((cur.clone(), live.clone()));
        }
        let query = Rect::interval(q_lo, q_lo + 15.0);
        for (v, (snap, contents)) in snapshots.iter().enumerate() {
            prop_assert!(snap.check_invariants().is_ok(), "version {}", v);
            let mut got: Vec<usize> = snap
                .search_intersecting(&query)
                .into_iter()
                .map(|(_, &i)| i)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = contents
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    r.and_then(|(lo, hi)| {
                        (lo <= q_lo + 15.0 && q_lo <= hi).then_some(i)
                    })
                })
                .collect();
            prop_assert_eq!(got, want, "version {} diverged from its history", v);
        }
    }

    #[test]
    fn two_dimensional_search_matches_brute_force(
        boxes in prop::collection::vec(
            (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..10.0, 0.1f64..10.0),
            1..120,
        ),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        qw in 0.0f64..30.0,
    ) {
        let rects: Vec<Rect<2>> = boxes
            .iter()
            .map(|&(x, y, w, h)| Rect::new([x, y], [x + w, y + h]))
            .collect();
        let mut tree: RTree<usize, 2> = RTree::new(Params::new(8, 3));
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        prop_assert!(tree.check_invariants().is_ok());
        let query = Rect::new([qx, qy], [qx + qw, qy + qw]);
        let mut got: Vec<usize> = tree
            .search_intersecting(&query)
            .into_iter()
            .map(|(_, &i)| i)
            .collect();
        got.sort_unstable();
        let want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
        // And the 2-D PNN filter agrees with brute force.
        let q = [qx, qy];
        let (cands, stats) = tree.pnn_candidates(&q);
        let fmin = rects.iter().map(|r| r.max_dist(&q)).fold(f64::INFINITY, f64::min);
        let mut got: Vec<usize> = cands.iter().map(|c| *c.item).collect();
        got.sort_unstable();
        let want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.min_dist(&q) <= fmin)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
        prop_assert!((stats.fmin - fmin).abs() < 1e-9);
    }
}
