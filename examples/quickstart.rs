//! Quickstart: the paper's Figure 2 scenario.
//!
//! Four uncertain objects A–D around a query point. A plain PNN returns
//! every object's qualification probability; a C-PNN with threshold P and
//! tolerance Δ returns only the confident answers — much cheaper to compute.
//!
//! Run with: `cargo run --example quickstart`

use cpnn::core::{CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four uncertain objects (uniform pdfs), mimicking paper Fig. 2 where
    // B ≈ 41%, D ≈ 29%, A ≈ 20%, C ≈ 10%.
    let objects = vec![
        UncertainObject::uniform(ObjectId(0), 1.0, 8.0)?, // A
        UncertainObject::uniform(ObjectId(1), 1.0, 5.0)?, // B
        UncertainObject::uniform(ObjectId(2), 1.0, 12.0)?, // C
        UncertainObject::uniform(ObjectId(3), 1.0, 6.0)?, // D
    ];
    let names = ["A", "B", "C", "D"];
    let db = UncertainDb::build(objects)?;
    let q = 0.0;

    // --- Plain PNN: every probability, computed exactly. -----------------
    let pnn = db.pnn(q)?;
    println!("PNN at q = {q}: qualification probabilities");
    for (id, p) in &pnn.probabilities {
        println!("  {:>2} ({}): {:5.1}%", id, names[id.0 as usize], 100.0 * p);
    }

    // --- C-PNN: only objects with probability ≥ 30% (tolerance 2%). ------
    let query = CpnnQuery::new(q, 0.30, 0.02);
    let result = db.cpnn(&query, Strategy::Verified)?;
    println!("\nC-PNN (P = 30%, Δ = 2%) answers:");
    for id in &result.answers {
        println!("  {} ({})", id, names[id.0 as usize]);
    }
    println!("\nPer-candidate verdicts:");
    for r in &result.reports {
        println!(
            "  {} ({}): bound {} → {:?}",
            r.id, names[r.id.0 as usize], r.bound, r.label
        );
    }
    println!(
        "\nresolved by verifiers alone: {} (refined {} object(s), {} integrations)",
        result.stats.resolved_by_verification,
        result.stats.refined_objects,
        result.stats.integrations,
    );

    // --- The same query with every strategy gives the same answers. ------
    for (name, strategy) in [
        ("Basic      ", Strategy::Basic),
        ("Refine-only", Strategy::RefineOnly),
        ("Verified   ", Strategy::Verified),
        (
            "Monte-Carlo",
            Strategy::MonteCarlo {
                worlds: 100_000,
                seed: 7,
            },
        ),
    ] {
        let res = db.cpnn(&query, strategy)?;
        let answers: Vec<String> = res
            .answers
            .iter()
            .map(|id| names[id.0 as usize].to_string())
            .collect();
        println!(
            "{name} -> answers {:?} in {:?}",
            answers,
            res.stats.total_time()
        );
    }
    Ok(())
}
