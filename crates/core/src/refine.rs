//! Incremental refinement (paper Sec. IV-D).
//!
//! Objects still `Unknown` after verification get their exact probabilities
//! computed — but *incrementally*: one subregion at a time. After computing
//! the exact `q_ij` for one subregion, the bound `[q_ij.l, q_ij.u]`
//! collapses to a point, the object-level bound is recomputed, and the
//! classifier re-checks the object; often a verdict is reached after only a
//! few subregions, skipping the rest. Each per-subregion integral is also
//! cheaper than one over the whole uncertainty region (smaller domain,
//! polynomial integrand).

use crate::classify::{Classifier, Label};
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{kernels, KernelScratch, VerificationState};

/// In which order refinement visits an object's subregions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementOrder {
    /// Largest subregion probability first — collapses the most bound width
    /// per integration (our default; the tech report's heuristic is not
    /// public, so this choice is ablated in the benches).
    #[default]
    DescendingMass,
    /// Left-to-right in distance order.
    LeftToRight,
}

/// Statistics from a refinement pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineReport {
    /// Objects that entered refinement.
    pub refined_objects: usize,
    /// Per-subregion integrations performed.
    pub integrations: usize,
    /// Integrations per candidate (index-aligned with the table).
    pub per_object: Vec<usize>,
}

/// Refine every `Unknown` object in `state` until classified, using the
/// 1-NN exact subregion qualification (kernel path).
pub fn incremental_refine(
    table: &SubregionTable,
    classifier: &Classifier,
    state: &mut VerificationState,
    order: RefinementOrder,
) -> RefineReport {
    incremental_refine_with(table, classifier, state, order, |i, j, scr| {
        kernels::nn_qualification(table, i, j, scr)
    })
}

/// Refine every `Unknown` object in `state` until classified, with a
/// caller-supplied exact qualification `qual(i, j, scratch)` — the 1-NN
/// product integral ([`kernels::nn_qualification`]) or the k-NN
/// Poisson-binomial integral ([`kernels::knn_qualification`]); the naive
/// references ([`crate::exact::subregion_qualification`],
/// [`crate::knn::knn_subregion_qualification`]) fit by ignoring the scratch
/// argument. This is the single refinement loop every query path shares
/// (paper Sec. IV-D).
///
/// The subregion visit order is materialized in the state's kernel scratch
/// (no allocation per object); `DescendingMass` breaks mass ties by
/// ascending index, which is exactly the order the previous stable sort
/// produced, so refinement trajectories — and therefore verdicts and final
/// bounds — are unchanged.
pub fn incremental_refine_with(
    table: &SubregionTable,
    classifier: &Classifier,
    state: &mut VerificationState,
    order: RefinementOrder,
    mut qual: impl FnMut(usize, usize, &mut KernelScratch) -> f64,
) -> RefineReport {
    let n = table.n_objects();
    let l = table.left_regions();
    let mut report = RefineReport {
        per_object: vec![0; n],
        ..Default::default()
    };
    // Take the visit-order buffer out of the scratch so the scratch itself
    // can still be handed to `qual` inside the loop; returned at the end.
    let mut regions = std::mem::take(&mut state.kernel.regions);
    for i in 0..n {
        if state.labels[i] != Label::Unknown {
            continue;
        }
        report.refined_objects += 1;
        regions.clear();
        regions.extend((0..l).filter(|&j| table.mass(i, j) > MASS_EPS));
        if order == RefinementOrder::DescendingMass {
            regions.sort_unstable_by(|&a, &b| {
                table
                    .mass(i, b)
                    .total_cmp(&table.mass(i, a))
                    .then(a.cmp(&b))
            });
        }
        for &j in &regions {
            let q = qual(i, j, &mut state.kernel);
            report.integrations += 1;
            report.per_object[i] += 1;
            state.qij_lo[i * l + j] = q;
            state.qij_hi[i * l + j] = q;
            state.recompute_lower(table, i);
            state.recompute_upper(table, i);
            let label = classifier.classify(&state.bounds[i]);
            if label != Label::Unknown {
                state.labels[i] = label;
                break;
            }
        }
        if state.labels[i] == Label::Unknown {
            // All subregions refined: the bound has collapsed to the exact
            // probability (width ≈ 0), so the verdict is now definite.
            state.labels[i] = classifier.classify(&state.bounds[i]);
            debug_assert_ne!(state.labels[i], Label::Unknown);
        }
    }
    state.kernel.regions = regions;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{default_verifiers, run_verification};
    use crate::subregion::SubregionTable;
    use crate::testutil::{fig7_exact, fig7_scenario};

    fn run(
        threshold: f64,
        tolerance: f64,
        order: RefinementOrder,
    ) -> (VerificationState, RefineReport) {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(threshold, tolerance).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        let mut state = outcome.state;
        let report = incremental_refine(&table, &classifier, &mut state, order);
        (state, report)
    }

    #[test]
    fn refinement_resolves_ambiguous_threshold() {
        // P = 0.45: exact values are .464 (satisfy), .485 (satisfy), .051 (fail).
        let (state, report) = run(0.45, 0.0, RefinementOrder::DescendingMass);
        assert_eq!(state.labels[0], Label::Satisfy);
        assert_eq!(state.labels[1], Label::Satisfy);
        assert_eq!(state.labels[2], Label::Fail);
        assert!(report.refined_objects == 2, "{report:?}");
        assert!(report.integrations >= 2);
    }

    #[test]
    fn refined_bounds_contain_exact_values() {
        let (state, _) = run(0.45, 0.0, RefinementOrder::DescendingMass);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(
                state.bounds[i].contains(*p, 1e-6),
                "object {i}: {} vs {p}",
                state.bounds[i]
            );
        }
    }

    #[test]
    fn both_orders_agree_on_labels() {
        let (a, _) = run(0.47, 0.0, RefinementOrder::DescendingMass);
        let (b, _) = run(0.47, 0.0, RefinementOrder::LeftToRight);
        assert_eq!(a.labels, b.labels);
        // Exact: p1 = .4635 < .47 → fail; p2 = .4854 ≥ .47 → satisfy.
        assert_eq!(a.labels[0], Label::Fail);
        assert_eq!(a.labels[1], Label::Satisfy);
    }

    #[test]
    fn refinement_without_verification_works_standalone() {
        // The Refine-only strategy: vacuous bounds straight into refinement.
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.45, 0.0).unwrap();
        let mut state = VerificationState::new(&table);
        let report =
            incremental_refine(&table, &classifier, &mut state, RefinementOrder::default());
        assert_eq!(report.refined_objects, 3);
        assert_eq!(state.labels[0], Label::Satisfy);
        assert_eq!(state.labels[1], Label::Satisfy);
        assert_eq!(state.labels[2], Label::Fail);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(state.bounds[i].contains(*p, 1e-6), "object {i}");
        }
    }

    #[test]
    fn tolerance_lets_refinement_stop_early() {
        // Generous tolerance: the first refined subregion usually suffices.
        let (_, tight) = run(0.45, 0.0, RefinementOrder::DescendingMass);
        let (_, loose) = run(0.45, 0.2, RefinementOrder::DescendingMass);
        assert!(loose.integrations <= tight.integrations);
    }

    #[test]
    fn nothing_to_refine_when_verification_resolved() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let classifier = Classifier::new(0.6, 0.0).unwrap();
        let outcome = run_verification(&table, &classifier, &default_verifiers());
        let mut state = outcome.state;
        let report = incremental_refine(
            &table,
            &classifier,
            &mut state,
            RefinementOrder::DescendingMass,
        );
        assert_eq!(report.refined_objects, 0);
        assert_eq!(report.integrations, 0);
    }
}
