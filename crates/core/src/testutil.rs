//! Shared test fixtures (compiled only for tests).
//!
//! The main fixture mirrors the structure of paper Fig. 7: three candidates
//! whose distance pdfs overlap in a staircase of subregions. With `q = 0`
//! and all regions on the positive axis, each object's distance distribution
//! *is* its uncertainty pdf, so every expected number below can be derived
//! by hand (and was; see the comments).

use cpnn_pdf::HistogramPdf;

use crate::candidate::CandidateSet;
use crate::object::{ObjectId, UncertainObject};

/// Hand-analyzed three-object scenario.
///
/// * `X1`: histogram pdf, mass 0.3 on `[1, 3]`, 0.7 on `[3, 7]`
/// * `X2`: uniform on `[2, 6]`
/// * `X3`: uniform on `[4, 8]`
/// * query `q = 0`, so `R_i = X_i`; `fmin = 6`, `fmax = 8`.
///
/// End-points: `[1, 2, 3, 4, 6]`; left subregions `S1..S4`; rightmost
/// `[6, 8]`.
///
/// Hand-computed ground truth (see the subregion/verifier/exact tests):
/// * masses: X1 `[.15, .15, .175, .35]` + rightmost `.175`;
///   X2 `[0, .25, .25, .5]` + `0`; X3 `[0, 0, 0, .5]` + `.5`
/// * counts `c = [1, 2, 2, 3]`
/// * RS upper bounds: `[.825, 1, .5]`
/// * L-SR lower bounds: `p.l = [0.3489583, 0.28125, 0.04375]`
/// * U-SR upper bounds: `p.u = [0.478125, 0.5, 0.065625]`
/// * exact probabilities: `[0.4635417, 0.4854167, 0.0510417]` (sum = 1)
pub fn fig7_scenario() -> (CandidateSet, Vec<UncertainObject>) {
    let x1 = UncertainObject::from_histogram(
        ObjectId(1),
        HistogramPdf::from_masses(vec![1.0, 3.0, 7.0], vec![0.3, 0.7]).unwrap(),
    );
    let x2 = UncertainObject::uniform(ObjectId(2), 2.0, 6.0).unwrap();
    let x3 = UncertainObject::uniform(ObjectId(3), 4.0, 8.0).unwrap();
    let objects = vec![x1, x2, x3];
    let cands = CandidateSet::build(&objects, 0.0, 0).unwrap();
    (cands, objects)
}

/// Exact qualification probabilities of [`fig7_scenario`], computed
/// analytically (piecewise-polynomial integration by hand).
pub fn fig7_exact() -> [f64; 3] {
    [
        0.463_541_666_666_666_7,
        0.485_416_666_666_666_7,
        0.051_041_666_666_666_67,
    ]
}

/// Paper Fig. 2 scenario: four uncertain objects with qualification
/// probabilities A ≈ 20%, B ≈ 41%, C ≈ 10%, D ≈ 29%.
///
/// The geometry was solved for analytically: with `q = 0` and all four
/// regions starting at 1, `p_i = ∫ f_i Π_{k≠i}(1 − F_k)` evaluates to
/// approximately (19%, 41%, 11%, 29%) for widths (7, 4, 11, 5) — matching
/// the paper's rounded percentages.
pub fn fig2_scenario() -> (Vec<UncertainObject>, f64) {
    let a = UncertainObject::uniform(ObjectId(0), 1.0, 8.0).unwrap();
    let b = UncertainObject::uniform(ObjectId(1), 1.0, 5.0).unwrap();
    let c = UncertainObject::uniform(ObjectId(2), 1.0, 12.0).unwrap();
    let d = UncertainObject::uniform(ObjectId(3), 1.0, 6.0).unwrap();
    (vec![a, b, c, d], 0.0)
}
