//! The shared storage layer: one persistent, id-addressable object store
//! over a [`SpatialIndex`], used by both the 1-D and 2-D databases.
//!
//! Before this module existed, `engine.rs` and `engine2d.rs` each carried
//! their own copy of the index plumbing — duplicate-id checks, bulk
//! loading, dynamic insert/remove with index re-keying. [`IndexedStore`]
//! is that plumbing written once, against the [`SpatialIndex`] seam, with
//! two persistent structures per store:
//!
//! * the **spatial index** (a path-copying [`cpnn_rtree::RTree`] by
//!   default) holds the objects themselves in its leaves — the filter
//!   reads candidates straight out of the index, no side table;
//! * a persistent **id map** ([`crate::idmap::IdMap`]) from object id to
//!   stored rect — duplicate detection on insert and id → rect lookup on
//!   remove, both O(log n) with path-copying updates.
//!
//! Because both structures are persistent, [`IndexedStore::with_inserted`]
//! and [`IndexedStore::with_removed`] produce a full copy-on-write
//! snapshot in **O(log n)** — this is what turns the serving layer's
//! snapshot-swap updates from rebuilds into structural edits.
//!
//! [`CowModel`] is the corresponding model-level seam: any database that
//! can produce copy-on-write successors of itself (the 1-D and 2-D
//! engines via their stores, [`crate::shard::ShardedDb`] via per-shard
//! path copies) implements it, and [`crate::server::QueryServer`] builds
//! its update surface — including the write-coalescing lane — on top.

use cpnn_rtree::{Candidate, FilterStats, Params, RTree, Rect, SpatialIndex};

use crate::error::{CoreError, Result};
use crate::idmap::IdMap;
use crate::object::ObjectId;
use crate::shard::Extent;

/// A storable object: identified, rectangle-bounded, cloneable.
pub trait StoredObject<const D: usize>: Clone {
    /// The object's identifier.
    fn object_id(&self) -> ObjectId;
    /// The axis-aligned bounding rectangle indexed for this object (the
    /// uncertainty region in 1-D, its bbox in 2-D).
    fn bounding_rect(&self) -> Rect<D>;
}

/// A persistent, id-addressable object store over a spatial index `I`.
/// `Clone` is O(1); [`with_inserted`](Self::with_inserted) /
/// [`with_removed`](Self::with_removed) are O(log n) path copies. See the
/// [module docs](self).
#[derive(Debug)]
pub struct IndexedStore<O, const D: usize, I = RTree<O, D>> {
    index: I,
    ids: IdMap<Rect<D>>,
    _marker: std::marker::PhantomData<O>,
}

impl<O, const D: usize, I: Clone> Clone for IndexedStore<O, D, I> {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            ids: self.ids.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<O, const D: usize, I> IndexedStore<O, D, I>
where
    O: StoredObject<D>,
    I: SpatialIndex<O, D>,
{
    /// Bulk-build the store (packed index + packed id map). Fails on
    /// duplicate object ids.
    pub fn build(objects: Vec<O>, params: Params) -> Result<Self> {
        let mut pairs: Vec<(u64, Rect<D>)> = objects
            .iter()
            .map(|o| (o.object_id().0, o.bounding_rect()))
            .collect();
        pairs.sort_unstable_by_key(|(id, _)| *id);
        if let Some(w) = pairs.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(CoreError::DuplicateObjectId(w[0].0));
        }
        let ids = IdMap::from_sorted(pairs);
        let index = I::build(
            objects
                .into_iter()
                .map(|o| (o.bounding_rect(), o))
                .collect(),
            params,
        );
        Ok(Self {
            index,
            ids,
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Is an object with this id stored?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.ids.contains(id.0)
    }

    /// The indexed rect of the object with this id, if stored.
    pub fn rect_of(&self, id: ObjectId) -> Option<Rect<D>> {
        self.ids.get(id.0).copied()
    }

    /// Minimum bounding rectangle of every stored object (`None` when
    /// empty) — kept exact by the index across updates, so it doubles as
    /// the store's domain extent for shard routing.
    pub fn mbr(&self) -> Option<Rect<D>> {
        self.index.mbr()
    }

    /// The store's extent as a dimension-erased [`Extent`] (`None` when
    /// empty).
    pub fn extent(&self) -> Option<Extent> {
        self.mbr()
            .map(|r| Extent::new(r.min().to_vec(), r.max().to_vec()))
    }

    /// Copy-on-write insert: a new store sharing all untouched structure.
    /// O(log n). Fails on a duplicate id (`self` unchanged either way).
    pub fn with_inserted(&self, object: O) -> Result<Self> {
        let id = object.object_id();
        let rect = object.bounding_rect();
        let ids = self
            .ids
            .with_inserted(id.0, rect)
            .ok_or(CoreError::DuplicateObjectId(id.0))?;
        Ok(Self {
            index: self.index.with_inserted(rect, object),
            ids,
            _marker: std::marker::PhantomData,
        })
    }

    /// Copy-on-write remove by id: the new store plus the removed object
    /// (`None` if the id was absent — the returned store then shares
    /// everything with `self`). O(log n).
    pub fn with_removed(&self, id: ObjectId) -> (Self, Option<O>) {
        let Some((ids, rect)) = self.ids.with_removed(id.0) else {
            return (self.clone(), None);
        };
        let (index, removed) = self
            .index
            .with_removed(&rect, &mut |o: &O| o.object_id() == id);
        debug_assert!(removed.is_some(), "id map and index agree on membership");
        (
            Self {
                index,
                ids,
                _marker: std::marker::PhantomData,
            },
            removed,
        )
    }

    /// In-place insert (replaces this handle with the path-copied
    /// successor; other clones are unaffected).
    pub fn insert(&mut self, object: O) -> Result<()> {
        *self = self.with_inserted(object)?;
        Ok(())
    }

    /// In-place remove by id, returning the object if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<O> {
        let (next, removed) = self.with_removed(id);
        if removed.is_some() {
            *self = next;
        }
        removed
    }

    /// The PNN filtering phase over the stored objects.
    pub fn candidates_k(&self, q: &[f64; D], k: usize) -> (Vec<Candidate<'_, O, D>>, FilterStats) {
        self.index.candidates_k(q, k)
    }

    /// Objects whose rects intersect `query`.
    pub fn intersecting(&self, query: &Rect<D>) -> Vec<(&Rect<D>, &O)> {
        self.index.intersecting(query)
    }

    /// Visit every stored object (deterministic order).
    pub fn for_each<F: FnMut(&O)>(&self, mut f: F) {
        self.index.for_each_record(&mut |_, o| f(o));
    }

    /// Materialize the stored objects (deterministic order). O(n) — used
    /// by persistence, re-sharding, and diagnostics, never by the query
    /// or update paths.
    pub fn objects(&self) -> Vec<O> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|o| out.push(o.clone()));
        out
    }

    /// The underlying index.
    pub fn index(&self) -> &I {
        &self.index
    }
}

/// A database that can produce **copy-on-write successors** of itself:
/// the model-level seam the serving layer's snapshot swaps (and the
/// write-coalescing lane) are built on. Implementations:
/// [`crate::engine::UncertainDb`], [`crate::engine2d::UncertainDb2d`]
/// (O(log n) store path copies), and [`crate::shard::ShardedDb`] (path
/// copy of the owning shard only).
pub trait CowModel: Sized {
    /// The stored-object type.
    type Object: Clone;

    /// An object's identifier.
    fn object_id(object: &Self::Object) -> ObjectId;

    /// An object's axis-aligned extent (its uncertainty-region bbox) —
    /// the region an update touches, used for shard routing and for the
    /// verification cache's incremental invalidation.
    fn object_extent(object: &Self::Object) -> Extent;

    /// Is an object with this id stored? O(log n).
    fn contains_id(&self, id: ObjectId) -> bool;

    /// Copy-on-write insert: a successor model with `object` added,
    /// sharing all untouched structure with `self`. Fails on a duplicate
    /// id (`self` unchanged either way).
    fn with_inserted(&self, object: Self::Object) -> Result<Self>;

    /// Copy-on-write remove: a successor model without `id`, plus the
    /// removed object (`None` when absent — the successor then has the
    /// same contents).
    fn with_removed(&self, id: ObjectId) -> (Self, Option<Self::Object>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;

    fn obj(id: u64, lo: f64) -> UncertainObject {
        UncertainObject::uniform(ObjectId(id), lo, lo + 1.0).unwrap()
    }

    fn store(n: u64) -> IndexedStore<UncertainObject, 1> {
        IndexedStore::build(
            (0..n).map(|i| obj(i, i as f64 * 3.0)).collect(),
            Params::default(),
        )
        .unwrap()
    }

    #[test]
    fn build_rejects_duplicates() {
        let objects = vec![obj(1, 0.0), obj(1, 5.0)];
        assert!(matches!(
            IndexedStore::<UncertainObject, 1>::build(objects, Params::default()),
            Err(CoreError::DuplicateObjectId(1))
        ));
    }

    #[test]
    fn cow_insert_and_remove_share_with_old_snapshot() {
        let v0 = store(200);
        let v1 = v0.with_inserted(obj(999, 50.5)).unwrap();
        assert_eq!(v0.len(), 200);
        assert_eq!(v1.len(), 201);
        assert!(!v0.contains(ObjectId(999)));
        assert!(v1.contains(ObjectId(999)));
        let (v2, removed) = v1.with_removed(ObjectId(999));
        assert_eq!(removed.unwrap().id(), ObjectId(999));
        assert_eq!(v2.len(), 200);
        assert!(v1.contains(ObjectId(999)), "old snapshot untouched");
        // Duplicate insert fails without touching anything.
        assert!(v2.with_inserted(obj(7, 0.0)).is_err());
    }

    #[test]
    fn remove_absent_id_is_a_noop() {
        let s = store(10);
        let (t, removed) = s.with_removed(ObjectId(999));
        assert!(removed.is_none());
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn rect_lookup_and_extent_track_updates() {
        let mut s = store(5);
        assert_eq!(s.rect_of(ObjectId(2)), Some(Rect::interval(6.0, 7.0)));
        s.insert(obj(100, 1000.0)).unwrap();
        let e = s.extent().unwrap();
        assert_eq!(e.hi[0], 1001.0);
        s.remove(ObjectId(100)).unwrap();
        let e = s.extent().unwrap();
        assert!(e.hi[0] < 1000.0, "mbr shrinks after remove: {:?}", e);
    }

    #[test]
    fn objects_materializes_everything_exactly_once() {
        let s = store(37);
        let mut ids: Vec<u64> = s.objects().iter().map(|o| o.id().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..37).collect::<Vec<u64>>());
    }
}
