//! The unified C-PNN query pipeline (paper Fig. 3 / Fig. 5).
//!
//! Every query flavor this crate evaluates — 1-D intervals
//! ([`crate::engine::UncertainDb`]), 2-D disks and rectangles
//! ([`crate::engine2d::UncertainDb2d`], [`crate::distance2d`]), and the
//! k-NN extension ([`crate::knn`]) — runs the *same* four phases:
//!
//! 1. **filter** — prune objects that provably cannot qualify (R-tree or
//!    near/far scan; Sec. III of the paper);
//! 2. **init** — build each survivor's distance distribution and the
//!    [`SubregionTable`] (Sec. IV-A, Fig. 7);
//! 3. **verify** — tighten probability bounds with algebraic verifiers
//!    (RS / L-SR / U-SR for 1-NN, Sec. IV-B/C; their k-ary analogues for
//!    k-NN) and classify against the threshold;
//! 4. **refine** — exact per-subregion integration for leftovers,
//!    incrementally (Sec. IV-D).
//!
//! The paper's observation that makes this factoring sound is Sec. IV-A:
//! *"our solution only needs distance pdfs and cdfs"* — once a
//! [`DistanceModel`] has turned its geometry into
//! [`DistanceDistribution`]s, phases 2–4 are dimension-agnostic. The
//! concrete databases are thin instantiations of this module; none of them
//! carries its own copy of the control flow.
//!
//! [`QueryScratch`] holds the allocations the verify/refine phases reuse
//! across queries, plus (when enabled through [`PipelineConfig`]'s
//! `cache` knob) a per-thread [`VerifyCache`] memoizing filter output,
//! distance distributions, and subregion tables by quantized query point
//! (see [`crate::cache`]); the batch executor ([`crate::batch`]) keeps
//! one scratch per worker thread.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bounds::ProbBound;
use crate::cache::{
    CacheConfig, CacheStats, CachedQuery, OutcomeKey, SharedCacheConfig, SharedVerifyCache,
    VerifyCache,
};
use crate::candidate::CandidateSet;
use crate::classify::{Classifier, Label};
use crate::distance::DistanceDistribution;
use crate::error::Result;
use crate::exact::{basic_probabilities, exact_probabilities};
use crate::framework::{
    default_verifiers, extended_verifiers, knn_verifiers, run_verification_into, StageReport,
};
use crate::knn::{knn_probabilities, monte_carlo_knn};
use crate::montecarlo::monte_carlo_probabilities;
use crate::object::ObjectId;
use crate::refine::{incremental_refine_with, RefinementOrder};
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{kernels, VerificationState};

/// Evaluation strategy — the three methods compared throughout Sec. V, plus
/// the sampling baseline of \[9\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Exact probabilities for every candidate by direct numerical
    /// integration (\[5\]); answers thresholded afterwards.
    Basic,
    /// Skip verification; incremental refinement directly ("Refine").
    RefineOnly,
    /// Verifiers first, refinement only for leftovers ("VR" — the paper's
    /// proposed method).
    Verified,
    /// Monte-Carlo sampling over possible worlds (\[9\]).
    MonteCarlo {
        /// Number of sampled worlds.
        worlds: usize,
        /// RNG seed (queries are deterministic given the seed).
        seed: u64,
    },
}

/// A C-PNN query: point, threshold `P`, tolerance `Δ` (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpnnQuery {
    /// The query point `q`.
    pub q: f64,
    /// Threshold `P ∈ (0, 1]`.
    pub threshold: f64,
    /// Tolerance `Δ ∈ [0, 1]`.
    pub tolerance: f64,
}

impl CpnnQuery {
    /// Convenience constructor.
    pub fn new(q: f64, threshold: f64, tolerance: f64) -> Self {
        Self {
            q,
            threshold,
            tolerance,
        }
    }
}

/// Per-candidate verdict in a query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectReport {
    /// The object.
    pub id: ObjectId,
    /// Final probability bound (collapsed to a point for exact strategies).
    pub bound: ProbBound,
    /// Final classification.
    pub label: Label,
}

/// Wall-clock and work statistics for one query (feeds Figs. 9–13).
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Objects in the database.
    pub total_objects: usize,
    /// Candidate set size `|C|` after filtering.
    pub candidates: usize,
    /// Subregion count `M` (0 when no table was built).
    pub subregions: usize,
    /// Filtering (R-tree / near-far scan) time.
    pub filter_time: Duration,
    /// Initialization time (distance distributions + subregion table).
    pub init_time: Duration,
    /// Verification time (all verifier stages).
    pub verify_time: Duration,
    /// Refinement / exact-evaluation time.
    pub refine_time: Duration,
    /// Per-verifier-stage reports (empty for non-verified strategies).
    pub stages: Vec<StageReport>,
    /// Objects that entered refinement.
    pub refined_objects: usize,
    /// Work counter: subregion integrations (VR/Refine) or integrand
    /// evaluations (Basic) or sampled worlds (Monte-Carlo).
    pub integrations: usize,
    /// Did verification alone resolve the query (Fig. 13's metric)?
    pub resolved_by_verification: bool,
}

impl QueryStats {
    /// Total time across all phases.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.init_time + self.verify_time + self.refine_time
    }
}

/// Result of a C-PNN query.
#[derive(Debug, Clone)]
pub struct CpnnResult {
    /// IDs of objects satisfying the query, ascending.
    pub answers: Vec<ObjectId>,
    /// Verdict for every candidate (in candidate order).
    pub reports: Vec<ObjectReport>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Result of a plain PNN query: every candidate with its qualification
/// probability, descending.
#[derive(Debug, Clone)]
pub struct PnnResult {
    /// `(id, probability)` pairs, descending by probability.
    pub probabilities: Vec<(ObjectId, f64)>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Everything about a constrained query except the query *point* (whose
/// type belongs to the [`DistanceModel`]): threshold, tolerance, horizon
/// `k`, and the evaluation strategy.
///
/// ```
/// use cpnn_core::{QuerySpec, Strategy};
///
/// // The paper's C-PNN (Definition 1): threshold P = 0.3, tolerance Δ = 0.01.
/// let nn = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
/// assert_eq!(nn.k, 1);
///
/// // The C-PkNN extension: among the 3 nearest with probability ≥ 0.5.
/// let knn = QuerySpec::knn(3, 0.5, 0.0, Strategy::Verified);
/// assert_eq!((knn.k, knn.threshold), (3, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Threshold `P ∈ (0, 1]`.
    pub threshold: f64,
    /// Tolerance `Δ ∈ [0, 1]`.
    pub tolerance: f64,
    /// Neighbor count: `1` is the paper's C-PNN, larger values the C-PkNN
    /// extension.
    pub k: usize,
    /// Evaluation strategy.
    pub strategy: Strategy,
}

impl QuerySpec {
    /// A 1-NN spec.
    pub fn nn(threshold: f64, tolerance: f64, strategy: Strategy) -> Self {
        Self {
            threshold,
            tolerance,
            k: 1,
            strategy,
        }
    }

    /// A k-NN spec.
    pub fn knn(k: usize, threshold: f64, tolerance: f64, strategy: Strategy) -> Self {
        Self {
            threshold,
            tolerance,
            k,
            strategy,
        }
    }
}

/// Pipeline tuning knobs shared by every model (the model-specific knobs —
/// histogram resolution, R-tree fan-out — live with the model).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Subregion visiting order during incremental refinement.
    pub refinement_order: RefinementOrder,
    /// Adaptive-Simpson tolerance for the Basic baseline.
    pub basic_tolerance: f64,
    /// Add the FL-SR verifier to the 1-NN chain (see
    /// [`crate::verifiers::FarLowerSubregion`]).
    pub extended_verifiers: bool,
    /// Per-thread verification-state cache (see [`crate::cache`]):
    /// capacity 0 (the default) disables it, otherwise each
    /// [`QueryScratch`] lazily grows a [`VerifyCache`] and the pipeline
    /// consults it transparently.
    pub cache: CacheConfig,
    /// Process-wide shared cache tier (see
    /// [`crate::cache::SharedVerifyCache`]): the L2 behind every
    /// worker's per-thread cache. Only engages when `cache` is enabled
    /// too — the execution surfaces (batch, server) build one tier and
    /// attach it to each worker's scratch
    /// ([`QueryScratch::attach_shared`]).
    pub shared_cache: SharedCacheConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            refinement_order: RefinementOrder::DescendingMass,
            basic_tolerance: 1e-6,
            extended_verifiers: false,
            cache: CacheConfig::disabled(),
            shared_cache: SharedCacheConfig::disabled(),
        }
    }
}

/// Output of a model's filtering phase: the surviving objects' distance
/// distributions, plus how much of the call was *pruning* (R-tree probe,
/// near/far scan) as opposed to distribution construction — the pipeline
/// attributes the former to `filter_time` and the latter to `init_time`,
/// matching the paper's phase accounting.
#[derive(Debug)]
pub struct Filtered {
    /// `(id, distance distribution)` per surviving object. Order is
    /// irrelevant; the candidate set re-sorts by near point.
    pub items: Vec<(ObjectId, DistanceDistribution)>,
    /// Time spent pruning (not building distributions).
    pub filter_time: Duration,
}

/// A source of uncertain objects that can answer "which objects might be
/// among the `k` nearest of `q`, and what are their distance
/// distributions?" — the only geometry-specific piece of the pipeline.
///
/// Implementations: 1-D interval databases, 2-D disk/rectangle databases,
/// and plain object slices (see [`crate::distance2d`]). Everything after
/// filtering is shared.
pub trait DistanceModel {
    /// The query-point type (`f64` for 1-D, `[f64; 2]` for 2-D, …).
    type Query: Copy;

    /// Total number of stored objects (for [`QueryStats::total_objects`]).
    fn total_objects(&self) -> usize;

    /// Validate a query point before any work happens.
    fn check_query(&self, q: &Self::Query) -> Result<()>;

    /// The filtering phase: prune and return distance distributions for the
    /// survivors. Over-approximation is sound (the candidate set re-prunes
    /// against the exact `k`-th smallest far point); under-approximation is
    /// not.
    fn filter(&self, q: &Self::Query, k: usize) -> Result<Filtered>;

    /// Snap a query point onto the verification-cache grid (see
    /// [`crate::cache::quantize_coord`]). The default is the identity —
    /// together with the default [`cache_key`](Self::cache_key) it opts a
    /// model out of caching entirely.
    fn quantize_query(&self, q: &Self::Query, quantum: f64) -> Self::Query {
        let _ = quantum;
        *q
    }

    /// Bit-exact cache key of an (already snapped) query point, or `None`
    /// to opt this model out of verification-state caching (the default:
    /// caching is only sound when equal keys imply equal filter output).
    fn cache_key(&self, q: &Self::Query) -> Option<u128> {
        let _ = q;
        None
    }

    /// The raw coordinates of a query point, or `None` when the model
    /// cannot expose them. Used only to let cached verification state
    /// survive *incremental* invalidation ([`VerifyCache::advance_version`]):
    /// entries without coordinates are dropped conservatively whenever a
    /// region-scoped invalidation runs, so the default costs correctness
    /// nothing.
    fn query_coords(&self, q: &Self::Query) -> Option<Vec<f64>> {
        let _ = q;
        None
    }
}

/// Reusable per-query state: the verification buffers and, when caching
/// is enabled, the per-thread [`VerifyCache`]. One scratch per worker
/// thread lets a batch run recycle these across the queries it executes
/// instead of reallocating them per query.
///
/// The cache is created either explicitly ([`with_cache`](Self::with_cache))
/// or lazily on first use from [`PipelineConfig`]'s `cache` field, so the
/// batch executor and query server enable caching purely through
/// configuration.
///
/// ```
/// use cpnn_core::cache::CacheConfig;
/// use cpnn_core::QueryScratch;
///
/// // A scratch with a 64-entry cache snapping queries to a 0.5-wide grid.
/// let mut scratch = QueryScratch::with_cache(CacheConfig::new(64, 0.5));
/// assert_eq!(scratch.cache_stats().lookups(), 0);
///
/// // Serving surfaces pin the snapshot version they evaluate against;
/// // moving it invalidates the cached verification state.
/// scratch.set_snapshot_version(3);
/// ```
#[derive(Debug, Default)]
pub struct QueryScratch {
    state: VerificationState,
    stages: Vec<StageReport>,
    cache: Option<VerifyCache>,
    /// The process-wide L2 behind the per-thread cache, when the owning
    /// execution surface attached one ([`attach_shared`](Self::attach_shared)).
    shared: Option<Arc<SharedVerifyCache>>,
    /// Snapshot version to pin a lazily created cache to.
    snapshot_version: u64,
}

impl QueryScratch {
    /// Fresh scratch (allocates lazily on first use), no cache until a
    /// [`PipelineConfig`] with caching enabled passes through.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh scratch with an eagerly created verification-state cache.
    pub fn with_cache(config: CacheConfig) -> Self {
        let mut scratch = Self::default();
        if config.is_enabled() {
            scratch.cache = Some(VerifyCache::new(config));
        }
        scratch
    }

    /// Cumulative cache counters (all zero when caching never ran).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(VerifyCache::stats)
            .unwrap_or_default()
    }

    /// Attach the process-wide shared tier this scratch should consult on
    /// local misses (and publish fresh fills into). Batch and server
    /// surfaces call this once per worker; the tier only engages on
    /// queries whose config also enables the per-thread cache.
    pub fn attach_shared(&mut self, tier: Arc<SharedVerifyCache>) {
        self.shared = Some(tier);
    }

    /// The attached shared tier, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedVerifyCache>> {
        self.shared.as_ref()
    }

    /// Pin the snapshot version subsequent queries evaluate against.
    /// Moving to a different version drops every cached entry — the
    /// invalidation that keeps copy-on-write updates from serving stale
    /// candidate sets or bounds (see [`crate::cache`]).
    pub fn set_snapshot_version(&mut self, version: u64) {
        self.snapshot_version = version;
        if let Some(cache) = self.cache.as_mut() {
            cache.set_version(version);
        }
    }

    /// Pin a newer snapshot version with the regions the intervening
    /// updates touched: cached entries provably unaffected by every
    /// region survive, the rest drop
    /// ([`VerifyCache::advance_version`]). `None` regions — the updates'
    /// footprint is unknown — fall back to the full clear of
    /// [`set_snapshot_version`](Self::set_snapshot_version).
    pub fn advance_snapshot(&mut self, version: u64, regions: Option<&[crate::shard::Extent]>) {
        match regions {
            Some(regions) => {
                self.snapshot_version = version;
                if let Some(cache) = self.cache.as_mut() {
                    cache.advance_version(version, regions);
                }
            }
            None => self.set_snapshot_version(version),
        }
    }

    /// The cache to consult under `cfg`, creating it on first use when
    /// `cfg` enables caching and none exists yet. An explicitly created
    /// cache ([`with_cache`](Self::with_cache)) wins over `cfg`.
    fn cache_mut(&mut self, cfg: &CacheConfig) -> Option<&mut VerifyCache> {
        if self.cache.is_none() && cfg.is_enabled() {
            let mut cache = VerifyCache::new(*cfg);
            cache.set_version(self.snapshot_version);
            self.cache = Some(cache);
        }
        self.cache.as_mut()
    }
}

/// Evaluate a constrained query (C-PNN for `spec.k == 1`, C-PkNN above)
/// through the unified pipeline.
pub fn cpnn<M: DistanceModel + ?Sized>(
    model: &M,
    q: &M::Query,
    spec: &QuerySpec,
    cfg: &PipelineConfig,
) -> Result<CpnnResult> {
    cpnn_with(model, q, spec, cfg, &mut QueryScratch::new())
}

/// [`cpnn`] with caller-provided scratch buffers.
///
/// When `cfg` (or the scratch itself) enables the verification-state
/// cache, the query point is first snapped onto the quantization grid
/// ([`DistanceModel::quantize_query`] — the identity at quantum 0) and
/// the memoized candidate set / subregion table for that snapped point is
/// reused instead of re-running filter + init. Verify and refine always
/// run, so thresholds, tolerances, and strategies need no cache keying;
/// see [`crate::cache`] for the correctness argument.
pub fn cpnn_with<M: DistanceModel + ?Sized>(
    model: &M,
    q: &M::Query,
    spec: &QuerySpec,
    cfg: &PipelineConfig,
    scratch: &mut QueryScratch,
) -> Result<CpnnResult> {
    model.check_query(q)?;
    // Validate the spec before any filtering work happens.
    Classifier::new(spec.threshold, spec.tolerance)?;
    let k = spec.k.max(1);
    let mut stats = QueryStats {
        total_objects: model.total_objects(),
        ..Default::default()
    };

    // Cache consultation: snap the point, derive its key, look up the
    // memoized verification state. `slot` remembers where fresh state
    // should be stored; `q_eval` is the point actually evaluated (snapped
    // whenever the cache is active — deterministically, so answers never
    // depend on cache contents).
    let mut q_eval = *q;
    let mut slot: Option<(u128, usize)> = None;
    let mut hit: Option<CachedQuery> = None;
    if let Some(cache) = scratch.cache_mut(&cfg.cache) {
        // Guard against a mutated or swapped-out database behind the
        // same scratch (the snapshot version handles the serving path;
        // this catches in-place `insert`/`remove` and cross-database
        // reuse through the public seam).
        cache.pin_source(stats.total_objects);
        let snapped = model.quantize_query(q, cache.quantum());
        if let Some(point) = model.cache_key(&snapped) {
            q_eval = snapped;
            hit = cache.lookup(point, k);
            slot = Some((point, k));
        }
    }
    // L2: a local miss consults the shared tier. A shared hit installs
    // the entry into the local cache (so subsequent repeats on this
    // worker stay lock-free) and reclassifies the counted miss.
    let tier = scratch
        .shared
        .clone()
        .filter(|_| cfg.shared_cache.is_enabled());
    let total_objects = stats.total_objects;
    let version = scratch.snapshot_version;
    if hit.is_none() {
        if let (Some((point, kk)), Some(tier)) = (slot, tier.as_ref()) {
            if let Some(entry) = tier.lookup(point, kk, version, total_objects) {
                if let Some(cache) = scratch.cache_mut(&cfg.cache) {
                    cache.insert(point, kk, entry.clone());
                    cache.promote_miss_to_shared_hit();
                }
                hit = Some(entry);
            }
        }
    }

    // Outcome memoization: an entry hit (either tier) whose entry has
    // already been evaluated under this exact (spec, config) band replays
    // the memoized reports — skipping verify *and* refine. Sound because
    // the entry key pins (snapped point, k, version, source) and the
    // outcome key pins every remaining input bit-exactly; strategies are
    // deterministic functions of (candidates, spec, config).
    let okey = slot.map(|_| OutcomeKey::new(spec, cfg));
    if let (Some(entry), Some(okey)) = (hit.as_ref(), okey.as_ref()) {
        if let Some(reports) = entry.outcome(okey) {
            if let Some(cache) = scratch.cache_mut(&cfg.cache) {
                cache.note_outcome_hit();
            }
            stats.candidates = entry.candidates().len();
            return Ok(collect(reports.as_ref().clone(), stats));
        }
    }

    // `fresh_coords` is `Some` exactly when filter + init ran here — the
    // fill that should publish a complete entry upward afterwards.
    let mut fresh_coords: Option<Option<Vec<f64>>> = None;
    let (cands, cached_table): (Arc<CandidateSet>, Option<Arc<SubregionTable>>) = match hit {
        Some(entry) => {
            stats.candidates = entry.candidates().len();
            (Arc::clone(entry.candidates()), entry.table().cloned())
        }
        None => {
            let (cands, init_time) = prepare(model, &q_eval, k, &mut stats)?;
            stats.init_time = init_time;
            let cands = Arc::new(cands);
            if let Some((point, k)) = slot {
                let coords = model.query_coords(&q_eval);
                if let Some(cache) = scratch.cache_mut(&cfg.cache) {
                    cache.insert(
                        point,
                        k,
                        CachedQuery::for_query(Arc::clone(&cands), coords.clone(), k),
                    );
                }
                fresh_coords = Some(coords);
            }
            (cands, None)
        }
    };
    let mut built_table = None;
    let result = evaluate_candidates_impl(
        &cands,
        spec,
        cfg,
        scratch,
        stats,
        cached_table.clone(),
        &mut built_table,
    );
    if let (Some((point, kk)), Ok(res)) = (slot, result.as_ref()) {
        let okey = okey.expect("slot implies outcome key");
        let reports = Arc::new(res.reports.clone());
        // Local bookkeeping: attach the freshly built table and memoize
        // this band's outcome on the entry.
        if let Some(cache) = scratch.cache_mut(&cfg.cache) {
            if let Some(table) = built_table.clone() {
                cache.attach_table(point, kk, table);
            }
            cache.attach_outcome(point, kk, okey, Arc::clone(&reports));
        }
        // Shared bookkeeping: a fresh fill publishes the complete entry
        // upward (admission control applies inside); an entry hit pushes
        // just the new table/outcome onto the shared copy, if the tier
        // holds one. A shared hit needs no republish of the entry itself.
        if let Some(tier) = tier.as_ref() {
            match fresh_coords {
                Some(coords) => {
                    let mut entry = CachedQuery::for_query(Arc::clone(&cands), coords, kk);
                    if let Some(table) = built_table.or_else(|| cached_table.clone()) {
                        entry.set_table(table);
                    }
                    entry.record_outcome(okey, reports);
                    tier.publish(point, kk, version, total_objects, entry);
                }
                None => {
                    if let Some(table) = built_table {
                        tier.attach_table(point, kk, version, table);
                    }
                    tier.attach_outcome(point, kk, version, okey, reports);
                }
            }
        }
    }
    result
}

/// Fan a filtering pass out over shards and merge the survivors.
///
/// `shards` yields `(bound, model)` pairs where `bound` is a conservative
/// lower bound on the distance from `q` to anything that model stores
/// (e.g. the mindist from `q` to the shard's minimum bounding box). A
/// shard whose bound exceeds the merged candidate *horizon* — the `k`-th
/// smallest far point collected so far — is skipped outright: every one of
/// its objects has a near distance of at least `bound`, so the candidate
/// assembly ([`CandidateSet::from_distances`]) would prune it anyway.
/// The merged result is therefore identical to filtering one unsharded
/// model over the same objects (property-tested in
/// `tests/proptest_shard.rs`). Visit shards in ascending `bound` order for
/// maximal pruning; the order affects how much work is skipped, never the
/// merged candidate set.
pub fn fan_out_filter<'a, M, I>(shards: I, q: &M::Query, k: usize) -> Result<Filtered>
where
    M: DistanceModel + 'a,
    I: IntoIterator<Item = (f64, &'a M)>,
{
    let k = k.max(1);
    let mut items: Vec<(ObjectId, DistanceDistribution)> = Vec::new();
    let mut filter_time = Duration::ZERO;
    // The `k` smallest far points seen so far, sorted ascending. Once full,
    // its last element is the merged horizon; until then every object
    // anywhere is still a candidate, so the horizon stays infinite.
    let mut k_fars: Vec<f64> = Vec::with_capacity(k);
    for (bound, shard) in shards {
        let horizon = if k_fars.len() == k {
            k_fars[k - 1]
        } else {
            f64::INFINITY
        };
        if bound > horizon {
            continue;
        }
        let filtered = shard.filter(q, k)?;
        filter_time += filtered.filter_time;
        for (id, dist) in filtered.items {
            let far = dist.far();
            if k_fars.len() < k || far < k_fars[k - 1] {
                let at = k_fars.partition_point(|f| *f <= far);
                k_fars.insert(at, far);
                k_fars.truncate(k);
            }
            items.push((id, dist));
        }
    }
    Ok(Filtered { items, filter_time })
}

/// Run the strategy dispatch — verify → refine, exact, or Monte-Carlo —
/// over an already-assembled candidate set.
///
/// This is the back half of [`cpnn_with`]: the shard-aware batch executor
/// calls it directly after merging per-shard filter results, so the merged
/// evaluation is *the same code* as the unsharded one. `stats` carries
/// whatever the caller already measured (`total_objects`, `candidates`,
/// `filter_time`, and the distribution-construction share of `init_time`);
/// subregion-table construction time is added here.
pub fn evaluate_candidates(
    cands: &CandidateSet,
    spec: &QuerySpec,
    cfg: &PipelineConfig,
    scratch: &mut QueryScratch,
    stats: QueryStats,
) -> Result<CpnnResult> {
    evaluate_candidates_impl(cands, spec, cfg, scratch, stats, None, &mut None)
}

/// [`evaluate_candidates`] with verification-cache plumbing: `cached_table`
/// supplies a memoized [`SubregionTable`] (skipping the build), and a
/// table built here is handed back through `built_table` so the caller can
/// attach it to the cache entry.
fn evaluate_candidates_impl(
    cands: &CandidateSet,
    spec: &QuerySpec,
    cfg: &PipelineConfig,
    scratch: &mut QueryScratch,
    mut stats: QueryStats,
    cached_table: Option<Arc<SubregionTable>>,
    built_table: &mut Option<Arc<SubregionTable>>,
) -> Result<CpnnResult> {
    let classifier = Classifier::new(spec.threshold, spec.tolerance)?;
    let k = spec.k.max(1);
    let init_time = stats.init_time;
    let init_start = Instant::now();
    // Reuse the memoized table or build (and report back) a fresh one.
    let mut obtain_table = |cands: &CandidateSet| -> Arc<SubregionTable> {
        match cached_table.clone() {
            Some(table) => table,
            None => {
                let table = Arc::new(SubregionTable::build(cands));
                *built_table = Some(Arc::clone(&table));
                table
            }
        }
    };

    match (spec.strategy, k) {
        (Strategy::Basic, 1) => {
            stats.init_time = init_time + init_start.elapsed();
            let start = Instant::now();
            let (probs, evals) = basic_probabilities(cands, cfg.basic_tolerance);
            stats.refine_time = start.elapsed();
            stats.integrations = evals;
            Ok(finish_exact(cands, &classifier, &probs, stats))
        }
        (Strategy::MonteCarlo { worlds, seed }, 1) => {
            stats.init_time = init_time + init_start.elapsed();
            let start = Instant::now();
            let mut rng = StdRng::seed_from_u64(seed);
            let probs = monte_carlo_probabilities(cands, worlds, &mut rng)?;
            stats.refine_time = start.elapsed();
            stats.integrations = worlds;
            Ok(finish_exact(cands, &classifier, &probs, stats))
        }
        (Strategy::MonteCarlo { worlds, seed }, k) => {
            stats.init_time = init_time + init_start.elapsed();
            let start = Instant::now();
            let mut rng = StdRng::seed_from_u64(seed);
            let probs = monte_carlo_knn(cands, k, worlds, &mut rng)?;
            stats.refine_time = start.elapsed();
            stats.integrations = worlds;
            Ok(finish_exact(cands, &classifier, &probs, stats))
        }
        (Strategy::Basic, k) => {
            let table = obtain_table(cands);
            stats.subregions = table.subregion_count();
            stats.init_time = init_time + init_start.elapsed();
            let start = Instant::now();
            let probs = knn_probabilities(&table, k);
            stats.refine_time = start.elapsed();
            stats.integrations = active_subregions(&table);
            Ok(finish_exact(cands, &classifier, &probs, stats))
        }
        (strategy, k) => {
            // Verify → refine (or refine alone), over the subregion table.
            let table = obtain_table(cands);
            stats.subregions = table.subregion_count();
            stats.init_time = init_time + init_start.elapsed();
            scratch.state.reset(&table);
            scratch.stages.clear();
            if strategy == Strategy::Verified {
                let verify_start = Instant::now();
                let chain = match (k, cfg.extended_verifiers) {
                    (1, false) => default_verifiers(),
                    (1, true) => extended_verifiers(),
                    (k, _) => knn_verifiers(k),
                };
                run_verification_into(
                    &table,
                    &classifier,
                    &chain,
                    &mut scratch.state,
                    &mut scratch.stages,
                );
                stats.verify_time = verify_start.elapsed();
                stats.resolved_by_verification = scratch.state.unknown_count() == 0;
                stats.stages = scratch.stages.clone();
            }
            let refine_start = Instant::now();
            let report = if k == 1 {
                incremental_refine_with(
                    &table,
                    &classifier,
                    &mut scratch.state,
                    cfg.refinement_order,
                    |i, j, scr| kernels::nn_qualification(&table, i, j, scr),
                )
            } else {
                incremental_refine_with(
                    &table,
                    &classifier,
                    &mut scratch.state,
                    cfg.refinement_order,
                    |i, j, scr| kernels::knn_qualification(&table, i, j, k, scr),
                )
            };
            stats.refine_time = refine_start.elapsed();
            stats.refined_objects = report.refined_objects;
            stats.integrations = report.integrations;
            Ok(finish_state(cands, &scratch.state, stats))
        }
    }
}

/// Exact qualification probabilities for every candidate (PNN for `k == 1`,
/// PkNN above), descending.
pub fn pnn<M: DistanceModel + ?Sized>(model: &M, q: &M::Query, k: usize) -> Result<PnnResult> {
    model.check_query(q)?;
    let k = k.max(1);
    let mut stats = QueryStats {
        total_objects: model.total_objects(),
        ..Default::default()
    };
    let (cands, init_time) = prepare(model, q, k, &mut stats)?;
    let init_start = Instant::now();
    let table = SubregionTable::build(&cands);
    stats.subregions = table.subregion_count();
    stats.init_time = init_time + init_start.elapsed();
    let start = Instant::now();
    let probs = if k == 1 {
        let (probs, integrations) = exact_probabilities(&table);
        stats.integrations = integrations;
        probs
    } else {
        knn_probabilities(&table, k)
    };
    stats.refine_time = start.elapsed();
    let mut probabilities: Vec<(ObjectId, f64)> = cands
        .members()
        .iter()
        .zip(&probs)
        .map(|(m, &p)| (m.id, p))
        .collect();
    probabilities.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(PnnResult {
        probabilities,
        stats,
    })
}

/// Filter + candidate-set assembly. Returns the candidates and the slice of
/// the model call that belongs to `init_time` (distribution construction).
fn prepare<M: DistanceModel + ?Sized>(
    model: &M,
    q: &M::Query,
    k: usize,
    stats: &mut QueryStats,
) -> Result<(CandidateSet, Duration)> {
    let start = Instant::now();
    let filtered = model.filter(q, k)?;
    let elapsed = start.elapsed();
    stats.filter_time = filtered.filter_time.min(elapsed);
    let init_from_filter = elapsed.saturating_sub(stats.filter_time);
    let assemble_start = Instant::now();
    let cands = CandidateSet::from_distances(filtered.items, k);
    stats.candidates = cands.len();
    Ok((cands, init_from_filter + assemble_start.elapsed()))
}

/// Number of `(object, left subregion)` cells with non-negligible mass —
/// the integration count of a full exact k-NN evaluation.
fn active_subregions(table: &SubregionTable) -> usize {
    let l = table.left_regions();
    (0..table.n_objects())
        .map(|i| (0..l).filter(|&j| table.mass(i, j) > MASS_EPS).count())
        .sum()
}

fn finish_exact(
    cands: &CandidateSet,
    classifier: &Classifier,
    probs: &[f64],
    stats: QueryStats,
) -> CpnnResult {
    let reports: Vec<ObjectReport> = cands
        .members()
        .iter()
        .zip(probs)
        .map(|(m, &p)| {
            let bound = ProbBound::exact(p);
            ObjectReport {
                id: m.id,
                bound,
                label: classifier.classify(&bound),
            }
        })
        .collect();
    collect(reports, stats)
}

fn finish_state(cands: &CandidateSet, state: &VerificationState, stats: QueryStats) -> CpnnResult {
    let reports: Vec<ObjectReport> = cands
        .members()
        .iter()
        .zip(state.bounds.iter().zip(&state.labels))
        .map(|(m, (&bound, &label))| ObjectReport {
            id: m.id,
            bound,
            label,
        })
        .collect();
    collect(reports, stats)
}

fn collect(reports: Vec<ObjectReport>, stats: QueryStats) -> CpnnResult {
    let mut answers: Vec<ObjectId> = reports
        .iter()
        .filter(|r| r.label == Label::Satisfy)
        .map(|r| r.id)
        .collect();
    answers.sort_unstable();
    CpnnResult {
        answers,
        reports,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::testutil::fig7_scenario;

    /// A model over a plain slice of 1-D objects: near/far scan filtering,
    /// no index. Used to test the pipeline in isolation from `UncertainDb`.
    struct SliceModel(Vec<crate::object::UncertainObject>);

    impl DistanceModel for SliceModel {
        type Query = f64;

        fn total_objects(&self) -> usize {
            self.0.len()
        }

        fn check_query(&self, q: &f64) -> Result<()> {
            if !q.is_finite() {
                return Err(CoreError::InvalidQueryPoint(*q));
            }
            Ok(())
        }

        fn filter(&self, q: &f64, _k: usize) -> Result<Filtered> {
            let start = Instant::now();
            let mut items = Vec::with_capacity(self.0.len());
            for o in &self.0 {
                items.push((o.id(), DistanceDistribution::from_pdf(o.pdf(), *q)?));
            }
            Ok(Filtered {
                items,
                filter_time: start.elapsed(),
            })
        }
    }

    fn fig7_model() -> SliceModel {
        let (_, objects) = fig7_scenario();
        SliceModel(objects)
    }

    #[test]
    fn all_strategies_agree_through_the_generic_pipeline() {
        let model = fig7_model();
        let cfg = PipelineConfig::default();
        for p in [0.05, 0.3, 0.45, 0.7] {
            let mut answers = Vec::new();
            for strategy in [Strategy::Basic, Strategy::RefineOnly, Strategy::Verified] {
                let res = cpnn(&model, &0.0, &QuerySpec::nn(p, 0.0, strategy), &cfg).unwrap();
                answers.push(res.answers);
            }
            assert_eq!(answers[0], answers[1], "P = {p}");
            assert_eq!(answers[0], answers[2], "P = {p}");
        }
    }

    #[test]
    fn knn_strategies_agree_through_the_generic_pipeline() {
        let model = fig7_model();
        let cfg = PipelineConfig::default();
        for p in [0.3, 0.6, 0.9] {
            let exact = cpnn(
                &model,
                &0.0,
                &QuerySpec::knn(2, p, 0.0, Strategy::Basic),
                &cfg,
            )
            .unwrap();
            let vr = cpnn(
                &model,
                &0.0,
                &QuerySpec::knn(2, p, 0.0, Strategy::Verified),
                &cfg,
            )
            .unwrap();
            assert_eq!(exact.answers, vr.answers, "P = {p}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let model = fig7_model();
        let cfg = PipelineConfig::default();
        let mut scratch = QueryScratch::new();
        for q in [-1.0, 0.0, 2.0, 5.0] {
            let spec = QuerySpec::nn(0.3, 0.01, Strategy::Verified);
            let reused = cpnn_with(&model, &q, &spec, &cfg, &mut scratch).unwrap();
            let fresh = cpnn(&model, &q, &spec, &cfg).unwrap();
            assert_eq!(reused.answers, fresh.answers, "q = {q}");
            assert_eq!(reused.reports.len(), fresh.reports.len());
            for (a, b) in reused.reports.iter().zip(&fresh.reports) {
                assert_eq!(a.label, b.label, "q = {q}");
            }
        }
    }

    #[test]
    fn pnn_and_pknn_share_the_same_entry_point() {
        let model = fig7_model();
        let p1 = pnn(&model, &0.0, 1).unwrap();
        let total: f64 = p1.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let p2 = pnn(&model, &0.0, 2).unwrap();
        let total2: f64 = p2.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total2 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_inputs_rejected_before_any_work() {
        let model = fig7_model();
        let cfg = PipelineConfig::default();
        assert!(matches!(
            cpnn(
                &model,
                &f64::NAN,
                &QuerySpec::nn(0.3, 0.0, Strategy::Verified),
                &cfg
            ),
            Err(CoreError::InvalidQueryPoint(_))
        ));
        assert!(matches!(
            cpnn(
                &model,
                &0.0,
                &QuerySpec::nn(0.0, 0.0, Strategy::Verified),
                &cfg
            ),
            Err(CoreError::InvalidThreshold(_))
        ));
    }
}
