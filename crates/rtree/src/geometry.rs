//! Axis-aligned rectangles and the distance metrics used by the filtering
//! phase of the C-PNN pipeline.
//!
//! The paper's filtering step (\[8\], Sec. III) prunes every object whose
//! *minimum* distance from the query point exceeds `fmin`, the smallest
//! *maximum* distance among all objects. Both metrics ([`Rect::min_dist`] and
//! [`Rect::max_dist`]) are defined here for arbitrary dimension `D`; the
//! paper's experiments use `D = 1` (intervals) and the 2-D extension uses
//! `D = 2`.

/// An axis-aligned rectangle in `D` dimensions (an interval when `D = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    min: [f64; D],
    max: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Create a rectangle from its min and max corners.
    ///
    /// # Panics
    /// Panics if any `min[d] > max[d]` or any coordinate is not finite —
    /// geometry bugs should fail fast rather than corrupt the index.
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        for d in 0..D {
            assert!(
                min[d].is_finite() && max[d].is_finite() && min[d] <= max[d],
                "invalid rect on dim {d}: [{}, {}]",
                min[d],
                max[d]
            );
        }
        Self { min, max }
    }

    /// A degenerate rectangle containing a single point.
    pub fn point(p: [f64; D]) -> Self {
        Self::new(p, p)
    }

    /// Min corner.
    pub fn min(&self) -> &[f64; D] {
        &self.min
    }

    /// Max corner.
    pub fn max(&self) -> &[f64; D] {
        &self.max
    }

    /// Center point.
    pub fn center(&self) -> [f64; D] {
        let mut c = [0.0; D];
        for (d, v) in c.iter_mut().enumerate() {
            *v = 0.5 * (self.min[d] + self.max[d]);
        }
        c
    }

    /// Extent along dimension `d`.
    pub fn extent(&self, d: usize) -> f64 {
        self.max[d] - self.min[d]
    }

    /// Hyper-volume (length in 1-D, area in 2-D).
    pub fn area(&self) -> f64 {
        (0..D).map(|d| self.extent(d)).product()
    }

    /// Sum of extents (the R*-tree "margin" criterion).
    pub fn margin(&self) -> f64 {
        (0..D).map(|d| self.extent(d)).sum()
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut min = self.min;
        let mut max = self.max;
        for d in 0..D {
            min[d] = min[d].min(other.min[d]);
            max[d] = max[d].max(other.max[d]);
        }
        Self { min, max }
    }

    /// Area increase needed to absorb `other` (the Guttman insertion
    /// criterion).
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Do the two rectangles overlap (closed-boundary semantics)?
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Does `self` fully contain `other`?
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..D).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Does `self` contain the point `p`?
    pub fn contains_point(&self, p: &[f64; D]) -> bool {
        (0..D).all(|d| self.min[d] <= p[d] && p[d] <= self.max[d])
    }

    /// Euclidean distance from `p` to the *nearest* point of the rectangle
    /// (zero if `p` is inside). This is the `MINDIST` of Roussopoulos et al.
    /// and the paper's *near point* `ni` when applied to an uncertainty
    /// region.
    pub fn min_dist(&self, p: &[f64; D]) -> f64 {
        let mut s = 0.0;
        for (d, &x) in p.iter().enumerate() {
            let diff = if x < self.min[d] {
                self.min[d] - x
            } else if x > self.max[d] {
                x - self.max[d]
            } else {
                0.0
            };
            s += diff * diff;
        }
        s.sqrt()
    }

    /// Euclidean distance from `p` to the *farthest* point of the rectangle —
    /// the paper's *far point* `fi` when applied to an uncertainty region.
    pub fn max_dist(&self, p: &[f64; D]) -> f64 {
        let mut s = 0.0;
        for (d, &x) in p.iter().enumerate() {
            let diff = (x - self.min[d]).abs().max((x - self.max[d]).abs());
            s += diff * diff;
        }
        s.sqrt()
    }
}

impl Rect<1> {
    /// Convenience constructor for 1-D intervals.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Self::new([lo], [hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "invalid rect")]
    fn inverted_rect_panics() {
        let _ = Rect::new([1.0], [0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid rect")]
    fn nan_rect_panics() {
        let _ = Rect::new([f64::NAN], [0.0]);
    }

    #[test]
    fn area_margin_center() {
        let r = Rect::new([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        assert_eq!(r.center(), [1.0, 1.5]);
        assert_eq!(r.extent(1), 3.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let b = Rect::new([2.0, 0.0], [3.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u, Rect::new([0.0, 0.0], [3.0, 2.0]));
        assert_eq!(a.enlargement(&b), 6.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn intersection_predicates() {
        let a = Rect::interval(0.0, 2.0);
        let b = Rect::interval(2.0, 4.0); // touching counts as intersecting
        let c = Rect::interval(2.1, 4.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_rect(&Rect::interval(0.5, 1.5)));
        assert!(!a.contains_rect(&b));
        assert!(a.contains_point(&[2.0]));
        assert!(!a.contains_point(&[2.01]));
    }

    #[test]
    fn min_and_max_dist_1d() {
        let r = Rect::interval(2.0, 6.0);
        // Query left of the interval.
        assert_eq!(r.min_dist(&[0.0]), 2.0);
        assert_eq!(r.max_dist(&[0.0]), 6.0);
        // Query inside: near point 0, far point = distance to far edge.
        assert_eq!(r.min_dist(&[3.0]), 0.0);
        assert_eq!(r.max_dist(&[3.0]), 3.0);
        // Query right.
        assert_eq!(r.min_dist(&[8.0]), 2.0);
        assert_eq!(r.max_dist(&[8.0]), 6.0);
    }

    #[test]
    fn min_and_max_dist_2d() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let q = [2.0, 0.5];
        assert!((r.min_dist(&q) - 1.0).abs() < 1e-12);
        // Farthest corner is (0,0) or (0,1): dist = sqrt(4 + 0.25)
        assert!((r.max_dist(&q) - (4.25f64).sqrt()).abs() < 1e-12);
        // Point inside.
        assert_eq!(r.min_dist(&[0.5, 0.5]), 0.0);
    }

    #[test]
    fn min_dist_never_exceeds_max_dist() {
        let r = Rect::new([-1.0, 2.0], [3.0, 5.0]);
        for q in [[-5.0, 0.0], [1.0, 3.0], [10.0, 10.0], [0.0, 4.9]] {
            assert!(r.min_dist(&q) <= r.max_dist(&q) + 1e-15);
        }
    }

    #[test]
    fn point_rect_is_degenerate() {
        let p = Rect::point([1.0, 2.0]);
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.min_dist(&[1.0, 2.0]), 0.0);
        assert_eq!(p.max_dist(&[1.0, 2.0]), 0.0);
    }
}
