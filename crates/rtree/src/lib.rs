//! # cpnn-rtree — from-scratch R-tree substrate
//!
//! The C-PNN paper's pipeline begins with a **filtering** phase that uses an
//! R-tree to prune objects with zero qualification probability (Sec. III,
//! after Cheng et al.'s TKDE 2004 pruning rule \[8\]). The original
//! implementation used Hadjieleftheriou's spatial index library \[18\]; this
//! crate re-implements the substrate from scratch:
//!
//! * [`Rect`] — axis-aligned rectangles in const-generic dimension `D`, with
//!   the `min_dist` / `max_dist` metrics the pruning rule is built on;
//! * [`RTree`] — a **persistent** (path-copying) Guttman R-tree: quadratic
//!   split, least-enlargement insertion, condense-tree deletion, STR bulk
//!   loading. Every node sits behind an `Arc`, so a handle is an immutable
//!   snapshot, `Clone` is O(1), and [`RTree::with_inserted`] /
//!   [`RTree::with_removed`] produce a new snapshot in O(log n) node
//!   copies while readers pinned to the old handle are never torn;
//! * range search, best-first nearest-neighbor / k-NN search;
//! * [`RTree::pnn_candidates`] — the paper's filtering phase: a single
//!   best-first traversal that returns the candidate set
//!   `{ Xi : min_dist(q, Ui) ≤ fmin }` where `fmin = min_k max_dist(q, Uk)`;
//! * [`SpatialIndex`] — the seam the storage layers program against
//!   (bulk-load for the initial build, path-copying for incremental
//!   change), with [`RTree`] as the canonical implementation.
//!
//! The tree is generic over dimension; the paper's experiments are 1-D
//! (intervals) and the 2-D extension indexes circles' bounding boxes.

#![warn(missing_docs)]

mod bulk;
mod filter;
mod geometry;
mod index;
mod nn;
mod node;
mod split;
mod tree;

pub use filter::{Candidate, FilterStats};
pub use geometry::Rect;
pub use index::SpatialIndex;
pub use node::Params;
pub use tree::{RTree, TreeStats};
