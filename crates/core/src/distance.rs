//! Distance pdfs and cdfs (paper Definition 2, Fig. 6).
//!
//! For an uncertain object `Xi` and query point `q`, the random variable
//! `Ri = |Xi − q|` has a *distance pdf* `di(r)` and *distance cdf* `Di(r)`.
//! For a histogram uncertainty pdf the distance pdf is obtained exactly by
//! **folding** the histogram around `q`: `di(r) = f(q + r) + f(q − r)`, with
//! breakpoints at the folded images `|e − q|` of every bin edge `e` (plus 0
//! when `q` lies inside the region). The result is again a histogram, whose
//! cdf is piecewise linear — exactly the representation the subregion
//! machinery requires (Sec. IV-A).

use cpnn_pdf::{discretize, HistogramPdf, Pdf};

use crate::error::Result;

/// The distribution of `Ri = |Xi − q|`, stored as a histogram on
/// `[near, far]` (paper Definition 3: near point `ni`, far point `fi`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceDistribution {
    hist: HistogramPdf,
}

impl DistanceDistribution {
    /// Fold `pdf` around the query point `q`.
    ///
    /// The fold is exact: every returned histogram bin has constant density,
    /// with bin edges at the folded images of the source bin edges.
    pub fn from_pdf(pdf: &HistogramPdf, q: f64) -> Result<Self> {
        let (lo, hi) = pdf.support();
        let edges = pdf.edges();
        // The folded breakpoints `|e − q|` form two sorted runs over the
        // ascending edges — strictly descending while `e < q`, ascending
        // from there — so merging the runs yields them sorted in O(n)
        // instead of a comparison sort. All values are non-negative
        // (`abs` never produces −0.0), so ties are bitwise equal and the
        // merged value sequence is exactly what sorting produced.
        let split = edges.partition_point(|&e| e < q);
        let n_edges = edges.len();
        let inside = q >= lo && q <= hi;
        // Largest breakpoint = what `breaks.last()` was after the old sort.
        let scale = (edges[0] - q)
            .abs()
            .max((edges[n_edges - 1] - q).abs())
            .max(1.0);
        let mut merged: Vec<f64> = Vec::with_capacity(n_edges + 1);
        let push = |merged: &mut Vec<f64>, v: f64| match merged.last() {
            Some(&last) if v - last <= 1e-12 * scale => {}
            _ => merged.push(v),
        };
        if inside {
            // 0 is the global minimum of `|e − q|`, so it merges in first.
            push(&mut merged, 0.0);
        }
        // `a` walks edges[..split] top-down (values ascending), `b` walks
        // edges[split..] bottom-up (values ascending).
        let (mut a, mut b) = (split, split);
        while a > 0 || b < n_edges {
            let va = if a > 0 {
                (edges[a - 1] - q).abs()
            } else {
                f64::INFINITY
            };
            let vb = if b < n_edges {
                (edges[b] - q).abs()
            } else {
                f64::INFINITY
            };
            if va <= vb {
                push(&mut merged, va);
                a -= 1;
            } else {
                push(&mut merged, vb);
                b += 1;
            }
        }
        debug_assert!(merged.len() >= 2, "degenerate distance support");
        let densities: Vec<f64> = merged
            .windows(2)
            .map(|w| {
                let m = 0.5 * (w[0] + w[1]);
                pdf.density(q + m) + pdf.density(q - m)
            })
            .collect();
        Ok(Self {
            hist: HistogramPdf::from_densities(merged, densities)?,
        })
    }

    /// Wrap an already-folded distance histogram — the decode half of the
    /// distributed-serving wire codec.
    ///
    /// A shard process folds its objects' pdfs locally
    /// ([`from_pdf`](Self::from_pdf)) and ships the resulting histogram's
    /// raw parts; the router reassembles it through
    /// [`HistogramPdf::from_raw_parts`] (which validates every histogram
    /// invariant without renormalizing) and wraps it here. Because the
    /// round trip preserves every `f64` bit, a routed candidate's
    /// distribution compares equal to the one a single-process
    /// [`ShardedDb`](crate::shard::ShardedDb) would have built, which is
    /// what makes routed answers bit-identical to local ones
    /// (property-tested in `crates/router/tests/proptest_router.rs`).
    pub fn from_histogram(hist: HistogramPdf) -> Self {
        Self { hist }
    }

    /// Re-bin onto at most `max_bins` equal-width bins (mass-preserving at
    /// the new edges). This is the paper's "represent a distance pdf as a
    /// histogram" step: it bounds the number of subregion endpoints, trading
    /// resolution for verifier cost. Folds of uniform objects (≤ 3 bins) are
    /// returned unchanged.
    pub fn with_max_bins(self, max_bins: usize) -> Result<Self> {
        if max_bins == 0 || self.hist.bar_count() <= max_bins {
            return Ok(self);
        }
        Ok(Self {
            hist: discretize(&self.hist, max_bins)?,
        })
    }

    /// Near point `ni`: the minimum possible distance.
    pub fn near(&self) -> f64 {
        self.hist.support().0
    }

    /// Far point `fi`: the maximum possible distance.
    pub fn far(&self) -> f64 {
        self.hist.support().1
    }

    /// Distance cdf `Di(r)` (piecewise linear, clamped to `[0, 1]`).
    pub fn cdf(&self, r: f64) -> f64 {
        self.hist.cdf(r)
    }

    /// Bulk cdf evaluation over an **ascending** slice of radii: a single
    /// merge pass over the histogram edges, appended to `out` (cleared
    /// first). Bit-identical to calling [`Self::cdf`] per point — see
    /// [`HistogramPdf::cdf_many_into`].
    pub fn cdf_many_into(&self, rs: &[f64], out: &mut Vec<f64>) {
        self.hist.cdf_many_into(rs, out);
    }

    /// Resumable chunk form of [`Self::cdf_many_into`]: evaluate one
    /// ascending chunk, continuing the histogram merge from bin `*bin`.
    /// Chunked calls over a split slice are bit-identical to one whole-slice
    /// call — see [`HistogramPdf::cdf_many_resume`].
    pub fn cdf_many_resume(&self, rs: &[f64], bin: &mut usize, out: &mut [f64]) {
        self.hist.cdf_many_resume(rs, bin, out);
    }

    /// Distance pdf `di(r)`.
    pub fn density(&self, r: f64) -> f64 {
        self.hist.density(r)
    }

    /// `Pr[a ≤ Ri ≤ b]`.
    pub fn mass_between(&self, a: f64, b: f64) -> f64 {
        self.hist.mass_between(a, b)
    }

    /// Inverse cdf (used by the Monte-Carlo baseline).
    pub fn quantile(&self, p: f64) -> f64 {
        self.hist.quantile(p)
    }

    /// Bin edges of the distance histogram — the "points at which the
    /// distance pdf changes" that must become subregion endpoints.
    pub fn breakpoints(&self) -> &[f64] {
        self.hist.edges()
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &HistogramPdf {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 6(b): uniform object on [l, u], query inside.
    #[test]
    fn fold_uniform_query_inside() {
        // X1 uniform on [0, 10], q = 3. Distance pdf: 2/10 on [0,3], 1/10 on [3,7].
        let pdf = HistogramPdf::uniform(0.0, 10.0).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 3.0).unwrap();
        assert_eq!(d.near(), 0.0);
        assert_eq!(d.far(), 7.0);
        assert!((d.density(1.0) - 0.2).abs() < 1e-12);
        assert!((d.density(5.0) - 0.1).abs() < 1e-12);
        assert!((d.cdf(3.0) - 0.6).abs() < 1e-12);
        assert!((d.cdf(7.0) - 1.0).abs() < 1e-12);
        // cdf is piecewise linear: halfway along [3,7] adds half of 0.4.
        assert!((d.cdf(5.0) - 0.8).abs() < 1e-12);
    }

    /// Paper Fig. 6(c): query outside the region — the distance pdf is a
    /// pure shift of the uncertainty pdf.
    #[test]
    fn fold_uniform_query_outside() {
        let pdf = HistogramPdf::uniform(4.0, 9.0).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 1.0).unwrap();
        assert_eq!(d.near(), 3.0);
        assert_eq!(d.far(), 8.0);
        assert!((d.density(5.0) - 0.2).abs() < 1e-12);
        assert_eq!(d.density(2.0), 0.0);
        assert!((d.cdf(5.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fold_at_exact_center_merges_breakpoints() {
        let pdf = HistogramPdf::uniform(0.0, 10.0).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 5.0).unwrap();
        assert_eq!(d.near(), 0.0);
        assert_eq!(d.far(), 5.0);
        // All mass folds symmetrically: density 2·(1/10).
        assert!((d.density(2.0) - 0.2).abs() < 1e-12);
        assert!((d.cdf(5.0) - 1.0).abs() < 1e-12);
        assert_eq!(d.histogram().bar_count(), 1);
    }

    #[test]
    fn fold_multibar_histogram_is_exact() {
        // Two bars: [0,2] mass 0.25, [2,6] mass 0.75; q = 4 (inside bar 2).
        let pdf = HistogramPdf::from_masses(vec![0.0, 2.0, 6.0], vec![0.25, 0.75]).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 4.0).unwrap();
        assert_eq!(d.near(), 0.0);
        assert_eq!(d.far(), 4.0);
        // For r in [0, 2): density = f(4+r) + f(4-r) = 0.1875 + 0.1875 (both in bar 2,
        // height 0.75/4) except 4+r leaves support at r=2.
        assert!((d.density(1.0) - 0.375).abs() < 1e-12);
        // For r in (2, 4): 4+r outside; 4-r in bar 1 (height 0.125).
        assert!((d.density(3.0) - 0.125).abs() < 1e-12);
        // Total mass must be 1.
        assert!((d.cdf(4.0) - 1.0).abs() < 1e-12);
        // Cross-check masses: Pr[R ≤ 2] = mass of [2,6] = 0.75.
        assert!((d.cdf(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rebinning_preserves_mass_and_support() {
        let pdf = HistogramPdf::from_masses((0..=100).map(|i| i as f64).collect(), vec![0.01; 100])
            .unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 17.3).unwrap();
        let (near, far) = (d.near(), d.far());
        let coarse = d.clone().with_max_bins(16).unwrap();
        assert_eq!(coarse.histogram().bar_count(), 16);
        assert!((coarse.near() - near).abs() < 1e-12);
        assert!((coarse.far() - far).abs() < 1e-12);
        assert!((coarse.cdf(far) - 1.0).abs() < 1e-12);
        // Coarse cdf approximates the fine cdf.
        for r in [5.0, 20.0, 40.0, 70.0] {
            assert!((coarse.cdf(r) - d.cdf(r)).abs() < 0.08, "r = {r}");
        }
    }

    #[test]
    fn rebinning_noop_when_already_coarse() {
        let pdf = HistogramPdf::uniform(0.0, 1.0).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 0.5).unwrap();
        let same = d.clone().with_max_bins(64).unwrap();
        assert_eq!(d, same);
    }

    #[test]
    fn cdf_many_matches_scalar_bitwise() {
        let pdf = HistogramPdf::from_masses(vec![0.0, 2.0, 6.0], vec![0.25, 0.75]).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 4.0).unwrap();
        let rs = [-1.0, 0.0, 0.5, 1.0, 2.0, 2.0, 3.7, 4.0, 9.0];
        let mut out = Vec::new();
        d.cdf_many_into(&rs, &mut out);
        for (&r, &v) in rs.iter().zip(&out) {
            assert_eq!(v.to_bits(), d.cdf(r).to_bits(), "r = {r}");
        }
    }

    #[test]
    fn quantile_round_trips() {
        let pdf = HistogramPdf::from_masses(vec![0.0, 1.0, 5.0], vec![0.5, 0.5]).unwrap();
        let d = DistanceDistribution::from_pdf(&pdf, 2.0).unwrap();
        for p in [0.1, 0.5, 0.9] {
            let r = d.quantile(p);
            assert!((d.cdf(r) - p).abs() < 1e-9);
        }
    }
}
