//! Probabilistic verifiers (paper Sec. IV).
//!
//! A verifier inspects the subregion table and tightens the probability
//! bounds of still-`Unknown` objects using algebraic operations only — no
//! numerical integration. The three verifiers from the paper, in ascending
//! cost order (Table III):
//!
//! | verifier | tightens | cost |
//! |----------|----------|------|
//! | [`RightmostSubregion`] (RS)  | upper | `O(|C|)` |
//! | [`LowerSubregion`] (L-SR)    | lower | `O(|C|·M)` |
//! | [`UpperSubregion`] (U-SR)    | upper | `O(|C|·M)` |
//!
//! Besides the object-level bounds, L-SR and U-SR also record per-subregion
//! qualification bounds `[q_ij.l, q_ij.u]`, which the incremental refinement
//! stage (Sec. IV-D) reuses.

mod flsr;
pub mod kernels;
mod lsr;
mod products;
pub mod reference;
mod rs;
pub mod simd;
mod usr;

pub use flsr::FarLowerSubregion;
pub use kernels::KernelScratch;
pub use lsr::LowerSubregion;
pub use products::ExcludeOneProduct;
pub use rs::RightmostSubregion;
pub use usr::UpperSubregion;

use crate::bounds::ProbBound;
use crate::classify::Label;
use crate::subregion::SubregionTable;

/// Mutable state threaded through the verification pipeline: object-level
/// probability bounds, labels, and per-subregion qualification bounds.
///
/// The backing vectors are reusable: [`VerificationState::reset`] re-sizes
/// them for a new table without discarding capacity, which is what lets the
/// batch executor keep one state per worker thread.
#[derive(Debug, Clone, Default)]
pub struct VerificationState {
    /// `[p_i.l, p_i.u]` per candidate.
    pub bounds: Vec<ProbBound>,
    /// Current verdict per candidate.
    pub labels: Vec<Label>,
    /// `q_ij.l` flattened as `i·L + j` (left subregions only).
    pub qij_lo: Vec<f64>,
    /// `q_ij.u` flattened as `i·L + j`.
    pub qij_hi: Vec<f64>,
    /// Reusable kernel buffers (survival factors, exclude-one products,
    /// Poisson-binomial DP states, integrand coefficients, refinement
    /// order). Living here means every path that reuses the state — the
    /// per-query scratch, the batch executor's per-thread states — gets
    /// allocation-free verify/refine loops for free.
    pub kernel: KernelScratch,
}

impl VerificationState {
    /// Fresh state: vacuous bounds, every object `Unknown`,
    /// `[q_ij.l, q_ij.u] = [0, 1]`.
    pub fn new(table: &SubregionTable) -> Self {
        let mut state = Self::default();
        state.reset(table);
        state
    }

    /// Re-initialize for `table`, reusing the existing allocations.
    pub fn reset(&mut self, table: &SubregionTable) {
        let n = table.n_objects();
        let l = table.left_regions();
        self.bounds.clear();
        self.bounds.resize(n, ProbBound::vacuous());
        self.labels.clear();
        self.labels.resize(n, Label::Unknown);
        self.qij_lo.clear();
        self.qij_lo.resize(n * l, 0.0);
        self.qij_hi.clear();
        self.qij_hi.resize(n * l, 1.0);
        // The shared survival products describe a specific table; a reset
        // means a new query, so force a rebuild on first verifier use.
        self.kernel.products_ready = false;
    }

    /// Recompute `p_i.l = Σ_j s_ij · q_ij.l` (paper Eq. 4) and raise the
    /// object's lower bound if it improved.
    pub fn recompute_lower(&mut self, table: &SubregionTable, i: usize) {
        let l = table.left_regions();
        let mut lo = 0.0;
        for j in 0..l {
            lo += table.mass(i, j) * self.qij_lo[i * l + j];
        }
        self.bounds[i].raise_lo(lo);
    }

    /// Recompute `p_i.u = Σ_j s_ij · q_ij.u` (rightmost subregion
    /// contributes zero) and lower the object's upper bound if it improved.
    pub fn recompute_upper(&mut self, table: &SubregionTable, i: usize) {
        let l = table.left_regions();
        let mut hi = 0.0;
        for j in 0..l {
            hi += table.mass(i, j) * self.qij_hi[i * l + j];
        }
        self.bounds[i].lower_hi(hi);
    }

    /// Number of objects still labelled `Unknown`.
    pub fn unknown_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l == Label::Unknown).count()
    }
}

/// A probability-bound tightening pass.
pub trait Verifier {
    /// Short name for reports ("RS", "L-SR", "U-SR").
    fn name(&self) -> &'static str;

    /// Tighten bounds of `Unknown` objects in `state`.
    fn apply(&self, table: &SubregionTable, state: &mut VerificationState);
}
