//! The query router: the front-end that makes a fleet of shard processes
//! answer exactly like one in-process [`ShardedDb`](cpnn_core::ShardedDb).
//!
//! ## Soundness of the router-side merge
//!
//! Equivalence rests on three reused seams, not on new algorithms:
//!
//! 1. **Selection** — the router keeps each shard's exact extent and
//!    object count (refreshed from every reply's status) and runs the
//!    *same* [`select_overlapping`] the in-process database runs, so
//!    routed and local queries visit identical shard sets in identical
//!    order. A selected shard that cannot answer is a typed
//!    [`RouterError::ShardUnavailable`] — the router refuses to
//!    under-approximate a candidate set, so degradation is never a wrong
//!    answer.
//! 2. **Merge** — shard replies carry raw filter output (bit-exact
//!    histograms, see [`crate::wire`]); [`merge_replies`] wraps each
//!    reply in a buffered [`DistanceModel`] and runs the *same*
//!    [`fan_out_filter`](cpnn_core::pipeline::fan_out_filter) over them, sorted by `(mindist, shard index)`
//!    — so the merged survivor set is a pure function of the reply
//!    *contents*, independent of arrival order (property-tested with
//!    shuffled replies).
//! 3. **Evaluation** — the merged candidates run once, router-side,
//!    through the *same* [`CandidateSet::from_distances`] +
//!    [`evaluate_candidates`](pipeline::evaluate_candidates) the
//!    single-process pipeline uses. Verify/refine never runs on a shard.
//!
//! Updates route by the *same* [`slab_of`] arithmetic over the *same*
//! persisted boundaries, against a router-owned id map (seeded and
//! resynced from shard [`Request::Ids`] replies) that reproduces the
//! cross-shard duplicate check of [`ShardedDb::insert`](cpnn_core::ShardedDb::insert)
//! and the remove-absent no-op of `with_removed`.

use std::collections::HashMap;
use std::io::BufReader;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

use cpnn_core::candidate::CandidateSet;
use cpnn_core::pipeline::{self, CpnnResult, Filtered, QueryStats};
use cpnn_core::shard::{select_overlapping, slab_of, Extent};
use cpnn_core::{
    CoreError, DistanceModel, ObjectId, PipelineConfig, QueryScratch, QuerySpec, ServerStats,
};

use crate::map::ShardMap;
use crate::net::ShardStream;
use crate::wire::{
    read_frame, write_frame, Request, Response, ShardProcessStats, ShardStatus, UpdateOp, WireError,
};
use crate::RoutedModel;

/// Fault-handling knobs for the router's shard connections.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Per-request socket timeout (read and write); a hung shard
    /// surfaces as a timed-out request, not a wedged router.
    pub timeout: Duration,
    /// Retry attempts after the first failure of an idempotent request
    /// (each retried on a fresh connection). Update bursts are **not**
    /// idempotent and are never resent — a reply lost after the burst
    /// was sent might already be applied, and a blind resend would
    /// double-apply it.
    pub retries: u32,
    /// Base reconnect backoff; attempt `n` sleeps `n × backoff`.
    pub backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Typed router failures — the degradation taxonomy. A dead shard is
/// never a panic and never a silently smaller answer.
#[derive(Debug)]
pub enum RouterError {
    /// A shard did not answer within the configured retry budget
    /// (connection refused, timed out, or torn mid-reply). The query or
    /// burst that needed it fails typed; other shards are unaffected.
    ShardUnavailable {
        /// Index of the shard in the shard map.
        shard: usize,
        /// What the last attempt observed.
        detail: String,
    },
    /// A shard answered with a typed remote error (bad query, filter
    /// failure). The connection is healthy; nothing is retried.
    Shard {
        /// Index of the shard in the shard map.
        shard: usize,
        /// The remote error text.
        message: String,
    },
    /// A shard answered with a structurally invalid or unexpected frame
    /// — a protocol bug or version skew, not a transient fault.
    Protocol {
        /// Index of the shard in the shard map.
        shard: usize,
        /// What was wrong with the reply.
        detail: String,
    },
    /// Router-side evaluation of the merged candidates failed (the same
    /// errors single-process evaluation can produce).
    Query(CoreError),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            Self::Shard { shard, message } => write!(f, "shard {shard} error: {message}"),
            Self::Protocol { shard, detail } => {
                write!(f, "shard {shard} protocol violation: {detail}")
            }
            Self::Query(e) => write!(f, "query evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<CoreError> for RouterError {
    fn from(e: CoreError) -> Self {
        Self::Query(e)
    }
}

/// Router-side counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries answered.
    pub queries: u64,
    /// Filter requests fanned out (one per selected shard per query).
    pub fanned_out: u64,
    /// Shards skipped by horizon pruning (non-empty shards the selection
    /// proved irrelevant before any bytes moved).
    pub pruned: u64,
    /// Idempotent requests retried after a failure.
    pub retries: u64,
    /// Successful redials of a shard connection.
    pub reconnects: u64,
    /// Update bursts forwarded (one per shard touched per burst).
    pub bursts: u64,
    /// Individual update ops forwarded to shards.
    pub ops_forwarded: u64,
}

/// One burst's outcome, mirroring the single-process
/// [`FlushReport`](cpnn_core::FlushReport) + per-op
/// [`UpdateOutcome`](cpnn_core::UpdateOutcome)s.
#[derive(Debug)]
pub struct UpdateReport {
    /// The router's published version after the burst (bumped only when
    /// at least one op applied, matching `flush_writes`).
    pub version: u64,
    /// Total objects across the fleet after the burst.
    pub objects: u64,
    /// Per-op outcome, in submission order.
    pub outcomes: Vec<Result<(), String>>,
    /// Ops in the burst.
    pub batch: usize,
}

/// Fleet-wide counters: the router's own, plus every shard's, summed.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// The router's published version.
    pub version: u64,
    /// Total objects across the fleet.
    pub objects: u64,
    /// Wire filter requests served, summed over shards.
    pub shard_filters: u64,
    /// Hosted-server counters, summed over shards.
    pub server: ServerStats,
    /// The router's own counters.
    pub router: RouterStats,
}

/// A buffered shard reply masquerading as a [`DistanceModel`]: `filter`
/// replays the shipped survivor set verbatim. Wrapping replies in these
/// lets the router merge through the *real* [`fan_out_filter`](cpnn_core::pipeline::fan_out_filter) — same
/// horizon bookkeeping, same skip rule — instead of a reimplementation.
struct BufferedReply {
    items: Vec<(ObjectId, cpnn_core::DistanceDistribution)>,
}

impl DistanceModel for BufferedReply {
    type Query = ();

    fn total_objects(&self) -> usize {
        self.items.len()
    }

    fn check_query(&self, _q: &()) -> cpnn_core::Result<()> {
        Ok(())
    }

    fn filter(&self, _q: &(), _k: usize) -> cpnn_core::Result<Filtered> {
        Ok(Filtered {
            items: self.items.clone(),
            filter_time: Duration::ZERO,
        })
    }
}

/// One shard's reply to a fan-out, paired with the selection metadata
/// the merge needs. Public so the merge-determinism property test can
/// build shuffled reply sets directly.
#[derive(Debug)]
pub struct ShardReply {
    /// `mindist(q, shard extent)` — the bound selection computed.
    pub near: f64,
    /// Shard index (the deterministic tie-break).
    pub shard: usize,
    /// The shard's raw filter output.
    pub items: Vec<(ObjectId, cpnn_core::DistanceDistribution)>,
}

/// Merge shard filter replies into one [`Filtered`] — the routed twin of
/// [`ShardedDb::filter`](cpnn_core::ShardedDb). Replies are first sorted
/// by `(near, shard index)` — the exact order [`select_overlapping`]
/// yields — then fed through the real [`fan_out_filter`](cpnn_core::pipeline::fan_out_filter), so the result
/// is independent of the order replies arrived in: shuffling the input
/// changes nothing (property-tested in `tests/proptest_router.rs`).
pub fn merge_replies(mut replies: Vec<ShardReply>, k: usize) -> cpnn_core::Result<Filtered> {
    replies.sort_by(|a, b| a.near.total_cmp(&b.near).then(a.shard.cmp(&b.shard)));
    let buffered: Vec<(f64, BufferedReply)> = replies
        .into_iter()
        .map(|r| (r.near, BufferedReply { items: r.items }))
        .collect();
    pipeline::fan_out_filter(buffered.iter().map(|(near, b)| (*near, b)), &(), k)
}

/// A live connection to one shard (writer half + buffered reader half of
/// the same socket).
struct Connection {
    writer: ShardStream,
    reader: BufReader<ShardStream>,
}

/// Everything the router tracks about one shard.
struct ShardState {
    addr: crate::net::ShardAddr,
    conn: Option<Connection>,
    /// Last status the shard reported (exact extent + count: the inputs
    /// to selection, refreshed by every Hello and Update reply).
    objects: u64,
    extent: Option<Extent>,
}

/// The routing front-end. Owns the shard map, the per-shard connections,
/// and the authoritative id → shard map; runs merge + verify/refine
/// in-process. Single-threaded by design — one router is one client of
/// the fleet, and tests compare it against one in-process database.
pub struct QueryRouter<M: RoutedModel> {
    shards: Vec<ShardState>,
    axis: usize,
    bounds: Vec<f64>,
    /// id → owning shard, for the cross-shard duplicate check and
    /// remove routing. Seeded from `Ids` at connect, updated on applied
    /// ops, resynced from the shard on every reconnect.
    id_map: HashMap<u64, usize>,
    cfg: RouterConfig,
    pipeline: PipelineConfig,
    scratch: QueryScratch,
    version: u64,
    stats: RouterStats,
    _model: PhantomData<fn() -> M>,
}

impl<M: RoutedModel> QueryRouter<M> {
    /// Connect to every shard in `map`, handshake, and seed the id map.
    /// Evaluation of merged candidates runs under `pipeline` (use the
    /// same configuration as the shards' build for bit-for-bit parity
    /// with a single process).
    pub fn connect(
        map: &ShardMap,
        pipeline: PipelineConfig,
        cfg: RouterConfig,
    ) -> Result<Self, RouterError> {
        let mut router = Self {
            shards: map
                .addrs
                .iter()
                .map(|addr| ShardState {
                    addr: addr.clone(),
                    conn: None,
                    objects: 0,
                    extent: None,
                })
                .collect(),
            axis: map.axis,
            bounds: map.bounds.clone(),
            id_map: HashMap::new(),
            cfg,
            pipeline,
            scratch: QueryScratch::new(),
            version: 0,
            stats: RouterStats::default(),
            _model: PhantomData,
        };
        for shard in 0..router.shards.len() {
            router.ensure_connected(shard)?;
        }
        Ok(router)
    }

    /// The partition axis (from the shard map).
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The router's published version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total objects across the fleet, per the latest shard statuses.
    pub fn objects(&self) -> u64 {
        self.shards.iter().map(|s| s.objects).sum()
    }

    /// The router's own counters.
    pub fn router_stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Dial, handshake, and resync the id map for `shard` if it has no
    /// live connection. Redial failures burn through the retry budget
    /// with linear backoff before degrading to
    /// [`RouterError::ShardUnavailable`].
    fn ensure_connected(&mut self, shard: usize) -> Result<(), RouterError> {
        if self.shards[shard].conn.is_some() {
            return Ok(());
        }
        let mut last = String::new();
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                std::thread::sleep(self.cfg.backoff * attempt);
                self.stats.retries += 1;
            }
            match self.dial(shard) {
                Ok(()) => {
                    self.stats.reconnects += 1;
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(RouterError::ShardUnavailable {
            shard,
            detail: last,
        })
    }

    /// One dial + handshake + id resync attempt.
    fn dial(&mut self, shard: usize) -> Result<(), String> {
        let stream = ShardStream::connect(&self.shards[shard].addr).map_err(|e| e.to_string())?;
        stream
            .set_timeouts(Some(self.cfg.timeout))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut conn = Connection {
            writer: stream,
            reader,
        };
        let status = match exchange::<M>(&mut conn, &Request::Hello).map_err(|e| e.to_string())? {
            Response::Hello(status) => status,
            Response::Error(msg) => return Err(format!("handshake rejected: {msg}")),
            _ => return Err("unexpected handshake reply".into()),
        };
        let ids = match exchange::<M>(&mut conn, &Request::Ids).map_err(|e| e.to_string())? {
            Response::Ids(ids) => ids,
            Response::Error(msg) => return Err(format!("id sync rejected: {msg}")),
            _ => return Err("unexpected id-sync reply".into()),
        };
        // Resync: drop every stale entry owned by this shard, then
        // re-seed from the authoritative list. A shard that lost queued
        // (unflushed) writes in a crash thereby also loses their id-map
        // entries, keeping router placement consistent with what the
        // shard actually recovered.
        self.id_map.retain(|_, owner| *owner != shard);
        self.id_map.extend(ids.into_iter().map(|id| (id, shard)));
        self.apply_status(shard, &status);
        self.shards[shard].conn = Some(conn);
        Ok(())
    }

    fn apply_status(&mut self, shard: usize, status: &ShardStatus) {
        self.shards[shard].objects = status.objects;
        self.shards[shard].extent = status.extent.clone();
        self.version = self.version.max(status.version);
    }

    /// Send `req` and read its reply on `shard`'s live connection; any
    /// wire failure drops the connection and is returned raw for the
    /// caller's retry policy.
    fn exchange_once(&mut self, shard: usize, req: &Request<M>) -> Result<Response, WireError> {
        let conn = self.shards[shard]
            .conn
            .as_mut()
            .expect("exchange_once requires a live connection");
        let result = exchange::<M>(conn, req);
        if result.is_err() {
            self.shards[shard].conn = None;
        }
        result
    }

    /// Send an **idempotent** request with the full retry + reconnect
    /// policy, degrading to a typed error when the budget is exhausted.
    fn request_idempotent(
        &mut self,
        shard: usize,
        req: &Request<M>,
    ) -> Result<Response, RouterError> {
        let mut last: Option<WireError> = None;
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                std::thread::sleep(self.cfg.backoff * attempt);
                self.stats.retries += 1;
            }
            self.ensure_connected(shard)?;
            match self.exchange_once(shard, req) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            }
        }
        let last = last.expect("at least one attempt ran");
        if last.is_disconnect() {
            Err(RouterError::ShardUnavailable {
                shard,
                detail: last.to_string(),
            })
        } else {
            Err(RouterError::Protocol {
                shard,
                detail: last.to_string(),
            })
        }
    }

    /// Answer one constrained query: select → fan out → merge → evaluate
    /// once. Bit-for-bit the single-process answer (see the module docs
    /// for the argument, `tests/proptest_router.rs` for the proof).
    pub fn query(&mut self, q: &M::Query, spec: &QuerySpec) -> Result<CpnnResult, RouterError> {
        // Validate the spec before any wire traffic, mirroring the
        // single-process pipeline's pre-filter validation.
        cpnn_core::Classifier::new(spec.threshold, spec.tolerance).map_err(RouterError::Query)?;
        let k = spec.k.max(1);
        self.stats.queries += 1;
        let start = Instant::now();
        let summaries: Vec<(Option<Extent>, usize)> = self
            .shards
            .iter()
            .map(|s| (s.extent.clone(), s.objects as usize))
            .collect();
        let selected = select_overlapping(&summaries, q, k);
        let nonempty = summaries.iter().filter(|(e, _)| e.is_some()).count();
        self.stats.pruned += (nonempty - selected.len()) as u64;
        let select_time = start.elapsed();

        // Fan out: write every request first (the shards filter in
        // parallel), then collect replies in selection order. A lost
        // reply is retried on a fresh connection — Filter is idempotent —
        // and a shard that stays silent fails the query typed: dropping
        // its candidates could under-approximate the answer.
        let req_of = |q: &M::Query, k: usize| Request::<M>::Filter {
            coords: crate::query_coords::<M>(q),
            k: k as u64,
        };
        let mut pending: Vec<(usize, bool)> = Vec::with_capacity(selected.len());
        for &(_, shard) in &selected {
            self.ensure_connected(shard)?;
            let sent = {
                let conn = self.shards[shard].conn.as_mut().expect("just connected");
                write_frame(&mut conn.writer, &req_of(q, k).encode()).is_ok()
            };
            if !sent {
                self.shards[shard].conn = None;
            }
            self.stats.fanned_out += 1;
            pending.push((shard, sent));
        }
        let mut replies: Vec<ShardReply> = Vec::with_capacity(selected.len());
        for (&(near, shard), &(pshard, sent)) in selected.iter().zip(&pending) {
            debug_assert_eq!(shard, pshard);
            let resp = if sent {
                match self.read_reply(shard) {
                    Ok(resp) => resp,
                    // Pipelined reply lost: fall back to the sequential
                    // retry path (fresh connection, full budget).
                    Err(_) => self.request_idempotent(shard, &req_of(q, k))?,
                }
            } else {
                self.request_idempotent(shard, &req_of(q, k))?
            };
            let items = match resp {
                Response::Candidates { version, items } => {
                    self.version = self.version.max(version);
                    items
                }
                Response::Error(message) => return Err(RouterError::Shard { shard, message }),
                _ => {
                    return Err(RouterError::Protocol {
                        shard,
                        detail: "expected a Candidates reply".into(),
                    })
                }
            };
            replies.push(ShardReply { near, shard, items });
        }

        // Merge through the real fan-out seam, then evaluate once.
        let mut filtered = merge_replies(replies, k).map_err(RouterError::Query)?;
        filtered.filter_time += select_time;
        let elapsed = start.elapsed();
        let mut stats = QueryStats {
            total_objects: summaries.iter().map(|(_, n)| n).sum(),
            ..Default::default()
        };
        stats.filter_time = filtered.filter_time.min(elapsed);
        let init_from_filter = elapsed.saturating_sub(stats.filter_time);
        let assemble = Instant::now();
        let cands = CandidateSet::from_distances(filtered.items, k);
        stats.candidates = cands.len();
        stats.init_time = init_from_filter + assemble.elapsed();
        pipeline::evaluate_candidates(&cands, spec, &self.pipeline, &mut self.scratch, stats)
            .map_err(RouterError::Query)
    }

    /// Read one frame + decode on `shard`'s live connection.
    fn read_reply(&mut self, shard: usize) -> Result<Response, WireError> {
        let conn = self.shards[shard]
            .conn
            .as_mut()
            .expect("read_reply requires a live connection");
        let result = read_reply_frame(&mut conn.reader);
        if result.is_err() {
            self.shards[shard].conn = None;
        }
        result
    }

    /// Forward one coalesced burst, routing each op to its owning shard
    /// by the same slab arithmetic and duplicate/no-op semantics as the
    /// in-process database (see the module docs). Returns a typed error
    /// — applying *none* of the remaining ops — when an owning shard is
    /// unavailable; Update requests are never resent (not idempotent).
    pub fn update(&mut self, ops: Vec<UpdateOp<M>>) -> Result<UpdateReport, RouterError> {
        let batch = ops.len();
        let mut outcomes: Vec<Option<Result<(), String>>> = Vec::with_capacity(batch);
        outcomes.resize_with(batch, || None);
        // Simulate placement against the id map, exactly as a sequential
        // in-process burst would resolve: a duplicate insert fails
        // locally, a remove of an absent id succeeds as a no-op, and
        // intra-burst interactions (insert-then-remove of the same id)
        // resolve in submission order.
        // Per shard: (op index, tentative insert id to retract on
        // failure, the op itself).
        type RoutedOp<M> = (usize, Option<u64>, UpdateOp<M>);
        let mut per_shard: Vec<Vec<RoutedOp<M>>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                UpdateOp::Insert(object) => {
                    let id = M::object_id(&object).0;
                    if self.id_map.contains_key(&id) {
                        outcomes[i] = Some(Err(CoreError::DuplicateObjectId(id).to_string()));
                        continue;
                    }
                    let center = M::object_extent(&object).center(self.axis);
                    let shard = slab_of(&self.bounds, center);
                    self.id_map.insert(id, shard);
                    per_shard[shard].push((i, Some(id), UpdateOp::Insert(object)));
                }
                UpdateOp::Remove(id) => match self.id_map.remove(&id.0) {
                    Some(shard) => per_shard[shard].push((i, None, UpdateOp::Remove(id))),
                    // Absent id: a no-op success, mirroring
                    // `with_removed` (and the serve loop's behavior).
                    None => outcomes[i] = Some(Ok(())),
                },
            }
        }
        for (shard, burst) in per_shard.into_iter().enumerate() {
            if burst.is_empty() {
                continue;
            }
            self.ensure_connected(shard)?;
            let mut indices = Vec::with_capacity(burst.len());
            let mut insert_ids = Vec::with_capacity(burst.len());
            let mut shard_ops = Vec::with_capacity(burst.len());
            for (i, id, op) in burst {
                indices.push(i);
                insert_ids.push(id);
                shard_ops.push(op);
            }
            self.stats.bursts += 1;
            self.stats.ops_forwarded += indices.len() as u64;
            let resp = match self.exchange_once(shard, &Request::Update(shard_ops)) {
                Ok(resp) => resp,
                Err(e) => {
                    // The burst may or may not have been applied; only a
                    // resync (on the next reconnect) knows. Drop this
                    // shard's tentative id-map entries now so they are
                    // re-derived from truth, and degrade typed.
                    self.id_map.retain(|_, owner| *owner != shard);
                    return Err(RouterError::ShardUnavailable {
                        shard,
                        detail: e.to_string(),
                    });
                }
            };
            match resp {
                Response::Update {
                    status,
                    outcomes: shard_outcomes,
                } => {
                    if shard_outcomes.len() != indices.len() {
                        return Err(RouterError::Protocol {
                            shard,
                            detail: "outcome count mismatch".into(),
                        });
                    }
                    for ((&i, insert_id), outcome) in
                        indices.iter().zip(&insert_ids).zip(shard_outcomes)
                    {
                        // A failed insert never landed: retract its
                        // tentative id-map entry.
                        if outcome.is_err() {
                            if let Some(id) = insert_id {
                                self.id_map.remove(id);
                            }
                        }
                        outcomes[i] = Some(outcome);
                    }
                    self.apply_status(shard, &status);
                }
                Response::Error(message) => {
                    return Err(RouterError::Shard { shard, message });
                }
                _ => {
                    return Err(RouterError::Protocol {
                        shard,
                        detail: "expected an Update reply".into(),
                    })
                }
            }
        }
        let outcomes: Vec<Result<(), String>> = outcomes
            .into_iter()
            .map(|o| o.expect("every op resolved locally or by a shard reply"))
            .collect();
        if outcomes.iter().any(|o| o.is_ok()) && batch > 0 {
            // Publish: one version bump per burst with at least one
            // applied op, mirroring `flush_writes`.
            self.version += 1;
        }
        Ok(UpdateReport {
            version: self.version,
            objects: self.objects(),
            outcomes,
            batch,
        })
    }

    /// Aggregate counters across the fleet (idempotent; retried).
    pub fn stats(&mut self) -> Result<ClusterStats, RouterError> {
        let mut shard_filters = 0u64;
        let mut server = ServerStats::default();
        for shard in 0..self.shards.len() {
            let resp = self.request_idempotent(shard, &Request::Stats)?;
            let ShardProcessStats { filters, server: s } = match resp {
                Response::Stats(stats) => stats,
                Response::Error(message) => return Err(RouterError::Shard { shard, message }),
                _ => {
                    return Err(RouterError::Protocol {
                        shard,
                        detail: "expected a Stats reply".into(),
                    })
                }
            };
            shard_filters += filters;
            server.served += s.served;
            server.updates += s.updates;
            server.coalesced_batches += s.coalesced_batches;
            server.applied_updates += s.applied_updates;
            server.cache_hits += s.cache_hits;
            server.cache_misses += s.cache_misses;
            server.shared_hits += s.shared_hits;
            server.outcome_hits += s.outcome_hits;
            server.wal_records += s.wal_records;
            server.checkpoints += s.checkpoints;
        }
        Ok(ClusterStats {
            version: self.version,
            objects: self.objects(),
            shard_filters,
            server,
            router: self.stats.clone(),
        })
    }
}

/// One request/reply exchange on an established connection.
fn exchange<M: RoutedModel>(
    conn: &mut Connection,
    req: &Request<M>,
) -> Result<Response, WireError> {
    write_frame(&mut conn.writer, &req.encode())?;
    read_reply_frame(&mut conn.reader)
}

fn read_reply_frame(reader: &mut BufReader<ShardStream>) -> Result<Response, WireError> {
    match read_frame(reader)? {
        Some(payload) => Response::decode(&payload),
        // A clean close where a reply was due is still a dead shard.
        None => Err(WireError::Torn("connection closed before reply")),
    }
}
