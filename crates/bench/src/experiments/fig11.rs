//! Fig. 11 — *Analysis of VR*: per-phase breakdown (filtering,
//! verification, refinement) across thresholds.
//!
//! Paper shape: filtering time is constant; verification is small (~1 ms)
//! and roughly constant; refinement shrinks as P grows and vanishes for
//! P > 0.3.

use cpnn_core::Strategy;

use crate::experiments::{longbeach_db, workload_queries, DEFAULT_DELTA};
use crate::harness::run_queries;
use crate::report::{ms, Table};

/// Run the experiment. Verification is reported as init + verifier passes
/// (the paper's Fig. 5 counts initialization as part of verification).
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 11",
        "VR phase breakdown vs. threshold",
        &[
            "P",
            "filter (ms)",
            "verify (ms)",
            "refine (ms)",
            "refined integ.",
            "resolved by verif.",
        ],
    );
    table.note("paper: verification ≈ 1 ms; refinement → 0 for P > 0.3");
    for p in [0.0f64, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let p = p.max(0.05); // threshold must be > 0
        let s = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Verified);
        table.push_row(vec![
            format!("{p:.2}"),
            ms(s.avg_filter),
            ms(s.avg_init + s.avg_verify),
            ms(s.avg_refine),
            format!("{:.1}", s.avg_integrations),
            format!("{:.2}", s.resolved_fraction),
        ]);
    }
    table
}
