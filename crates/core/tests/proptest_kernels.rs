//! Kernel-path ≡ naive-reference parity on random workloads.
//!
//! PR 6 rewired every verifier and both refinement integrands onto the
//! column-major kernels in `verifiers::kernels`. The kernels are written
//! to evaluate the *exact same floating-point expression sequence* as the
//! legacy row-major code, so this file proves the strongest possible
//! statement: for random 1-D, 2-D, and k-NN workloads, the full pipeline's
//! verdicts **and** probability bounds `(p.l, p.u)` are bit-for-bit
//! (`f64::to_bits`) identical to a reference evaluation assembled from
//! `verifiers::reference` (the retained legacy verifiers) plus the naive
//! scalar integrands (`exact::subregion_qualification`,
//! `knn::knn_subregion_qualification`) — including through
//! eviction-forcing cache configurations and sharded execution.

use cpnn_core::cache::CacheConfig;
use cpnn_core::classify::{Classifier, Label};
use cpnn_core::exact::subregion_qualification;
use cpnn_core::framework::run_verification_into;
use cpnn_core::knn::knn_subregion_qualification;
use cpnn_core::pipeline::{cpnn, cpnn_with, CpnnResult, DistanceModel};
use cpnn_core::refine::incremental_refine_with;
use cpnn_core::verifiers::reference::{
    reference_extended_verifiers, reference_knn_verifiers, reference_verifiers,
};
use cpnn_core::verifiers::simd::{force_tier, SimdTier};
use cpnn_core::verifiers::VerificationState;
use cpnn_core::Strategy as EvalStrategy;
use cpnn_core::{
    BatchExecutor, CandidateSet, Object2d, ObjectId, PipelineConfig, QueryScratch, QuerySpec,
    RefinementOrder, SubregionTable, UncertainDb, UncertainDb2d, UncertainObject,
};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Per-object outcome with bit-exact bounds: `(id, lo bits, hi bits, label)`.
type Outcome = (ObjectId, u64, u64, Label);

/// Evaluate `spec` at `q` through the *legacy* path: same filter and
/// candidate assembly as the pipeline, then the reference verifier chain
/// and the naive scalar refinement integrand.
fn reference_eval<M: DistanceModel + ?Sized>(
    model: &M,
    q: &M::Query,
    spec: &QuerySpec,
    extended: bool,
) -> Vec<Outcome> {
    let k = spec.k.max(1);
    let filtered = model.filter(q, k).expect("filter");
    let cands = CandidateSet::from_distances(filtered.items, k);
    let table = SubregionTable::build(&cands);
    let classifier = Classifier::new(spec.threshold, spec.tolerance).expect("spec");
    let mut state = VerificationState::new(&table);
    let mut stages = Vec::new();
    if spec.strategy == EvalStrategy::Verified {
        let chain = match (k, extended) {
            (1, false) => reference_verifiers(),
            (1, true) => reference_extended_verifiers(),
            (k, _) => reference_knn_verifiers(k),
        };
        run_verification_into(&table, &classifier, &chain, &mut state, &mut stages);
    }
    if k == 1 {
        incremental_refine_with(
            &table,
            &classifier,
            &mut state,
            RefinementOrder::DescendingMass,
            |i, j, _scr| subregion_qualification(&table, i, j),
        );
    } else {
        incremental_refine_with(
            &table,
            &classifier,
            &mut state,
            RefinementOrder::DescendingMass,
            |i, j, _scr| knn_subregion_qualification(&table, i, j, k),
        );
    }
    cands
        .members()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            (
                m.id,
                state.bounds[i].lo().to_bits(),
                state.bounds[i].hi().to_bits(),
                state.labels[i],
            )
        })
        .collect()
}

fn outcomes(result: &CpnnResult) -> Vec<Outcome> {
    result
        .reports
        .iter()
        .map(|r| {
            (
                r.id,
                r.bound.lo().to_bits(),
                r.bound.hi().to_bits(),
                r.label,
            )
        })
        .collect()
}

fn assert_bit_identical(
    got: &CpnnResult,
    want: &[Outcome],
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&outcomes(got), want, "kernel vs reference: {}", ctx);
    Ok(())
}

/// Random uniform-pdf objects with ids `0..n` on a bounded domain.
fn objects_1d(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((-40.0f64..40.0, 0.5f64..12.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (lo, w))| UncertainObject::uniform(ObjectId(i as u64), lo, lo + w).unwrap())
            .collect()
    })
}

/// Random mixed 2-D objects (disks and rectangles).
fn objects_2d(max: usize) -> impl Strategy<Value = Vec<Object2d>> {
    prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0, 0.5f64..6.0), 3..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| {
                let id = ObjectId(i as u64);
                if i % 3 == 0 {
                    Object2d::rectangle(id, [x, y], [x + r, y + 0.5 * r + 0.1]).unwrap()
                } else {
                    Object2d::circle(id, [x, y], r).unwrap()
                }
            })
            .collect()
    })
}

/// The spec × config grid every property sweeps: VR with the paper chain,
/// VR with the FL-SR-extended chain, Refine-only, and k-NN VR.
fn spec_grid() -> Vec<(QuerySpec, bool)> {
    vec![
        (QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified), false),
        (QuerySpec::nn(0.5, 0.0, EvalStrategy::Verified), true),
        (QuerySpec::nn(0.4, 0.0, EvalStrategy::RefineOnly), false),
        (QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified), false),
        (QuerySpec::knn(3, 0.2, 0.01, EvalStrategy::Verified), false),
    ]
}

/// Restores automatic SIMD dispatch even when a `prop_assert!` bails out
/// of the tier-sweep property early.
struct TierGuard;

impl Drop for TierGuard {
    fn drop(&mut self) {
        force_tier(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 1-D parity: uncached kernel pipeline ≡ reference, every spec.
    #[test]
    fn kernel_pipeline_matches_reference_1d(
        objs in objects_1d(14),
        queries in prop::collection::vec(-60.0f64..60.0, 2..6),
    ) {
        let db = UncertainDb::build(objs).unwrap();
        for (spec, extended) in spec_grid() {
            let cfg = PipelineConfig {
                extended_verifiers: extended,
                ..Default::default()
            };
            for (i, &q) in queries.iter().enumerate() {
                let got = cpnn(&db, &q, &spec, &cfg).unwrap();
                let want = reference_eval(&db, &q, &spec, extended);
                assert_bit_identical(
                    &got,
                    &want,
                    &format!("1-D q = {q}, query {i}, k = {}, ext = {extended}", spec.k),
                )?;
            }
        }
    }

    /// 2-D parity: the same equivalence over the 2-D engine (disk and
    /// rectangle distance distributions feeding the same kernels).
    #[test]
    fn kernel_pipeline_matches_reference_2d(
        objs in objects_2d(10),
        queries in prop::collection::vec((-40.0f64..40.0, -40.0f64..40.0), 2..4),
    ) {
        let db = UncertainDb2d::build(objs).unwrap();
        let specs = [
            (QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified), false),
            (QuerySpec::nn(0.4, 0.0, EvalStrategy::Verified), true),
            (QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified), false),
        ];
        for (spec, extended) in specs {
            let cfg = PipelineConfig {
                extended_verifiers: extended,
                ..Default::default()
            };
            for (i, &(x, y)) in queries.iter().enumerate() {
                let q = [x, y];
                let got = cpnn(&db, &q, &spec, &cfg).unwrap();
                let want = reference_eval(&db, &q, &spec, extended);
                assert_bit_identical(
                    &got,
                    &want,
                    &format!("2-D q = {q:?}, query {i}, k = {}, ext = {extended}", spec.k),
                )?;
            }
        }
    }

    /// Cached parity: a repeated query stream through an eviction-forcing
    /// cache (capacity 2, quantum 0) still answers bit-identically to the
    /// naive reference — memoized tables feed the kernels the same columns.
    #[test]
    fn cached_kernel_pipeline_matches_reference(
        objs in objects_1d(12),
        base in prop::collection::vec(-60.0f64..60.0, 2..5),
        capacity in prop::sample::select(vec![2usize, 64]),
    ) {
        let db = UncertainDb::build(objs).unwrap();
        let cfg = PipelineConfig {
            cache: CacheConfig::new(capacity, 0.0),
            ..Default::default()
        };
        let specs = [
            QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified),
            QuerySpec::knn(2, 0.4, 0.0, EvalStrategy::Verified),
        ];
        let mut scratch = QueryScratch::new();
        for round in 0..3 {
            for (i, &q) in base.iter().enumerate() {
                for spec in &specs {
                    // Twice back-to-back: the repeat is a guaranteed cache
                    // hit (MRU entry), so parity is checked on both the
                    // miss path and the hit path even while capacity 2
                    // keeps evicting across points and ks.
                    for pass in 0..2 {
                        let got = cpnn_with(&db, &q, spec, &cfg, &mut scratch).unwrap();
                        let want = reference_eval(&db, &q, spec, false);
                        assert_bit_identical(
                            &got,
                            &want,
                            &format!(
                                "cached q = {q}, query {i}, round {round}, pass {pass}, \
                                 k = {}, cap = {capacity}",
                                spec.k
                            ),
                        )?;
                    }
                }
            }
        }
        prop_assert!(scratch.cache_stats().hits > 0, "stream produced no hits");
    }

    /// SIMD tier sweep (PR 10): the full pipeline — 1-D, 2-D, k-NN, cached
    /// repeats, and the sharded batch executor — answers bit-identically to
    /// the scalar reference at EVERY dispatch tier this host can run:
    /// forced scalar (the `CPNN_SIMD=off` code path), SSE2, and AVX2 where
    /// detected. Proves the explicit vector lanes change speed only.
    #[test]
    fn kernel_pipeline_matches_reference_at_every_simd_tier(
        objs in objects_1d(12),
        objs2 in objects_2d(8),
        queries in prop::collection::vec(-60.0f64..60.0, 2..4),
    ) {
        let db = UncertainDb::build(objs.clone()).unwrap();
        let db2 = UncertainDb2d::build(objs2).unwrap();
        let sharded = UncertainDb::build_sharded(objs, 4).unwrap();
        let _restore = TierGuard;
        for tier in SimdTier::available() {
            prop_assert_eq!(force_tier(Some(tier)), tier, "tier not forceable");
            for (spec, extended) in spec_grid() {
                let cfg = PipelineConfig {
                    extended_verifiers: extended,
                    ..Default::default()
                };
                for &q in &queries {
                    let got = cpnn(&db, &q, &spec, &cfg).unwrap();
                    let want = reference_eval(&db, &q, &spec, extended);
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("tier {}, 1-D q = {q}, k = {}, ext = {extended}",
                                 tier.name(), spec.k),
                    )?;
                }
            }
            let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
            let got = cpnn(&db2, &[0.0, 0.0], &spec, &PipelineConfig::default()).unwrap();
            let want = reference_eval(&db2, &[0.0, 0.0], &spec, false);
            assert_bit_identical(&got, &want, &format!("tier {}, 2-D", tier.name()))?;
            // Cached hit/miss paths and the sharded executor at this tier.
            let ccfg = PipelineConfig {
                cache: CacheConfig::new(2, 0.0),
                ..Default::default()
            };
            let mut scratch = QueryScratch::new();
            for &q in &queries {
                for pass in 0..2 {
                    let got = cpnn_with(&db, &q, &spec, &ccfg, &mut scratch).unwrap();
                    let want = reference_eval(&db, &q, &spec, false);
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("tier {}, cached q = {q}, pass {pass}", tier.name()),
                    )?;
                }
            }
            let jobs: Vec<(f64, QuerySpec)> = queries.iter().map(|&q| (q, spec)).collect();
            let scfg = sharded.pipeline_config();
            let out = BatchExecutor::new(2).run_sharded(&sharded, &jobs, &scfg);
            for ((q, spec), got) in jobs.iter().zip(&out.results) {
                let want = reference_eval(&db, q, spec, scfg.extended_verifiers);
                assert_bit_identical(
                    got.as_ref().unwrap(),
                    &want,
                    &format!("tier {}, sharded q = {q}", tier.name()),
                )?;
            }
        }
    }

    /// Sharded parity: the shard-aware batch executor at 1 and 8 shards
    /// answers bit-identically to the naive reference on the flat model.
    #[test]
    fn sharded_kernel_pipeline_matches_reference(
        objs in objects_1d(16),
        base in prop::collection::vec(-60.0f64..60.0, 2..6),
        shards in prop::sample::select(vec![1usize, 8]),
    ) {
        let flat = UncertainDb::build(objs.clone()).unwrap();
        let sharded = UncertainDb::build_sharded(objs, shards).unwrap();
        let spec = QuerySpec::nn(0.3, 0.01, EvalStrategy::Verified);
        let jobs: Vec<(f64, QuerySpec)> = base.iter().map(|&q| (q, spec)).collect();
        let cfg = sharded.pipeline_config();
        let out = BatchExecutor::new(2).run_sharded(&sharded, &jobs, &cfg);
        prop_assert_eq!(out.results.len(), jobs.len());
        for (i, ((q, spec), got)) in jobs.iter().zip(&out.results).enumerate() {
            let want = reference_eval(&flat, q, spec, cfg.extended_verifiers);
            assert_bit_identical(
                got.as_ref().unwrap(),
                &want,
                &format!("sharded q = {q}, query {i}, {shards} shards"),
            )?;
        }
    }
}
