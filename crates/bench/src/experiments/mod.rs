//! One module per figure/table of the paper's evaluation (Sec. V), plus
//! ablations. Every module exposes `run(quick) -> Table` producing the same
//! rows/series the paper plots.

pub mod ablations;
pub mod batch;
pub mod cache;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod knn2d;
pub mod recovery;
pub mod router;
pub mod serve;
pub mod shard;
pub mod table3;
pub mod update;
pub mod verify;

use cpnn_core::UncertainDb;
use cpnn_datagen::{longbeach::longbeach_with, query_points, LongBeachConfig};

/// The paper's threshold default.
pub const DEFAULT_P: f64 = 0.3;
/// The paper's tolerance default.
pub const DEFAULT_DELTA: f64 = 0.01;

/// Long Beach analog database. `quick` trades cardinality for wall-clock
/// (8k objects instead of 53,144) without changing the candidate-set
/// density that drives the per-query work.
pub fn longbeach_db(quick: bool) -> UncertainDb {
    longbeach_db_sized(if quick { 8_000 } else { 53_144 })
}

/// Long Beach analog database at an explicit cardinality (for |T| sweeps).
pub fn longbeach_db_sized(count: usize) -> UncertainDb {
    let cfg = LongBeachConfig {
        count,
        ..LongBeachConfig::default()
    };
    UncertainDb::build(longbeach_with(0xC0FFEE, cfg)).expect("valid generated data")
}

/// Query workload ("Each point in the graph is an average of the results
/// for 100 queries").
pub fn workload_queries(quick: bool) -> Vec<f64> {
    query_points(0xBEEF, if quick { 20 } else { 100 })
}

/// The paper's threshold sweep for Figs. 10/11/14.
pub fn threshold_sweep() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
}
