//! `repro` — regenerate every table and figure of the paper's evaluation,
//! plus the batch-scaling, serve-mode, sharding, and 2-D k-NN experiments,
//! and emit a machine-readable timing file (the current series file,
//! `BENCH_pr<N>.json` derived from [`CURRENT_PR`]) so later changes have a
//! perf trajectory to regress against.
//!
//! Usage:
//! ```text
//! repro [--quick] [--out DIR] [--bench-json FILE] [EXPERIMENT ...]
//! ```
//! where `EXPERIMENT` is any of `fig9 fig10 fig11 fig12 fig13 fig14 table3
//! ablations batch serve shard knn2d cache update verify recovery` or `all` (default). `--quick` uses a
//! reduced workload (same shapes, faster); `--out` selects the results
//! directory (default `results/`); `--bench-json` overrides the
//! timing-file path (default: the current series file, empty string
//! disables) — so one-off runs can land anywhere without touching source.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use cpnn_bench::experiments;
use cpnn_bench::report::Table;

/// The PR this tree's timings belong to. The default timing file is
/// derived from it, so each PR's trajectory lands in its own
/// `BENCH_pr<N>.json` (override any single run with `--bench-json PATH`).
const CURRENT_PR: u32 = 10;

/// The current series file: `BENCH_pr<CURRENT_PR>.json`.
fn current_series() -> String {
    format!("BENCH_pr{CURRENT_PR}.json")
}

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut bench_json = PathBuf::from(current_series());
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--bench-json" => {
                bench_json = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--bench-json requires a file argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--out DIR] [--bench-json FILE (default {})] \
                     [fig9|fig10|fig11|fig12|fig13|fig14|table3|ablations|batch|serve|shard|\
                     knn2d|cache|update|verify|recovery|router|all ...]",
                    current_series()
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "all",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table3",
        "ablations",
        "batch",
        "serve",
        "shard",
        "knn2d",
        "cache",
        "update",
        "verify",
        "recovery",
        "router",
    ];
    if let Some(unknown) = wanted.iter().find(|w| !KNOWN.contains(&w.as_str())) {
        eprintln!(
            "unknown experiment `{unknown}` (expected one of: {})",
            KNOWN.join(", ")
        );
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    eprintln!(
        ">> simd: {} tier dispatched (detected cpu features: {})",
        cpnn_core::verifiers::simd::active_tier().name(),
        cpnn_core::verifiers::simd::cpu_features(),
    );
    fs::create_dir_all(&out_dir).expect("can create results directory");
    // (table, wall-clock seconds the experiment took to regenerate)
    let mut produced: Vec<(Table, f64)> = Vec::new();

    let run = |name: &str, f: &dyn Fn(bool) -> Table, produced: &mut Vec<(Table, f64)>| {
        eprintln!(
            ">> running {name} ({}) ...",
            if quick { "quick" } else { "full" }
        );
        let start = Instant::now();
        let t = f(quick);
        let wall = start.elapsed().as_secs_f64();
        println!("{}", t.to_text());
        produced.push((t, wall));
    };

    if want("fig9") {
        run("fig9", &experiments::fig09::run, &mut produced);
    }
    if want("fig10") {
        run("fig10", &experiments::fig10::run, &mut produced);
    }
    if want("fig11") {
        run("fig11", &experiments::fig11::run, &mut produced);
    }
    if want("fig12") {
        run("fig12", &experiments::fig12::run, &mut produced);
    }
    if want("fig13") {
        run("fig13", &experiments::fig13::run, &mut produced);
    }
    if want("fig14") {
        run("fig14", &experiments::fig14::run, &mut produced);
    }
    if want("table3") {
        run("table3", &experiments::table3::run, &mut produced);
    }
    if want("ablations") {
        run(
            "ablation-a",
            &experiments::ablations::verifier_chain,
            &mut produced,
        );
        run(
            "ablation-b",
            &experiments::ablations::refinement_order,
            &mut produced,
        );
        run(
            "ablation-c",
            &experiments::ablations::distance_bins,
            &mut produced,
        );
        run(
            "ablation-d",
            &experiments::ablations::extended_chain,
            &mut produced,
        );
    }
    if want("batch") {
        run("batch", &experiments::batch::run, &mut produced);
    }
    if want("serve") {
        run("serve", &experiments::serve::run, &mut produced);
    }
    if want("shard") {
        run("shard", &experiments::shard::run, &mut produced);
    }
    if want("knn2d") {
        run("knn2d", &experiments::knn2d::run, &mut produced);
    }
    if want("cache") {
        run("cache", &experiments::cache::run, &mut produced);
    }
    if want("update") {
        run("update", &experiments::update::run, &mut produced);
    }
    if want("verify") {
        run("verify", &experiments::verify::run, &mut produced);
    }
    if want("recovery") {
        run("recovery", &experiments::recovery::run, &mut produced);
    }
    if want("router") {
        run("router", &experiments::router::run, &mut produced);
    }

    for (t, _) in &produced {
        let stem = file_stem(&t.id);
        fs::write(out_dir.join(format!("{stem}.md")), t.to_markdown())
            .expect("can write markdown result");
        fs::write(out_dir.join(format!("{stem}.csv")), t.to_csv()).expect("can write csv result");
    }
    if bench_json.as_os_str().is_empty() {
        eprintln!(
            ">> wrote {} result table(s) to {}",
            produced.len(),
            out_dir.display()
        );
        return;
    }
    fs::write(&bench_json, bench_json_text(quick, &produced)).expect("can write bench json");
    eprintln!(
        ">> wrote {} result table(s) to {} and timings to {}",
        produced.len(),
        out_dir.display(),
        bench_json.display()
    );
}

fn file_stem(id: &str) -> String {
    id.to_lowercase()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .trim_matches('_')
        .replace("__", "_")
}

/// Hand-rolled JSON (no serde in the build environment): every experiment's
/// wall time plus its full table, so future PRs can diff both the timings
/// and the numbers themselves. The header records the dispatched SIMD tier
/// and the detected CPU features, so a series file from a scalar-only host
/// is never mistaken for a vectorized datapoint.
fn bench_json_text(quick: bool, produced: &[(Table, f64)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"pr\": {CURRENT_PR},");
    let _ = writeln!(out, "  \"tool\": \"repro\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"simd_tier\": {},",
        json_str(cpnn_core::verifiers::simd::active_tier().name())
    );
    let _ = writeln!(
        out,
        "  \"cpu_features\": {},",
        json_str(cpnn_core::verifiers::simd::cpu_features())
    );
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, (t, wall)) in produced.iter().enumerate() {
        let comma = if i + 1 < produced.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"id\": {},", json_str(&t.id));
        let _ = writeln!(out, "      \"title\": {},", json_str(&t.title));
        let _ = writeln!(out, "      \"wall_s\": {wall:.3},");
        let _ = writeln!(out, "      \"columns\": {},", json_str_array(&t.columns));
        let _ = writeln!(out, "      \"rows\": [");
        for (j, row) in t.rows.iter().enumerate() {
            let rc = if j + 1 < t.rows.len() { "," } else { "" };
            let _ = writeln!(out, "        {}{rc}", json_str_array(row));
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(
            json_str_array(&["x".into(), "y\"z".into()]),
            "[\"x\", \"y\\\"z\"]"
        );
    }

    #[test]
    fn bench_json_shape_is_valid_enough() {
        let mut t = Table::new("Fig. 9", "title", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = bench_json_text(true, &[(t, 0.5)]);
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"id\": \"Fig. 9\""));
        assert!(s.contains("\"wall_s\": 0.500"));
        assert!(s.contains("\"simd_tier\": "));
        assert!(s.contains("\"cpu_features\": "));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn file_stems_are_fs_safe() {
        assert_eq!(file_stem("Fig. 9"), "fig_9");
        assert_eq!(file_stem("Batch"), "batch");
    }

    #[test]
    fn bench_json_defaults_to_current_series() {
        assert_eq!(current_series(), format!("BENCH_pr{CURRENT_PR}.json"));
        let s = bench_json_text(true, &[]);
        assert!(s.contains(&format!("\"pr\": {CURRENT_PR},")));
    }
}
