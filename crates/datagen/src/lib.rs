//! # cpnn-datagen — workload generators for the C-PNN reproduction
//!
//! The paper evaluates on the Long Beach county TIGER dataset: "the 53,144
//! intervals, distributed in the x-dimension of 10K units, are treated as
//! uncertainty regions with uniform pdfs" (Sec. V-A), with query points
//! generated at random and an average candidate-set size of 96 objects.
//!
//! The original file is not redistributable here, so [`longbeach`] builds a
//! **synthetic analog** calibrated to the statistics the paper reports:
//! same cardinality, same domain, clustered interval centers (geography is
//! clumpy), and interval lengths tuned so the average candidate set lands
//! near 96 objects. The algorithms only see the workload through distance
//! distributions and candidate density, so this preserves the computational
//! shape of every experiment (the substitution rationale is recorded in
//! [`longbeach`]'s module docs).
//!
//! [`synthetic`] provides the size sweeps of Fig. 9 and the Gaussian-pdf
//! variants of Fig. 14; [`queries`] generates query workloads.

#![warn(missing_docs)]

pub mod longbeach;
pub mod queries;
pub mod synthetic;
pub mod synthetic2d;

pub use longbeach::{longbeach_analog, LongBeachConfig};
pub use queries::{query_points, query_points_in, zipfian_query_points};
pub use synthetic::{gaussian_variant, uniform_intervals, SyntheticConfig};
pub use synthetic2d::{objects_2d, query_points_2d, Synthetic2dConfig};
