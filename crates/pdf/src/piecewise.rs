//! Monotone piecewise-linear functions.
//!
//! Distance cdfs in the paper are piecewise linear (Sec. IV-A); this utility
//! provides evaluation, inversion and composition for such functions. It is
//! also reused by the 2-D circular-region distance cdf, which is discretized
//! onto a knot grid.

use crate::error::PdfError;
use crate::Result;

/// A non-decreasing piecewise-linear function defined by knots
/// `(xs[i], ys[i])`, extended by clamping outside `[xs[0], xs[n-1]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Build from knot vectors. `xs` must be strictly increasing and `ys`
    /// non-decreasing; both finite, with at least two knots.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(PdfError::LengthMismatch {
                expected: xs.len(),
                actual: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(PdfError::LengthMismatch {
                expected: 2,
                actual: xs.len(),
            });
        }
        for (i, w) in xs.windows(2).enumerate() {
            if !(w[0] < w[1]) || !w[0].is_finite() || !w[1].is_finite() {
                return Err(PdfError::UnsortedEdges { index: i });
            }
        }
        for (i, w) in ys.windows(2).enumerate() {
            if !(w[1] >= w[0]) || !w[0].is_finite() || !w[1].is_finite() {
                return Err(PdfError::InvalidDensity {
                    index: i,
                    value: w[1],
                });
            }
        }
        Ok(Self { xs, ys })
    }

    /// Knot abscissas.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Knot ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluate at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let j = self.xs.partition_point(|&k| k <= x);
        let i = j - 1;
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// Smallest `x` with `eval(x) ≥ y` (generalized inverse). Values below
    /// (above) the range map to the first (last) knot.
    pub fn inverse(&self, y: f64) -> f64 {
        let n = self.xs.len();
        if y <= self.ys[0] {
            return self.xs[0];
        }
        if y > self.ys[n - 1] {
            return self.xs[n - 1];
        }
        let j = self.ys.partition_point(|&v| v < y);
        let i = j.saturating_sub(1);
        let dy = self.ys[i + 1] - self.ys[i];
        if dy <= 0.0 {
            return self.xs[i + 1];
        }
        let t = (y - self.ys[i]) / dy;
        self.xs[i] + t * (self.xs[i + 1] - self.xs[i])
    }

    /// First knot abscissa.
    pub fn x_min(&self) -> f64 {
        self.xs[0]
    }

    /// Last knot abscissa.
    pub fn x_max(&self) -> f64 {
        *self.xs.last().expect("at least two knots")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 1.0]).is_ok());
        assert!(PiecewiseLinear::new(vec![0.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![1.0, 0.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 3.0], vec![0.0, 0.5, 1.0]).unwrap();
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(0.0), 0.0);
        assert!((f.eval(0.5) - 0.25).abs() < 1e-15);
        assert!((f.eval(2.0) - 0.75).abs() < 1e-15);
        assert_eq!(f.eval(3.0), 1.0);
        assert_eq!(f.eval(10.0), 1.0);
    }

    #[test]
    fn inverse_round_trips() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 3.0], vec![0.0, 0.5, 1.0]).unwrap();
        for y in [0.0, 0.1, 0.5, 0.75, 1.0] {
            let x = f.inverse(y);
            assert!((f.eval(x) - y).abs() < 1e-12, "y = {y}, x = {x}");
        }
    }

    #[test]
    fn inverse_on_flat_segment_takes_right_edge() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.5, 0.5, 1.0]).unwrap();
        // y slightly above the plateau starts after the flat part.
        assert!(f.inverse(0.5000001) >= 2.0 - 1e-5);
    }
}
