//! Criterion bench for Figs. 10/11: per-query latency of Basic vs. Refine
//! vs. VR on the Long Beach analog at representative thresholds.

use std::time::Duration;

use cpnn_bench::experiments::longbeach_db;
use cpnn_core::{CpnnQuery, Strategy};
use cpnn_datagen::query_points;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let db = longbeach_db(true);
    let queries = query_points(0xBEEF, 16);
    let mut group = c.benchmark_group("fig10");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &p in &[0.3f64, 0.7] {
        for (name, strategy) in [
            ("basic", Strategy::Basic),
            ("refine", Strategy::RefineOnly),
            ("vr", Strategy::Verified),
        ] {
            group.bench_with_input(BenchmarkId::new(name, format!("P={p}")), &db, |b, db| {
                let mut i = 0;
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    db.cpnn(&CpnnQuery::new(q, p, 0.01), strategy).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
