//! Subregion construction (paper Sec. IV-A, Fig. 7).
//!
//! *End-points* are: every candidate's near point, every point at which some
//! distance pdf changes (i.e. every distance-histogram bin edge) below
//! `fmin`, plus `fmin` itself; the rightmost subregion `S_M = [fmin, fmax]`
//! is kept implicitly as a per-object mass (`s_iM = 1 − D_i(fmin)`), since
//! no end-points are defined inside it.
//!
//! Keeping **every** pdf breakpoint below `fmin` as an end-point is not just
//! bookkeeping — it is what makes Lemma 3 sound: within a subregion each
//! object's distance pdf is constant, so conditioned on falling inside the
//! subregion all objects are uniformly (and identically) distributed there,
//! which is exactly the exchangeability the `1/|K|` symmetry argument needs.
//!
//! For each object `i` and left subregion `S_j = [e_j, e_{j+1}]`, the table
//! stores the *subregion probability* `s_ij = Pr[R_i ∈ S_j]` and the cdf
//! value `D_i(e_j)` — the two numbers the verifiers consume. The paper keeps
//! these per-subregion lists in a hash table; this implementation stores
//! them as dense flat arrays indexed by `(object, subregion)`, which is the
//! in-memory equivalent (space `O(|C|·M)`, as in the paper).

use crate::candidate::CandidateSet;

/// Mass below this threshold is treated as "no mass in the subregion"
/// (the paper's `U_k ∩ S_j ≠ ∅` membership test).
pub const MASS_EPS: f64 = 1e-12;

/// End-point columns per block of the cache-blocked table fill. One block
/// of cdf columns touches `BUILD_BLOCK · 8 B = 2 KiB` per object row slot,
/// and consecutive members land in the same cache lines (column-major), so
/// the scatter working set (~16 KiB of distinct lines for 8-member groups)
/// stays L1-resident across all candidates instead of streaming one full
/// `L+1`-column row per member through the cache.
const BUILD_BLOCK: usize = 256;

/// The subregion table: end-points plus the `(s_ij, D_i(e_j))` pairs of
/// Fig. 7(b).
///
/// Storage is **column-major (subregion-major)**: every verifier inner loop
/// walks all objects at a fixed end-point `j`, so keeping each column
/// `D_·(e_j)` / `s_·j` contiguous turns those sweeps into unit-stride slices
/// ([`Self::cdf_col`] / [`Self::mass_col`]) that the verification kernels
/// consume directly.
#[derive(Debug, Clone)]
pub struct SubregionTable {
    /// End-points `e_1 … e_{M}`; the last entry equals `fmin`. The *left*
    /// subregions are `S_j = [endpoints[j], endpoints[j+1]]` for
    /// `j ∈ 0 .. L` with `L = endpoints.len() − 1`; the rightmost subregion
    /// `[fmin, fmax]` is implicit.
    endpoints: Vec<f64>,
    fmax: f64,
    n: usize,
    /// `mass[j·n + i] = s_ij` (column-major by subregion).
    mass: Vec<f64>,
    /// `cdf[j·n + i] = D_i(e_j)` (column-major by end-point).
    cdf: Vec<f64>,
    /// `rightmost[i] = s_{i,M} = 1 − D_i(fmin)`.
    rightmost: Vec<f64>,
    /// `counts[j] = c_j`, the number of objects with `s_ij > MASS_EPS`.
    counts: Vec<usize>,
}

impl SubregionTable {
    /// Build the table for a candidate set (the "initialization" box of the
    /// verification framework, Fig. 5).
    pub fn build(candidates: &CandidateSet) -> Self {
        let n = candidates.len();
        // The last end-point is the candidate set's pruning horizon: fmin
        // for 1-NN, fmin_k for the k-NN extension. All formulas below are
        // stated in terms of it.
        let fmin = candidates.horizon();
        let fmax = candidates.fmax();
        if n == 0 {
            return Self {
                endpoints: Vec::new(),
                fmax,
                n,
                mass: Vec::new(),
                cdf: Vec::new(),
                rightmost: Vec::new(),
                counts: Vec::new(),
            };
        }

        // Collect end-points: near points and pdf breakpoints below fmin.
        let upper: usize = candidates
            .members()
            .iter()
            .map(|m| m.dist.breakpoints().len())
            .sum();
        let mut pts: Vec<f64> = Vec::with_capacity(upper + 1);
        for m in candidates.members() {
            for &b in m.dist.breakpoints() {
                if b < fmin {
                    pts.push(b);
                }
            }
        }
        pts.push(fmin);
        pts.sort_by(f64::total_cmp);
        let scale = fmin.abs().max(1.0);
        let mut endpoints: Vec<f64> = Vec::with_capacity(pts.len());
        for p in pts {
            match endpoints.last() {
                Some(&last) if p - last <= 1e-9 * scale => {}
                _ => endpoints.push(p),
            }
        }
        // Snap the final endpoint to exactly fmin (the merge above may have
        // absorbed it into a close neighbour).
        if let Some(last) = endpoints.last_mut() {
            *last = fmin;
        }
        let l = endpoints.len() - 1;

        let mut mass = vec![0.0; n * l];
        let mut cdf = vec![0.0; n * (l + 1)];
        let mut rightmost = vec![0.0; n];
        // Cache-blocked fill: sweep the end-points in BUILD_BLOCK-column
        // chunks across *all* members before advancing, resuming each
        // member's sorted histogram merge from a per-member bin cursor
        // (cdf_many_resume). Chunked evaluation is bit-identical to one
        // full cdf_many_into row per member, and the column-major scatter
        // now reuses L1-resident lines across consecutive members.
        let cols = l + 1;
        let mut cursors = vec![0usize; n];
        // Per member: the last cdf value of the previous block, so the mass
        // column straddling a block boundary needs no second pass.
        let mut prev = vec![0.0f64; n];
        let mut block = [0.0f64; BUILD_BLOCK];
        let mut j0 = 0;
        while j0 < cols {
            let j1 = (j0 + BUILD_BLOCK).min(cols);
            let xs = &endpoints[j0..j1];
            for (i, member) in candidates.members().iter().enumerate() {
                let out = &mut block[..j1 - j0];
                member.dist.cdf_many_resume(xs, &mut cursors[i], out);
                // Scatter the cdf chunk and fold the mass differences in
                // while the chunk is still in registers/L1 — the exact
                // expressions of the old row-at-a-time fill, on exactly the
                // old row values, so every output is bit-equal.
                for (dj, &v) in out.iter().enumerate() {
                    cdf[(j0 + dj) * n + i] = v;
                }
                if j0 > 0 {
                    mass[(j0 - 1) * n + i] = (out[0] - prev[i]).max(0.0);
                }
                for dj in 0..j1 - j0 - 1 {
                    mass[(j0 + dj) * n + i] = (out[dj + 1] - out[dj]).max(0.0);
                }
                prev[i] = out[j1 - j0 - 1];
            }
            j0 = j1;
        }
        // After the last block `prev[i]` holds `D_i(e_L)` — the rightmost
        // column — for every member.
        for i in 0..n {
            rightmost[i] = (1.0 - prev[i]).max(0.0);
        }
        // Column-major mass makes the membership count a contiguous scan.
        let counts = mass
            .chunks_exact(n)
            .map(|col| col.iter().filter(|&&s| s > MASS_EPS).count())
            .collect();

        Self {
            endpoints,
            fmax,
            n,
            mass,
            cdf,
            rightmost,
            counts,
        }
    }

    /// Number of candidate objects `|C|`.
    pub fn n_objects(&self) -> usize {
        self.n
    }

    /// Number of *left* subregions `L` (the paper's `M − 1`).
    pub fn left_regions(&self) -> usize {
        self.endpoints.len().saturating_sub(1)
    }

    /// Total subregion count, the paper's `M` (left regions + rightmost).
    pub fn subregion_count(&self) -> usize {
        self.left_regions() + 1
    }

    /// End-point `e_{j+1}` in paper numbering (`j` is 0-based here).
    pub fn endpoint(&self, j: usize) -> f64 {
        self.endpoints[j]
    }

    /// All end-points (last equals `fmin`).
    pub fn endpoints(&self) -> &[f64] {
        &self.endpoints
    }

    /// Width of left subregion `j`.
    pub fn width(&self, j: usize) -> f64 {
        self.endpoints[j + 1] - self.endpoints[j]
    }

    /// Subregion probability `s_ij` for left region `j`.
    pub fn mass(&self, i: usize, j: usize) -> f64 {
        self.mass[j * self.n + i]
    }

    /// Distance cdf `D_i(e_j)` at end-point `j ∈ 0..=L`.
    pub fn cdf_at(&self, i: usize, j: usize) -> f64 {
        self.cdf[j * self.n + i]
    }

    /// Contiguous cdf column `D_·(e_j)` for end-point `j ∈ 0..=L`: element
    /// `i` is `D_i(e_j)`. Unit-stride input for the verification kernels.
    pub fn cdf_col(&self, j: usize) -> &[f64] {
        &self.cdf[j * self.n..(j + 1) * self.n]
    }

    /// Contiguous mass column `s_·j` for left region `j ∈ 0..L`: element
    /// `i` is `s_ij`.
    pub fn mass_col(&self, j: usize) -> &[f64] {
        &self.mass[j * self.n..(j + 1) * self.n]
    }

    /// Full column-major cdf array — all `L + 1` end-point columns
    /// contiguous (`cdf_all()[j·n + i] = D_i(e_j)`). Input for the
    /// multi-column SIMD survival-product builder.
    pub(crate) fn cdf_all(&self) -> &[f64] {
        &self.cdf
    }

    /// Rightmost-subregion probability `s_{iM} = 1 − D_i(fmin)`.
    pub fn rightmost(&self, i: usize) -> f64 {
        self.rightmost[i]
    }

    /// `c_j`: number of objects with non-zero mass in left region `j`.
    pub fn count(&self, j: usize) -> usize {
        self.counts[j]
    }

    /// `fmin` (the last end-point).
    pub fn fmin(&self) -> f64 {
        *self.endpoints.last().expect("non-empty table")
    }

    /// `fmax` (right edge of the rightmost subregion).
    pub fn fmax(&self) -> f64 {
        self.fmax
    }

    /// Linear interpolation of `D_i(r)` inside left region `j`, with
    /// `t ∈ [0, 1]` the relative position: `D_i(e_j + t·w_j)`.
    ///
    /// Exact because distance cdfs are piecewise linear with knots at
    /// end-points.
    pub fn cdf_interp(&self, i: usize, j: usize, t: f64) -> f64 {
        let a = self.cdf_at(i, j);
        a + t * self.mass(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig7_scenario;

    #[test]
    fn endpoints_match_hand_construction() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        // Near points {1, 2, 4}, breakpoint of X1's pdf at 3, fmin = 6.
        assert_eq!(t.endpoints(), &[1.0, 2.0, 3.0, 4.0, 6.0]);
        assert_eq!(t.left_regions(), 4);
        assert_eq!(t.subregion_count(), 5); // the paper's M
        assert_eq!(t.fmin(), 6.0);
        assert_eq!(t.fmax(), 8.0);
    }

    #[test]
    fn masses_match_hand_computation() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        // X1 (histogram [1,3]=0.3, [3,7]=0.7):
        let x1 = [0.15, 0.15, 0.175, 0.35];
        // X2 (uniform [2,6]):
        let x2 = [0.0, 0.25, 0.25, 0.5];
        // X3 (uniform [4,8]):
        let x3 = [0.0, 0.0, 0.0, 0.5];
        for j in 0..4 {
            assert!((t.mass(0, j) - x1[j]).abs() < 1e-12, "s_1{j}");
            assert!((t.mass(1, j) - x2[j]).abs() < 1e-12, "s_2{j}");
            assert!((t.mass(2, j) - x3[j]).abs() < 1e-12, "s_3{j}");
        }
        assert!((t.rightmost(0) - 0.175).abs() < 1e-12);
        assert!((t.rightmost(1) - 0.0).abs() < 1e-12);
        assert!((t.rightmost(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_match_membership() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        assert_eq!(t.count(0), 1);
        assert_eq!(t.count(1), 2);
        assert_eq!(t.count(2), 2);
        assert_eq!(t.count(3), 3);
    }

    #[test]
    fn columns_agree_with_scalar_accessors() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        let n = t.n_objects();
        for j in 0..=t.left_regions() {
            let col = t.cdf_col(j);
            assert_eq!(col.len(), n);
            for (i, &c) in col.iter().enumerate() {
                assert_eq!(c.to_bits(), t.cdf_at(i, j).to_bits(), "cdf ({i},{j})");
            }
        }
        for j in 0..t.left_regions() {
            let col = t.mass_col(j);
            assert_eq!(col.len(), n);
            for (i, &m) in col.iter().enumerate() {
                assert_eq!(m.to_bits(), t.mass(i, j).to_bits(), "mass ({i},{j})");
            }
        }
    }

    #[test]
    fn masses_and_rightmost_sum_to_one() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        for i in 0..t.n_objects() {
            let total: f64 =
                (0..t.left_regions()).map(|j| t.mass(i, j)).sum::<f64>() + t.rightmost(i);
            assert!((total - 1.0).abs() < 1e-9, "object {i}: {total}");
        }
    }

    #[test]
    fn cdf_values_at_endpoints() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        // D1 at endpoints [1,2,3,4,6]:
        for (j, want) in [0.0, 0.15, 0.3, 0.475, 0.825].iter().enumerate() {
            assert!((t.cdf_at(0, j) - want).abs() < 1e-12, "D1(e{j})");
        }
        // D2:
        for (j, want) in [0.0, 0.0, 0.25, 0.5, 1.0].iter().enumerate() {
            assert!((t.cdf_at(1, j) - want).abs() < 1e-12, "D2(e{j})");
        }
        // D3:
        for (j, want) in [0.0, 0.0, 0.0, 0.0, 0.5].iter().enumerate() {
            assert!((t.cdf_at(2, j) - want).abs() < 1e-12, "D3(e{j})");
        }
    }

    #[test]
    fn cdf_interp_is_linear_within_regions() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        // D2 halfway through S4 = [4, 6]: 0.5 + 0.5·0.5 = 0.75.
        assert!((t.cdf_interp(1, 3, 0.5) - 0.75).abs() < 1e-12);
        // Interp endpoints agree with stored cdf values.
        for i in 0..3 {
            for j in 0..4 {
                assert!((t.cdf_interp(i, j, 0.0) - t.cdf_at(i, j)).abs() < 1e-12);
                assert!((t.cdf_interp(i, j, 1.0) - t.cdf_at(i, j + 1)).abs() < 1e-12);
            }
        }
    }

    /// Per-member one-shot reference for the blocked fill: every cdf, mass,
    /// and rightmost cell must be bit-equal to one whole-row
    /// `cdf_many_into` pass per member (the pre-blocking implementation).
    fn assert_build_matches_row_reference(
        t: &SubregionTable,
        cands: &crate::candidate::CandidateSet,
    ) {
        let l = t.left_regions();
        let mut row = Vec::new();
        for (i, member) in cands.members().iter().enumerate() {
            member.dist.cdf_many_into(t.endpoints(), &mut row);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(t.cdf_at(i, j).to_bits(), v.to_bits(), "cdf ({i},{j})");
            }
            for j in 0..l {
                let want = (row[j + 1] - row[j]).max(0.0);
                assert_eq!(t.mass(i, j).to_bits(), want.to_bits(), "mass ({i},{j})");
            }
            let want = (1.0 - row[l]).max(0.0);
            assert_eq!(t.rightmost(i).to_bits(), want.to_bits(), "rightmost {i}");
        }
    }

    #[test]
    fn blocked_build_matches_row_reference_bitwise() {
        let (cands, _) = fig7_scenario();
        let t = SubregionTable::build(&cands);
        assert_build_matches_row_reference(&t, &cands);
    }

    #[test]
    fn blocked_build_spans_multiple_blocks_bitwise() {
        // Enough staggered near points that the end-point list crosses at
        // least one BUILD_BLOCK boundary, so the resumable cursors carry
        // real state between blocks.
        let objects: Vec<_> = (0..300u32)
            .map(|k| {
                let lo = 1.0 + k as f64 * 0.01;
                crate::object::UncertainObject::uniform(
                    crate::object::ObjectId(k as u64),
                    lo,
                    lo + 5.0,
                )
                .unwrap()
            })
            .collect();
        let cands = crate::candidate::CandidateSet::build(&objects, 0.0, 0).unwrap();
        let t = SubregionTable::build(&cands);
        assert!(
            t.left_regions() + 1 > super::BUILD_BLOCK,
            "scenario too small to cross a block boundary: {} cols",
            t.left_regions() + 1
        );
        assert_build_matches_row_reference(&t, &cands);
    }

    #[test]
    fn empty_candidate_set_gives_empty_table() {
        let cands = crate::candidate::CandidateSet::build(std::iter::empty(), 0.0, 0).unwrap();
        let t = SubregionTable::build(&cands);
        assert_eq!(t.n_objects(), 0);
        assert_eq!(t.left_regions(), 0);
    }

    #[test]
    fn single_candidate_has_one_left_region_and_no_rightmost_mass() {
        let objects =
            vec![
                crate::object::UncertainObject::uniform(crate::object::ObjectId(9), 3.0, 5.0)
                    .unwrap(),
            ];
        let cands = crate::candidate::CandidateSet::build(&objects, 0.0, 0).unwrap();
        let t = SubregionTable::build(&cands);
        assert_eq!(t.left_regions(), 1);
        assert!((t.mass(0, 0) - 1.0).abs() < 1e-12);
        assert!((t.rightmost(0)).abs() < 1e-12);
        assert_eq!(t.count(0), 1);
    }
}
