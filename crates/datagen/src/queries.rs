//! Query-point workloads ("The query points are randomly generated. Each
//! point in the graph is an average of the results for 100 queries",
//! Sec. V-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `count` query points uniform over `[0, 10_000)` (the paper's domain).
pub fn query_points(seed: u64, count: usize) -> Vec<f64> {
    query_points_in(seed, count, 0.0, 10_000.0)
}

/// `count` query points uniform over `[lo, hi)`.
pub fn query_points_in(seed: u64, count: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_in_range_and_deterministic() {
        let a = query_points(3, 100);
        let b = query_points(3, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&q| (0.0..10_000.0).contains(&q)));
    }

    #[test]
    fn custom_range() {
        let pts = query_points_in(1, 50, -5.0, 5.0);
        assert!(pts.iter().all(|&q| (-5.0..5.0).contains(&q)));
    }
}
