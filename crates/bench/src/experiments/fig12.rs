//! Fig. 12 — *Comparison of verifiers*: fraction of candidate objects still
//! labelled `unknown` after RS, after L-SR, and after U-SR, across
//! thresholds.
//!
//! Paper shape: at P = 0.1, RS leaves ~75% unknown, L-SR removes ~7 more
//! points, U-SR leaves ~15%; RS and U-SR work better at large P (they lower
//! upper bounds → `fail`), L-SR helps at small P (raises lower bounds →
//! `satisfy`); U-SR beats L-SR overall because candidate sets are large so
//! individual probabilities are small.

use cpnn_core::Strategy;

use crate::experiments::{longbeach_db, workload_queries, DEFAULT_DELTA};
use crate::harness::run_queries;
use crate::report::{frac, Table};

/// Run the experiment. One row per threshold; one column per verifier
/// stage, each the average fraction of candidates still unknown after it.
pub fn run(quick: bool) -> Table {
    let db = longbeach_db(quick);
    let queries = workload_queries(quick);
    let mut table = Table::new(
        "Fig. 12",
        "fraction of objects unknown after each verifier",
        &["P", "after RS", "after L-SR", "after U-SR"],
    );
    table.note("paper: ~0.75 after RS at P=0.1; U-SR strongest overall; L-SR matters at small P");
    for p in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4] {
        let s = run_queries(&db, &queries, p, DEFAULT_DELTA, Strategy::Verified);
        let get = |name: &str| {
            s.unknown_fraction_after
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, f)| *f)
                .unwrap_or(0.0)
        };
        table.push_row(vec![
            format!("{p:.2}"),
            frac(get("RS")),
            frac(get("L-SR")),
            frac(get("U-SR")),
        ]);
    }
    table
}
