//! # cpnn — umbrella crate
//!
//! Re-exports the whole workspace reproducing *"Probabilistic Verifiers:
//! Evaluating Constrained Nearest-Neighbor Queries over Uncertain Data"*
//! (Cheng, Chen, Mokbel, Chow — ICDE 2008):
//!
//! * [`pdf`] — probability substrate (pdfs, cdfs, quadrature, `erf`);
//! * [`rtree`] — from-scratch R-tree with the PNN candidate filter;
//! * [`core`] — the paper: subregions, RS/L-SR/U-SR verifiers, incremental
//!   refinement, baselines, the query engine, and extensions (k-NN, range
//!   queries, 2-D regions, persistence);
//! * [`datagen`] — synthetic workloads calibrated to the paper's setup.
//!
//! ```
//! use cpnn::core::{CpnnQuery, ObjectId, Strategy, UncertainDb, UncertainObject};
//!
//! let db = UncertainDb::build(vec![
//!     UncertainObject::uniform(ObjectId(1), 1.0, 4.0)?,
//!     UncertainObject::uniform(ObjectId(2), 2.0, 6.0)?,
//! ])?;
//! let res = db.cpnn(&CpnnQuery::new(0.0, 0.3, 0.01), Strategy::Verified)?;
//! assert_eq!(res.answers, vec![ObjectId(1)]);
//! # Ok::<(), cpnn::core::CoreError>(())
//! ```

pub use cpnn_core as core;
pub use cpnn_datagen as datagen;
pub use cpnn_pdf as pdf;
pub use cpnn_rtree as rtree;
