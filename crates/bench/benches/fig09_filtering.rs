//! Criterion bench for Fig. 9: R-tree filtering vs. Basic evaluation cost
//! per query, across dataset sizes.

use std::time::Duration;

use cpnn_bench::experiments::DEFAULT_P;
use cpnn_core::{CpnnQuery, Strategy, UncertainDb};
use cpnn_datagen::{longbeach::longbeach_with, query_points, LongBeachConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let queries = query_points(0xBEEF, 8);
    for &size in &[1_000usize, 5_000, 20_000] {
        let cfg = LongBeachConfig {
            count: size,
            ..LongBeachConfig::default()
        };
        let db = UncertainDb::build(longbeach_with(0xC0FFEE, cfg)).unwrap();
        group.bench_with_input(BenchmarkId::new("basic", size), &db, |b, db| {
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                db.cpnn(&CpnnQuery::new(q, DEFAULT_P, 0.01), Strategy::Basic)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("filter_only", size), &db, |b, db| {
            // Approximate pure filtering by a PNN candidate probe: run the
            // cheapest full path and subtract nothing — the filter time
            // dominates a Verified query at P = 1 with huge tolerance.
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                db.cpnn(&CpnnQuery::new(q, 1.0, 1.0), Strategy::Verified)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
