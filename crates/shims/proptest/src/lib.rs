//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — range/tuple/`vec` strategies, `prop_map` /
//! `prop_filter_map`, the `proptest!` macro, `prop_assert*!` and
//! `prop_assume!`, and `ProptestConfig::with_cases` — over a deterministic
//! RNG. Two deliberate simplifications versus the real crate:
//!
//! * **no shrinking** — a failing case reports its inputs (via the test's
//!   own assertion message) but is not minimized;
//! * **derived seeding** — each test derives its seed from its own name, so
//!   runs are reproducible but independent across tests.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite fast
        // while still exercising plenty of structure.
        Self { cases: 64 }
    }
}

/// Why a test case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` (or a filtering strategy) rejected the inputs.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// A value generator. `new_value` returns `None` when a filtering
/// combinator rejects the draw (the runner retries with fresh randomness).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Map through `f`, rejecting draws for which it returns `None`.
    /// `whence` labels the filter in (unused) diagnostics, mirroring the
    /// real API.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.new_value(rng).and_then(&self.f)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.new_value(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies, mirroring `proptest::bool`.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng as _;

        /// The strategy behind [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Generates `true` and `false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn new_value(&self, rng: &mut StdRng) -> Option<bool> {
                Some(rng.gen::<bool>())
            }
        }
    }

    /// Sampling strategies, mirroring `proptest::sample`.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng as _;

        /// Uniformly choose one of `values` (the `Vec` case of
        /// `proptest::sample::select`).
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires at least one value");
            Select { values }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut StdRng) -> Option<T> {
                let i = rng.gen_range(0..self.values.len());
                Some(self.values[i].clone())
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng as _;
        use std::ops::Range;

        /// `Vec` strategy with a length drawn from `len` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Runner behind the [`proptest!`] macro: repeats `case` until `cfg.cases`
/// draws succeed, retrying rejected draws (up to a global cap) and panicking
/// on the first failure.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Per-test deterministic seed: FNV-1a over the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (cfg.cases as u64).max(1) * 64;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest {name}: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        cfg.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {} failed: {msg}", passed + 1);
            }
        }
    }
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u64..9, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    // `$meta` passes every attribute through — including the mandatory
    // `#[test]` and any doc comments above it.
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::run_proptest(&__cfg, stringify!($name), |__rng| {
                    $(
                        let $arg = match $crate::Strategy::new_value(&($strat), __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::TestCaseError::Reject("strategy filter".into()),
                                )
                            }
                        };
                    )+
                    #[allow(unreachable_code)]
                    {
                        $body
                        ::core::result::Result::Ok(())
                    }
                });
            }
        )*
    };
}

/// Assert inside a property test (reports instead of unwinding mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Reject the current case unless `cond` holds (does not count toward the
/// case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).into(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vec_work(x in -5.0f64..5.0, v in prop::collection::vec(0usize..10, 1..6)) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn map_and_assume_work(e in evens(), n in 1u64..50) {
            prop_assume!(n % 7 != 0);
            prop_assert_eq!(e % 2, 0);
            prop_assert_ne!(n % 7, 0);
        }

        #[test]
        fn filter_map_rejects(x in (0u64..100).prop_filter_map("odd only", |x| {
            if x % 2 == 1 { Some(x) } else { None }
        })) {
            prop_assert!(x % 2 == 1, "got even {x}");
        }
    }

    #[test]
    #[should_panic(expected = "case 1 failed")]
    fn failures_panic() {
        crate::run_proptest(&ProptestConfig::with_cases(5), "failures_panic", |_rng| {
            Err(crate::TestCaseError::Fail("boom".into()))
        });
    }
}
