//! End-to-end integration tests: generated workloads through the full
//! filter → verify → refine pipeline, cross-validated across strategies.

use cpnn::core::{CpnnQuery, Strategy, UncertainDb};
use cpnn::datagen::{
    gaussian_variant, longbeach::longbeach_with, query_points, uniform_intervals, LongBeachConfig,
    SyntheticConfig,
};

fn small_longbeach(seed: u64, count: usize) -> UncertainDb {
    let cfg = LongBeachConfig {
        count,
        ..LongBeachConfig::default()
    };
    UncertainDb::build(longbeach_with(seed, cfg)).unwrap()
}

#[test]
fn strategies_agree_on_generated_workload() {
    let db = small_longbeach(11, 4_000);
    for (qi, q) in query_points(21, 8).into_iter().enumerate() {
        for p in [0.1, 0.3, 0.6] {
            let query = CpnnQuery::new(q, p, 0.0);
            let basic = db.cpnn(&query, Strategy::Basic).unwrap();
            let vr = db.cpnn(&query, Strategy::Verified).unwrap();
            let refine = db.cpnn(&query, Strategy::RefineOnly).unwrap();
            // Skip knife-edge cases where a probability sits within the
            // Basic integrator's tolerance of the threshold.
            if basic
                .reports
                .iter()
                .any(|r| (r.bound.lo() - p).abs() < 1e-4)
            {
                continue;
            }
            assert_eq!(basic.answers, vr.answers, "query {qi}, P = {p}");
            assert_eq!(basic.answers, refine.answers, "query {qi}, P = {p}");
        }
    }
}

#[test]
fn verified_strategy_does_less_refinement_work() {
    let db = small_longbeach(13, 4_000);
    let mut vr_integrations = 0usize;
    let mut refine_integrations = 0usize;
    for q in query_points(33, 10) {
        let query = CpnnQuery::new(q, 0.3, 0.01);
        vr_integrations += db
            .cpnn(&query, Strategy::Verified)
            .unwrap()
            .stats
            .integrations;
        refine_integrations += db
            .cpnn(&query, Strategy::RefineOnly)
            .unwrap()
            .stats
            .integrations;
    }
    assert!(
        vr_integrations < refine_integrations,
        "verification should reduce integrations: VR {vr_integrations} vs Refine {refine_integrations}"
    );
}

#[test]
fn stats_are_internally_consistent() {
    let db = small_longbeach(17, 3_000);
    let query = CpnnQuery::new(5_000.0, 0.3, 0.01);
    let res = db.cpnn(&query, Strategy::Verified).unwrap();
    assert_eq!(res.stats.total_objects, 3_000);
    assert!(res.stats.candidates >= 1);
    assert_eq!(res.reports.len(), res.stats.candidates);
    assert!(res.stats.subregions >= 2);
    assert!(!res.stats.stages.is_empty());
    // Unknown counts per stage are non-increasing.
    let unknowns: Vec<usize> = res.stats.stages.iter().map(|s| s.unknown_after).collect();
    for w in unknowns.windows(2) {
        assert!(w[1] <= w[0]);
    }
    // Answers are exactly the Satisfy-labelled reports.
    let satisfies = res
        .reports
        .iter()
        .filter(|r| r.label == cpnn::core::Label::Satisfy)
        .count();
    assert_eq!(satisfies, res.answers.len());
}

#[test]
fn gaussian_workload_runs_end_to_end() {
    // Fig. 14 configuration: same geometry, Gaussian pdfs (300-bar).
    let base = uniform_intervals(
        7,
        SyntheticConfig {
            count: 800,
            ..SyntheticConfig::default()
        },
    );
    let db = UncertainDb::build(gaussian_variant(&base, 300)).unwrap();
    let query = CpnnQuery::new(4_321.0, 0.3, 0.01);
    let vr = db.cpnn(&query, Strategy::Verified).unwrap();
    let basic = db.cpnn(&query, Strategy::Basic).unwrap();
    assert_eq!(vr.answers, basic.answers);
    // Distance histograms were re-binned: M stays bounded.
    assert!(vr.stats.subregions <= 70 * vr.stats.candidates.max(2));
}

#[test]
fn tolerance_increases_queries_finished_by_verification() {
    // Fig. 13's effect: more tolerance → more queries resolved without
    // refinement.
    let db = small_longbeach(19, 4_000);
    let queries = query_points(55, 16);
    let finished = |tol: f64| -> usize {
        queries
            .iter()
            .filter(|&&q| {
                db.cpnn(&CpnnQuery::new(q, 0.3, tol), Strategy::Verified)
                    .unwrap()
                    .stats
                    .resolved_by_verification
            })
            .count()
    };
    let f0 = finished(0.0);
    let f16 = finished(0.16);
    assert!(
        f16 >= f0,
        "tolerance should not reduce verification-resolved queries ({f0} -> {f16})"
    );
}

#[test]
fn monte_carlo_tracks_exact_probabilities_on_workload() {
    let db = small_longbeach(23, 2_000);
    let q = 1_234.5;
    let exact = db.pnn(q).unwrap();
    let query = CpnnQuery::new(q, 0.25, 0.0);
    let mc = db
        .cpnn(
            &query,
            Strategy::MonteCarlo {
                worlds: 50_000,
                seed: 5,
            },
        )
        .unwrap();
    for r in &mc.reports {
        let p_exact = exact
            .probabilities
            .iter()
            .find(|(id, _)| *id == r.id)
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        assert!(
            (r.bound.lo() - p_exact).abs() < 0.02,
            "object {}: MC {} vs exact {p_exact}",
            r.id,
            r.bound.lo()
        );
    }
}

#[test]
fn min_query_on_workload_matches_leftmost_mass() {
    let db = small_longbeach(29, 1_000);
    let res = db.pnn_min().unwrap();
    let total: f64 = res.probabilities.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-6);
    // The top answer's region must start at (or before) every far point.
    let (top_id, top_p) = res.probabilities[0];
    assert!(top_p > 0.0);
    let objects = db.objects();
    let top_obj = objects
        .iter()
        .find(|o| o.id() == top_id)
        .expect("answer exists");
    let fmin = objects
        .iter()
        .map(|o| o.region().1)
        .fold(f64::INFINITY, f64::min);
    assert!(top_obj.region().0 <= fmin);
}
