//! Best-first nearest-neighbor search (Hjaltason & Samet style).
//!
//! Not used by the C-PNN pipeline directly (uncertain objects need the
//! probabilistic machinery), but a spatial index substrate without NN search
//! would not be credible, and the examples use it to contrast *certain* NN
//! answers with probabilistic ones.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::Node;
use crate::tree::RTree;

/// Min-heap entry ordered by distance (reversed for `BinaryHeap`).
struct HeapItem<'a, T, const D: usize> {
    dist: f64,
    kind: HeapKind<'a, T, D>,
}

enum HeapKind<'a, T, const D: usize> {
    Node(&'a Node<T, D>),
    Record(&'a T),
}

impl<T, const D: usize> PartialEq for HeapItem<'_, T, D> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T, const D: usize> Eq for HeapItem<'_, T, D> {}
impl<T, const D: usize> PartialOrd for HeapItem<'_, T, D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, const D: usize> Ord for HeapItem<'_, T, D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest distance first.
        other.dist.total_cmp(&self.dist)
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// The nearest item to `q` by MINDIST on stored rectangles, with its
    /// distance. `None` when the tree is empty.
    pub fn nearest_neighbor(&self, q: &[f64; D]) -> Option<(&T, f64)> {
        self.k_nearest_neighbors(q, 1).into_iter().next()
    }

    /// The `k` nearest items to `q`, ascending by distance.
    ///
    /// Best-first search: internal nodes enter the priority queue keyed by
    /// their MBR's MINDIST; when a record reaches the front of the queue its
    /// distance is already final, so it is emitted.
    pub fn k_nearest_neighbors(&self, q: &[f64; D], k: usize) -> Vec<(&T, f64)> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapItem<'_, T, D>> = BinaryHeap::new();
        heap.push(HeapItem {
            dist: 0.0,
            kind: HeapKind::Node(self.root()),
        });
        while let Some(HeapItem { dist, kind }) = heap.pop() {
            match kind {
                HeapKind::Record(item) => {
                    out.push((item, dist));
                    if out.len() == k {
                        break;
                    }
                }
                HeapKind::Node(Node::Leaf(entries)) => {
                    for e in entries {
                        heap.push(HeapItem {
                            dist: e.rect.min_dist(q),
                            kind: HeapKind::Record(&e.item),
                        });
                    }
                }
                HeapKind::Node(Node::Internal(children)) => {
                    for c in children {
                        heap.push(HeapItem {
                            dist: c.rect.min_dist(q),
                            kind: HeapKind::Node(&c.node),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn tree_of_points(points: &[[f64; 2]]) -> RTree<usize, 2> {
        let mut t = RTree::default();
        for (i, &p) in points.iter().enumerate() {
            t.insert(Rect::point(p), i);
        }
        t
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let t: RTree<usize, 2> = RTree::default();
        assert!(t.nearest_neighbor(&[0.0, 0.0]).is_none());
        assert!(t.k_nearest_neighbors(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn nearest_point_is_found() {
        let pts: Vec<[f64; 2]> = (0..100)
            .map(|i| [(i % 10) as f64, (i / 10) as f64])
            .collect();
        let t = tree_of_points(&pts);
        let (&id, d) = t.nearest_neighbor(&[3.2, 4.1]).unwrap();
        assert_eq!(pts[id], [3.0, 4.0]);
        assert!((d - (0.04f64 + 0.01).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts: Vec<[f64; 2]> = (0..200)
            .map(|i| {
                let a = (i as f64) * 0.7391;
                [100.0 * a.sin().abs(), 100.0 * (1.3 * a).cos().abs()]
            })
            .collect();
        let t = tree_of_points(&pts);
        let q = [40.0, 60.0];
        let got: Vec<usize> = t
            .k_nearest_neighbors(&q, 10)
            .into_iter()
            .map(|(&i, _)| i)
            .collect();

        let mut brute: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let dx = p[0] - q[0];
                let dy = p[1] - q[1];
                (i, (dx * dx + dy * dy).sqrt())
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        let want: Vec<usize> = brute.into_iter().take(10).map(|(i, _)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_with_k_larger_than_len_returns_all() {
        let t = tree_of_points(&[[0.0, 0.0], [1.0, 1.0]]);
        let got = t.k_nearest_neighbors(&[0.0, 0.0], 10);
        assert_eq!(got.len(), 2);
        assert!(got[0].1 <= got[1].1);
    }

    #[test]
    fn distances_are_nondecreasing() {
        let pts: Vec<[f64; 2]> = (0..64)
            .map(|i| [(i * 7 % 31) as f64, (i * 13 % 29) as f64])
            .collect();
        let t = tree_of_points(&pts);
        let res = t.k_nearest_neighbors(&[10.0, 10.0], 64);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
