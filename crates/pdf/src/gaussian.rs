//! Truncated Gaussian uncertainty pdf.
//!
//! The paper's Gaussian experiment (Sec. V-B.5) gives each object "a mean at
//! the center of its range, and a standard deviation of 1/6 of the width of
//! the uncertainty region", renormalized so the mass inside the region is 1.
//! GPS measurement error is classically modeled this way ([2], [3]).

use crate::error::PdfError;
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use crate::traits::Pdf;
use crate::Result;

/// A Gaussian distribution truncated (and renormalized) to `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussian {
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
    /// Φ((lo-μ)/σ), cached.
    phi_lo: f64,
    /// Normalizing constant Φ((hi-μ)/σ) − Φ((lo-μ)/σ), cached.
    z: f64,
}

impl TruncatedGaussian {
    /// Create a Gaussian with the given `mean` and `std`, truncated to
    /// `[lo, hi]`.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(PdfError::EmptyRegion { lo, hi });
        }
        if !(std > 0.0) || !std.is_finite() {
            return Err(PdfError::NonPositiveParameter {
                name: "std",
                value: std,
            });
        }
        if !mean.is_finite() {
            return Err(PdfError::NonPositiveParameter {
                name: "mean",
                value: mean,
            });
        }
        let phi_lo = std_normal_cdf((lo - mean) / std);
        let phi_hi = std_normal_cdf((hi - mean) / std);
        let z = phi_hi - phi_lo;
        if !(z > 0.0) {
            return Err(PdfError::ZeroMass);
        }
        Ok(Self {
            mean,
            std,
            lo,
            hi,
            phi_lo,
            z,
        })
    }

    /// The paper's configuration: mean at the region center, `σ = width/6`.
    pub fn paper_default(lo: f64, hi: f64) -> Result<Self> {
        let width = hi - lo;
        Self::new(0.5 * (lo + hi), width / 6.0, lo, hi)
    }

    /// Mean of the *untruncated* parent Gaussian.
    pub fn raw_mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the *untruncated* parent Gaussian.
    pub fn raw_std(&self) -> f64 {
        self.std
    }
}

impl Pdf for TruncatedGaussian {
    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn density(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        std_normal_pdf((x - self.mean) / self.std) / (self.std * self.z)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        ((std_normal_cdf((x - self.mean) / self.std) - self.phi_lo) / self.z).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let z = std_normal_quantile(self.phi_lo + p * self.z);
        (self.mean + self.std * z).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::adaptive_simpson;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(TruncatedGaussian::new(0.0, 1.0, -1.0, 1.0).is_ok());
        assert!(TruncatedGaussian::new(0.0, 0.0, -1.0, 1.0).is_err());
        assert!(TruncatedGaussian::new(0.0, -2.0, -1.0, 1.0).is_err());
        assert!(TruncatedGaussian::new(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(TruncatedGaussian::new(f64::NAN, 1.0, 0.0, 1.0).is_err());
        // Mean 60σ away from the region: zero mass inside.
        assert!(TruncatedGaussian::new(100.0, 1.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let g = TruncatedGaussian::paper_default(10.0, 16.0).unwrap();
        let total = adaptive_simpson(|x| g.density(x), 10.0, 16.0, 1e-12);
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
    }

    #[test]
    fn paper_default_centers_mass() {
        let g = TruncatedGaussian::paper_default(0.0, 6.0).unwrap();
        assert_eq!(g.raw_mean(), 3.0);
        assert_eq!(g.raw_std(), 1.0);
        assert!((g.cdf(3.0) - 0.5).abs() < 1e-12);
        // symmetric: cdf(3-d) + cdf(3+d) = 1
        for d in [0.5, 1.0, 2.0, 2.9] {
            assert!((g.cdf(3.0 - d) + g.cdf(3.0 + d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_clamps_outside_region() {
        let g = TruncatedGaussian::paper_default(-2.0, 2.0).unwrap();
        assert_eq!(g.cdf(-3.0), 0.0);
        assert_eq!(g.cdf(3.0), 1.0);
        assert_eq!(g.density(-3.0), 0.0);
        assert_eq!(g.density(3.0), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = TruncatedGaussian::new(5.0, 2.0, 0.0, 8.0).unwrap();
        for p in [0.001, 0.1, 0.4, 0.5, 0.77, 0.999] {
            let x = g.quantile(p);
            assert!(
                (g.cdf(x) - p).abs() < 1e-9,
                "p = {p}, x = {x}, cdf = {}",
                g.cdf(x)
            );
        }
    }

    #[test]
    fn truncation_renormalizes() {
        // Heavily skewed truncation: N(0,1) restricted to [1, 3].
        let g = TruncatedGaussian::new(0.0, 1.0, 1.0, 3.0).unwrap();
        let total = adaptive_simpson(|x| g.density(x), 1.0, 3.0, 1e-12);
        assert!((total - 1.0).abs() < 1e-9);
        assert!(g.mean() > 1.0 && g.mean() < 3.0);
    }

    #[test]
    fn sampling_matches_moments() {
        let g = TruncatedGaussian::paper_default(0.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        const N: usize = 20_000;
        let mut mean = 0.0;
        for _ in 0..N {
            let x = g.sample(&mut rng);
            assert!((0.0..=6.0).contains(&x));
            mean += x;
        }
        mean /= N as f64;
        assert!((mean - 3.0).abs() < 0.05, "sample mean {mean}");
    }
}
