//! Serve-mode benchmark — beyond the paper: the long-lived
//! [`QueryServer`] against the up-front [`cpnn_core::BatchExecutor`]
//! baseline on the same workload, across worker-thread counts.
//!
//! The batch executor is the throughput ceiling: it pays no per-request
//! channel round-trip and needs no queue. The server streams queries one
//! at a time through an `mpsc` submission queue with a bounded in-flight
//! window (closed-loop, `64 × threads` outstanding requests), which is the
//! steady-state regime of an interactive service. The table reports both
//! throughputs, their ratio, and the sojourn-latency percentiles
//! (submit → response, including queue wait) that only serve mode has.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpnn_core::{QueryServer, QuerySpec, Strategy, Ticket, UncertainDb};

use crate::experiments::{longbeach_db, DEFAULT_DELTA, DEFAULT_P};
use crate::harness::run_queries_batched;
use crate::report::Table;
use cpnn_datagen::query_points;

use super::batch::thread_sweep;

/// Sojourn latencies of a closed-loop streamed run: submit each query as
/// soon as the in-flight window has room, retire the oldest ticket when it
/// is full. Returns (wall time, per-query latencies in submission order).
fn streamed_run(
    db: &Arc<UncertainDb>,
    queries: &[f64],
    spec: &QuerySpec,
    threads: usize,
) -> (Duration, Vec<Duration>) {
    let server = QueryServer::<UncertainDb>::start(Arc::clone(db), threads, db.config().pipeline());
    let window = threads * 64;
    let mut inflight: VecDeque<(Instant, Ticket)> = VecDeque::with_capacity(window);
    let mut latencies = Vec::with_capacity(queries.len());
    // Single retirement path for both lanes: validate the response and
    // record the sojourn latency of the popped entry.
    let record = |served: cpnn_core::Served, submitted: Instant, latencies: &mut Vec<Duration>| {
        served.result.expect("benchmark queries are valid");
        latencies.push(submitted.elapsed());
    };
    let start = Instant::now();
    for &q in queries {
        // Opportunistically drain everything that already completed (no
        // blocking), then block on the oldest ticket only if the window is
        // still full.
        loop {
            let ready = match inflight.front() {
                Some((_, ticket)) => ticket.try_wait(),
                None => None,
            };
            let Some(served) = ready else { break };
            let (submitted, _) = inflight.pop_front().expect("front exists");
            record(served, submitted, &mut latencies);
        }
        if inflight.len() >= window {
            let (submitted, ticket) = inflight.pop_front().expect("window is non-empty");
            record(ticket.wait(), submitted, &mut latencies);
        }
        inflight.push_back((Instant::now(), server.submit(q, *spec)));
    }
    for (submitted, ticket) in inflight {
        record(ticket.wait(), submitted, &mut latencies);
    }
    let wall = start.elapsed();
    server.shutdown();
    (wall, latencies)
}

/// Throughput of the micro-batch streaming lane: the same query stream cut
/// into [`MICRO_BATCH`]-sized `submit_batch` chunks (each chunk pins one
/// snapshot), with a small window of chunks in flight. This amortizes the
/// per-request channel round-trip and is the intended steady-state mode for
/// high-rate ingest.
fn micro_batched_run(
    db: &Arc<UncertainDb>,
    queries: &[f64],
    spec: &QuerySpec,
    threads: usize,
) -> Duration {
    let server = QueryServer::<UncertainDb>::start(Arc::clone(db), threads, db.config().pipeline());
    let window = 2 * threads;
    let mut inflight = VecDeque::with_capacity(window);
    let start = Instant::now();
    for chunk in queries.chunks(MICRO_BATCH) {
        if inflight.len() >= window {
            let oldest: cpnn_core::Ticket<Vec<cpnn_core::Served>> =
                inflight.pop_front().expect("window is non-empty");
            for served in oldest.wait() {
                served.result.expect("benchmark queries are valid");
            }
        }
        inflight.push_back(server.submit_batch(chunk.iter().map(|&q| (q, *spec)).collect()));
    }
    for ticket in inflight {
        for served in ticket.wait() {
            served.result.expect("benchmark queries are valid");
        }
    }
    let wall = start.elapsed();
    server.shutdown();
    wall
}

/// Queries per `submit_batch` chunk in the micro-batch lane.
const MICRO_BATCH: usize = 32;

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// Run the experiment. Columns: threads, batch and serve throughput, their
/// ratio, and serve-mode latency percentiles.
pub fn run(quick: bool) -> Table {
    let db = Arc::new(longbeach_db(quick));
    let n_queries = if quick { 2_000 } else { 10_000 };
    let queries = query_points(0x5E12E, n_queries);
    let spec = QuerySpec::nn(DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
    let mut table = Table::new(
        "Serve",
        &format!("QueryServer streaming vs. BatchExecutor on a {n_queries}-query VR workload"),
        &[
            "threads",
            "batch q/s",
            "serve q/s",
            "serve/batch",
            "µbatch q/s",
            "µb/batch",
            "p50 (µs)",
            "p95 (µs)",
            "p99 (µs)",
        ],
    );
    table.note(format!(
        "{} queries, |T| = {}, P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, \
         window = 64 × threads (single-query lane) / {MICRO_BATCH}-query chunks \
         (micro-batch lane), {} core(s)",
        n_queries,
        db.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    // Best-of-REPS per mode: the container's scheduler jitter swamps the
    // mode differences in any single run, and the minimum wall clock is the
    // steady-state capacity estimate.
    const REPS: usize = 3;
    for threads in thread_sweep() {
        let mut batch_qps: f64 = 0.0;
        let mut serve_qps: f64 = 0.0;
        let mut micro_qps: f64 = 0.0;
        let mut latencies = Vec::new();
        let mut best_serve_wall = Duration::MAX;
        for _ in 0..REPS {
            let batch = run_queries_batched(
                &db,
                &queries,
                DEFAULT_P,
                DEFAULT_DELTA,
                Strategy::Verified,
                threads,
            );
            batch_qps = batch_qps.max(batch.throughput());
            let (wall, lat) = streamed_run(&db, &queries, &spec, threads);
            if wall < best_serve_wall {
                best_serve_wall = wall;
                latencies = lat;
            }
            serve_qps = serve_qps.max(n_queries as f64 / wall.as_secs_f64().max(1e-9));
            let micro_wall = micro_batched_run(&db, &queries, &spec, threads);
            micro_qps = micro_qps.max(n_queries as f64 / micro_wall.as_secs_f64().max(1e-9));
        }
        latencies.sort_unstable();
        table.push_row(vec![
            threads.to_string(),
            format!("{batch_qps:.0}"),
            format!("{serve_qps:.0}"),
            format!("{:.2}", serve_qps / batch_qps.max(1e-9)),
            format!("{micro_qps:.0}"),
            format!("{:.2}", micro_qps / batch_qps.max(1e-9)),
            format!("{:.1}", percentile_us(&latencies, 0.50)),
            format!("{:.1}", percentile_us(&latencies, 0.95)),
            format!("{:.1}", percentile_us(&latencies, 0.99)),
        ]);
    }
    table
}
