//! The [`SpatialIndex`] seam: what the query engines need from an index.
//!
//! The 1-D interval database and the 2-D bbox database used to carry their
//! own copies of the index plumbing (bulk build, candidate filtering,
//! incremental change). This trait is the single seam both now share:
//! **bulk-load** for the initial build, **path-copying** for incremental
//! change, and the PNN candidate filter for queries. [`RTree`] is the
//! canonical implementation; the trait exists so storage layers
//! (`cpnn-core`'s `IndexedStore`) are written once, against the seam.

use crate::filter::{Candidate, FilterStats};
use crate::geometry::Rect;
use crate::node::Params;
use crate::tree::RTree;

/// A persistent spatial index over `(Rect<D>, T)` records.
///
/// Implementations are **snapshots**: `Clone` must be cheap (structural
/// sharing) and [`with_inserted`](SpatialIndex::with_inserted) /
/// [`with_removed`](SpatialIndex::with_removed) must return new handles
/// that leave `self` untouched — the copy-on-write contract the serving
/// layer's snapshot swaps are built on.
pub trait SpatialIndex<T, const D: usize>: Clone + Sized {
    /// Build a packed index from `(rect, item)` pairs (the initial-build
    /// path: O(n log n) once, instead of n incremental inserts).
    fn build(items: Vec<(Rect<D>, T)>, params: Params) -> Self;

    /// Number of stored records.
    fn len(&self) -> usize;

    /// Is the index empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum bounding rectangle of everything stored, `None` when empty.
    fn mbr(&self) -> Option<Rect<D>>;

    /// Path-copying insert: a new snapshot containing the record, sharing
    /// all untouched structure with `self`.
    fn with_inserted(&self, rect: Rect<D>, item: T) -> Self;

    /// Path-copying remove of the first record with this exact `rect` for
    /// which `pred` holds. Returns the new snapshot and the removed item
    /// (`self` unchanged either way).
    fn with_removed(&self, rect: &Rect<D>, pred: &mut dyn FnMut(&T) -> bool) -> (Self, Option<T>);

    /// The PNN filtering phase: candidates that may be among the `k`
    /// nearest of `q` (prune by the `k`-th smallest far point).
    fn candidates_k(&self, q: &[f64; D], k: usize) -> (Vec<Candidate<'_, T, D>>, FilterStats);

    /// All records whose rects intersect `query`.
    fn intersecting(&self, query: &Rect<D>) -> Vec<(&Rect<D>, &T)>;

    /// Visit every record (deterministic order).
    fn for_each_record(&self, f: &mut dyn FnMut(&Rect<D>, &T));
}

impl<T: Clone, const D: usize> SpatialIndex<T, D> for RTree<T, D> {
    fn build(items: Vec<(Rect<D>, T)>, params: Params) -> Self {
        RTree::bulk_load_with(items, params)
    }

    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn mbr(&self) -> Option<Rect<D>> {
        RTree::mbr(self)
    }

    fn with_inserted(&self, rect: Rect<D>, item: T) -> Self {
        RTree::with_inserted(self, rect, item)
    }

    fn with_removed(&self, rect: &Rect<D>, pred: &mut dyn FnMut(&T) -> bool) -> (Self, Option<T>) {
        RTree::with_removed(self, rect, |t| pred(t))
    }

    fn candidates_k(&self, q: &[f64; D], k: usize) -> (Vec<Candidate<'_, T, D>>, FilterStats) {
        self.pnn_candidates_k(q, k)
    }

    fn intersecting(&self, query: &Rect<D>) -> Vec<(&Rect<D>, &T)> {
        self.search_intersecting(query)
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&Rect<D>, &T)) {
        self.for_each(|r, t| f(r, t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercise the engines' usage pattern through the trait object seam.
    fn roundtrip<I: SpatialIndex<u64, 1>>() {
        let idx = I::build(
            (0..50)
                .map(|i| (Rect::interval(i as f64, i as f64 + 0.5), i))
                .collect(),
            Params::default(),
        );
        assert_eq!(idx.len(), 50);
        let grown = idx.with_inserted(Rect::interval(7.1, 7.2), 999);
        assert_eq!(idx.len(), 50, "original snapshot untouched");
        assert_eq!(grown.len(), 51);
        let (shrunk, removed) = grown.with_removed(&Rect::interval(7.1, 7.2), &mut |&i| i == 999);
        assert_eq!(removed, Some(999));
        assert_eq!(shrunk.len(), 50);
        let (cands, stats) = shrunk.candidates_k(&[7.25], 1);
        assert!(!cands.is_empty());
        assert!(stats.fmin.is_finite());
        let mut seen = 0usize;
        shrunk.for_each_record(&mut |_, _| seen += 1);
        assert_eq!(seen, 50);
        assert!(shrunk.mbr().is_some());
        assert!(!shrunk.intersecting(&Rect::interval(3.0, 4.0)).is_empty());
    }

    #[test]
    fn rtree_satisfies_the_seam() {
        roundtrip::<RTree<u64, 1>>();
    }
}
