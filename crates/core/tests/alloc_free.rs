//! Counting-allocator proof that the verify/refine hot loops are
//! allocation-free once the per-query scratch is warm.
//!
//! The kernel layer's contract is **zero heap allocations per subregion**:
//! after one warm-up query has grown the scratch buffers, re-running
//! verification must allocate nothing at all, and a full refinement pass
//! must allocate only its `RefineReport::per_object` vector (one allocation
//! per *query*, independent of |C| and M).
//!
//! This file contains a single test so no concurrent test can perturb the
//! global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use cpnn_core::classify::Classifier;
use cpnn_core::framework::{extended_verifiers, knn_verifiers, run_verification_into};
use cpnn_core::refine::{incremental_refine_with, RefinementOrder};
use cpnn_core::verifiers::simd::{force_tier, SimdTier};
use cpnn_core::verifiers::{kernels, VerificationState};
use cpnn_core::{CandidateSet, ObjectId, SubregionTable, UncertainObject};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A crowded candidate set: 40 mutually overlapping uniforms, ~40 left
/// subregions, every object ambiguous near the 1/40 threshold.
fn crowded_candidates() -> CandidateSet {
    let objects: Vec<UncertainObject> = (0..40)
        .map(|i| {
            let lo = 1.0 + 0.05 * i as f64;
            UncertainObject::uniform(ObjectId(i as u64), lo, lo + 50.0).expect("valid region")
        })
        .collect();
    CandidateSet::build(&objects, 0.0, 0).expect("valid candidate set")
}

#[test]
fn warm_verify_and_refine_do_not_allocate_per_subregion() {
    let cands = crowded_candidates();
    let table = SubregionTable::build(&cands);
    assert!(table.left_regions() >= 30, "want a crowded table");
    // Ambiguous threshold with zero tolerance: verification alone cannot
    // resolve, so refinement integrates many subregions.
    let classifier = Classifier::new(0.02, 0.0).unwrap();
    let chain = extended_verifiers();
    let knn_chain = knn_verifiers(2);
    let mut state = VerificationState::new(&table);
    let mut stages = Vec::new();

    // ---- Warm-up: grow every scratch buffer to its high-water mark. ----
    state.reset(&table);
    run_verification_into(&table, &classifier, &chain, &mut state, &mut stages);
    incremental_refine_with(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::nn_qualification(&table, i, j, scr),
    );
    state.reset(&table);
    stages.clear();
    run_verification_into(&table, &classifier, &knn_chain, &mut state, &mut stages);
    incremental_refine_with(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::knn_qualification(&table, i, j, 2, scr),
    );
    // Also warm the full-refinement path (every object, no verification) so
    // the visit-order buffer reaches its high-water mark.
    state.reset(&table);
    incremental_refine_with(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::nn_qualification(&table, i, j, scr),
    );

    // ---- Measured: 1-NN verification must allocate nothing at all. ----
    state.reset(&table);
    stages.clear();
    let before = allocations();
    run_verification_into(&table, &classifier, &chain, &mut state, &mut stages);
    let verify_allocs = allocations() - before;
    assert_eq!(
        verify_allocs, 0,
        "warm 1-NN verification performed {verify_allocs} allocations"
    );

    // ---- Measured: refinement may allocate only its report vector. ----
    // Refine a fresh (unverified) state so every object takes the full
    // refinement path — hundreds of per-subregion integrations.
    state.reset(&table);
    let before = allocations();
    let report = incremental_refine_with(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::nn_qualification(&table, i, j, scr),
    );
    let refine_allocs = allocations() - before;
    assert!(
        report.integrations > 50,
        "refinement must actually integrate (got {})",
        report.integrations
    );
    assert!(
        refine_allocs <= 1,
        "warm refinement performed {refine_allocs} allocations over {} integrations",
        report.integrations
    );

    // ---- Measured: same contract for the k-NN chain. ----
    state.reset(&table);
    stages.clear();
    let before = allocations();
    run_verification_into(&table, &classifier, &knn_chain, &mut state, &mut stages);
    let knn_verify_allocs = allocations() - before;
    assert_eq!(
        knn_verify_allocs, 0,
        "warm k-NN verification performed {knn_verify_allocs} allocations"
    );

    state.reset(&table);
    let before = allocations();
    let report = incremental_refine_with(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::knn_qualification(&table, i, j, 2, scr),
    );
    let knn_refine_allocs = allocations() - before;
    assert!(
        knn_refine_allocs <= 1,
        "warm k-NN refinement performed {knn_refine_allocs} allocations over {} integrations",
        report.integrations
    );

    // ---- Measured: the SIMD staging buffers (`q_col` / `q_hi_col`) obey
    // the same contract at EVERY dispatch tier — warm once, then zero
    // allocations whether the columns are staged by scalar, SSE2, or AVX2
    // lanes. (`SimdTier::available()` allocates its Vec, so it runs before
    // the measured region; tier flips are a single atomic store.) ----
    let tiers = SimdTier::available();
    for &tier in &tiers {
        // Warm at this tier (buffer sizes are tier-independent, but keep
        // the warm/measure discipline anyway).
        assert_eq!(force_tier(Some(tier)), tier, "tier not forceable");
        state.reset(&table);
        stages.clear();
        run_verification_into(&table, &classifier, &chain, &mut state, &mut stages);

        state.reset(&table);
        stages.clear();
        let before = allocations();
        run_verification_into(&table, &classifier, &chain, &mut state, &mut stages);
        let tier_allocs = allocations() - before;
        assert_eq!(
            tier_allocs,
            0,
            "warm 1-NN verification at tier {} performed {tier_allocs} allocations",
            tier.name()
        );

        state.reset(&table);
        stages.clear();
        let before = allocations();
        run_verification_into(&table, &classifier, &knn_chain, &mut state, &mut stages);
        let tier_allocs = allocations() - before;
        assert_eq!(
            tier_allocs,
            0,
            "warm k-NN verification at tier {} performed {tier_allocs} allocations",
            tier.name()
        );
    }
    force_tier(None);
}
