//! Anatomy of a verification run: watch the probability bounds tighten
//! verifier by verifier, then collapse under incremental refinement.
//!
//! Reproduces, step by step, the flow of paper Figs. 5 and 7 on a small
//! hand-built candidate set.
//!
//! Run with: `cargo run --example verifier_anatomy`

use cpnn::core::classify::Label;
use cpnn::core::exact::exact_probabilities;
use cpnn::core::framework::classify_all;
use cpnn::core::refine::{incremental_refine, RefinementOrder};
use cpnn::core::verifiers::{
    LowerSubregion, RightmostSubregion, UpperSubregion, VerificationState, Verifier,
};
use cpnn::core::{CandidateSet, Classifier, ObjectId, SubregionTable, UncertainObject};
use cpnn::pdf::HistogramPdf;

fn show(state: &VerificationState, stage: &str) {
    println!("after {stage}:");
    for (i, (b, l)) in state.bounds.iter().zip(&state.labels).enumerate() {
        println!("  X{} : bound {} → {:?}", i + 1, b, l);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three overlapping objects, q = 0 (distances = values).
    let objects = vec![
        UncertainObject::from_histogram(
            ObjectId(1),
            HistogramPdf::from_masses(vec![1.0, 3.0, 7.0], vec![0.3, 0.7])?,
        ),
        UncertainObject::uniform(ObjectId(2), 2.0, 6.0)?,
        UncertainObject::uniform(ObjectId(3), 4.0, 8.0)?,
    ];
    let q = 0.0;
    let cands = CandidateSet::build(&objects, q, 0)?;
    let table = SubregionTable::build(&cands);

    println!(
        "candidate set |C| = {}, fmin = {}",
        cands.len(),
        table.fmin()
    );
    println!("end-points: {:?}", table.endpoints());
    println!("subregion probabilities s_ij (left regions):");
    for i in 0..table.n_objects() {
        let row: Vec<String> = (0..table.left_regions())
            .map(|j| format!("{:.3}", table.mass(i, j)))
            .collect();
        println!(
            "  X{}: [{}] + rightmost {:.3}",
            i + 1,
            row.join(", "),
            table.rightmost(i)
        );
    }
    println!(
        "c_j (objects per subregion): {:?}\n",
        (0..table.left_regions())
            .map(|j| table.count(j))
            .collect::<Vec<_>>()
    );

    // C-PNN with an awkward threshold that forces every stage to work.
    let classifier = Classifier::new(0.45, 0.0)?;
    let mut state = VerificationState::new(&table);

    for verifier in [
        Box::new(RightmostSubregion) as Box<dyn Verifier>,
        Box::new(LowerSubregion),
        Box::new(UpperSubregion),
    ] {
        verifier.apply(&table, &mut state);
        classify_all(&classifier, &mut state);
        show(&state, verifier.name());
    }

    let unknowns = state
        .labels
        .iter()
        .filter(|&&l| l == Label::Unknown)
        .count();
    println!("\n{unknowns} object(s) still unknown → incremental refinement");
    let report = incremental_refine(
        &table,
        &classifier,
        &mut state,
        RefinementOrder::DescendingMass,
    );
    show(&state, "refinement");
    println!(
        "refined {} object(s) with {} per-subregion integrations",
        report.refined_objects, report.integrations
    );

    let (exact, _) = exact_probabilities(&table);
    println!("\nexact probabilities for reference:");
    for (i, p) in exact.iter().enumerate() {
        println!("  X{}: {:.4}", i + 1, p);
    }
    Ok(())
}
