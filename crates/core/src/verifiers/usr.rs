//! The Upper-Subregion (U-SR) verifier (paper Appendix I, Eqs. 5/10/11).
//!
//! Split on the event `F` = "every other object lies beyond `e_{j+1}`":
//!
//! * if `F` holds, `X_i` (whose distance is in `S_j`) is certainly nearest:
//!   contributes `Pr[F] = Π_{k≠i}(1 − D_k(e_{j+1}))`;
//! * otherwise (given `E`) at least one other object shares `S_j`, so the
//!   exchangeability argument caps the conditional probability at `1/2`:
//!   contributes at most `½ (Pr[E] − Pr[F])`.
//!
//! Together `q_ij.u = ½ (Pr[F] + Pr[E]) =
//! ½ (Π_{k≠i}(1 − D_k(e_{j+1})) + Π_{k≠i}(1 − D_k(e_j)))`, and
//! `p_i.u = Σ_j s_ij · q_ij.u`. Cost: `O(|C|·M)` — consecutive subregions
//! share an end-point, so one exclude-one product per end-point suffices
//! (the paper's Eq. 11 reuse of `Y_j`, `Y_{j+1}`).

use crate::classify::Label;
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{VerificationState, Verifier};

/// The U-SR verifier. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpperSubregion;

impl Verifier for UpperSubregion {
    fn name(&self) -> &'static str {
        "U-SR"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        // Consecutive subregions share an end-point (the paper's Y_j /
        // Y_{j+1} reuse): read both from the shared product table, or keep
        // the two products in ping-pong buffers when the table is too big.
        let shared = state.kernel.try_shared_products(table);
        if !shared {
            state.kernel.excl.recompute_survival(table.cdf_col(0));
        }
        // Whole-column staging computes the trapezoid for every row; the
        // fused scalar path only touches unlabeled ones. Same expression
        // (`fill_usr_scalar`'s) either way — decide once per pass.
        let active = state
            .labels
            .iter()
            .filter(|&&lb| lb == Label::Unknown)
            .count();
        let stage = 2 * active >= n;
        for j in 0..l {
            if !shared {
                state
                    .kernel
                    .excl_next
                    .recompute_survival(table.cdf_col(j + 1));
            }
            let mass = table.mass_col(j);
            if stage {
                // Stage the trapezoid column through the vector kernel; the
                // per-cell clamp against the lower bound stays in the scalar
                // application loop (it depends on `qij_lo`).
                state.kernel.stage_usr(n, shared, j);
                for (i, &m) in mass.iter().enumerate() {
                    if state.labels[i] != Label::Unknown || m <= MASS_EPS {
                        continue;
                    }
                    let q = state.kernel.q_col[i];
                    let lo = state.qij_lo[i * l + j];
                    let cell = &mut state.qij_hi[i * l + j];
                    if q < *cell {
                        *cell = q.clamp(lo, 1.0);
                    }
                }
            } else {
                let st = &mut *state;
                let (pc, sc, pn, sn) = st.kernel.usr_products(shared, j);
                for i in 0..n {
                    if st.labels[i] != Label::Unknown || mass[i] <= MASS_EPS {
                        continue;
                    }
                    let q = 0.5 * (pn[i] * sn[i + 1] + pc[i] * sc[i + 1]);
                    let lo = st.qij_lo[i * l + j];
                    let cell = &mut st.qij_hi[i * l + j];
                    if q < *cell {
                        *cell = q.clamp(lo, 1.0);
                    }
                }
            }
            if !shared {
                state.kernel.swap_products();
            }
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_upper(table, i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig7_exact, fig7_scenario};

    #[test]
    fn usr_upper_bounds_match_hand_computation() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        UpperSubregion.apply(&table, &mut state);
        let want = [0.478_125, 0.5, 0.065_625];
        for (i, w) in want.iter().enumerate() {
            assert!(
                (state.bounds[i].hi() - w).abs() < 1e-12,
                "object {i}: {} vs {w}",
                state.bounds[i].hi()
            );
        }
    }

    #[test]
    fn usr_per_subregion_values() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        UpperSubregion.apply(&table, &mut state);
        let l = table.left_regions();
        // q_14.u = ½[(1−D2(6))(1−D3(6)) + (1−D2(4))(1−D3(4))] = ½[0·0.5 + 0.5·1] = 0.25
        assert!((state.qij_hi[3] - 0.25).abs() < 1e-12);
        // q_24.u = ½[(1−D1(6))(1−D3(6)) + (1−D1(4))(1−D3(4))] = ½[0.0875 + 0.525]
        assert!((state.qij_hi[l + 3] - 0.30625).abs() < 1e-12);
        // q_34.u = ½[(1−D1(6))(1−D2(6)) + (1−D1(4))(1−D2(4))] = ½[0 + 0.2625]
        assert!((state.qij_hi[2 * l + 3] - 0.13125).abs() < 1e-12);
    }

    #[test]
    fn usr_upper_bound_never_below_exact() {
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        UpperSubregion.apply(&table, &mut state);
        for (i, p) in fig7_exact().iter().enumerate() {
            assert!(
                state.bounds[i].hi() >= p - 1e-9,
                "object {i}: upper {} < exact {p}",
                state.bounds[i].hi()
            );
        }
    }

    #[test]
    fn usr_is_at_least_as_tight_as_rs() {
        // p_i.u from U-SR is Σ_j s_ij·q_ij.u ≤ Σ_j s_ij = 1 − s_iM, the RS bound.
        let (cands, _) = fig7_scenario();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        UpperSubregion.apply(&table, &mut state);
        for i in 0..3 {
            assert!(state.bounds[i].hi() <= 1.0 - table.rightmost(i) + 1e-12);
        }
    }

    #[test]
    fn usr_two_identical_objects_give_half() {
        // Two identical uniforms: exact probability ½ each; U-SR should hit
        // it exactly (Pr[F] = 0 at the far end, Pr[E] = 1 at the near end).
        let objects = vec![
            crate::object::UncertainObject::uniform(crate::object::ObjectId(0), 1.0, 3.0).unwrap(),
            crate::object::UncertainObject::uniform(crate::object::ObjectId(1), 1.0, 3.0).unwrap(),
        ];
        let cands = crate::candidate::CandidateSet::build(&objects, 0.0, 0).unwrap();
        let table = SubregionTable::build(&cands);
        let mut state = VerificationState::new(&table);
        UpperSubregion.apply(&table, &mut state);
        for i in 0..2 {
            assert!((state.bounds[i].hi() - 0.5).abs() < 1e-12, "object {i}");
        }
    }
}
