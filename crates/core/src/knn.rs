//! Probabilistic k-nearest-neighbor queries — the paper's stated future
//! work ("For future work, we will … study the evaluation of k-NN
//! queries", Sec. VI).
//!
//! For an object `X_i`, the *k-NN qualification probability* is
//!
//! ```text
//! p_i(k) = Pr[ at most k−1 other objects are closer to q than X_i ]
//!        = ∫ d_i(r) · PB_{≤ k−1}( { D_j(r) } for j ≠ i ) dr
//! ```
//!
//! where `PB_{≤ t}` is the Poisson-binomial tail — the probability that at
//! most `t` of the independent events "`R_j < r`" occur. Inside a subregion
//! every `D_j` is linear, so the integrand is a polynomial and the same
//! per-subregion Gauss–Legendre treatment as 1-NN applies; the dynamic
//! program costs `O(|C|·k)` per evaluation point.
//!
//! Two pieces of the 1-NN machinery generalize directly:
//!
//! * **filtering** by `fmin_k`, the k-th smallest far point
//!   ([`cpnn_rtree::RTree::pnn_candidates_k`], [`CandidateSet::build_k`]);
//! * the **RS verifier**: mass beyond `fmin_k` can never qualify, so
//!   `p_i(k).u ≤ 1 − s_iM` with the rightmost subregion now `[fmin_k, fmax]`.
//!
//! L-SR/U-SR-style subregion bounds for `k > 1` need a k-ary
//! exchangeability argument the paper does not develop; here the RS-k bound
//! plus incremental exact refinement evaluates the constrained query
//! (C-PkNN), and the structure mirrors Fig. 3's pipeline.

use rand::Rng;

use crate::bounds::ProbBound;
use crate::candidate::CandidateSet;
use crate::classify::{Classifier, Label};
use crate::error::{CoreError, Result};
use crate::framework::{knn_verifiers, run_verification_into};
use crate::refine::{incremental_refine_with, RefinementOrder};
use crate::subregion::{SubregionTable, MASS_EPS};
use crate::verifiers::{kernels, VerificationState, Verifier};

use cpnn_pdf::integrate::{gauss_legendre, GlOrder};

/// `PB_{≤ limit}`: probability that at most `limit` of the independent
/// events with probabilities `probs` occur. `O(n·limit)` dynamic program;
/// mass beyond `limit` successes is absorbed (dropped), so the sum of the
/// state vector is exactly the tail probability.
pub fn poisson_binomial_at_most(probs: impl Iterator<Item = f64>, limit: usize) -> f64 {
    let mut dp = vec![0.0; limit + 1];
    dp[0] = 1.0;
    for p in probs {
        let p = p.clamp(0.0, 1.0);
        for c in (0..=limit).rev() {
            let stay = dp[c] * (1.0 - p);
            let come = if c > 0 { dp[c - 1] * p } else { 0.0 };
            dp[c] = stay + come;
        }
    }
    dp.iter().sum::<f64>().clamp(0.0, 1.0)
}

/// Exact k-NN subregion qualification: the probability that `X_i` is among
/// the `k` nearest, given `R_i ∈ S_j`.
pub fn knn_subregion_qualification(table: &SubregionTable, i: usize, j: usize, k: usize) -> f64 {
    let n = table.n_objects();
    if k >= n {
        return 1.0; // fewer competitors than slots
    }
    let active: Vec<(f64, f64)> = (0..n)
        .filter(|&kk| kk != i)
        .map(|kk| (table.cdf_at(kk, j), table.mass(kk, j)))
        .collect();
    let panels = active.len().div_ceil(24).max(1);
    let w = 1.0 / panels as f64;
    let mut total = 0.0;
    for p in 0..panels {
        let a = p as f64 * w;
        total += gauss_legendre(
            |t| poisson_binomial_at_most(active.iter().map(|&(a_k, m_k)| a_k + t * m_k), k - 1),
            a,
            a + w,
            GlOrder::Sixteen,
        );
    }
    total.clamp(0.0, 1.0)
}

/// Exact k-NN qualification probabilities for every candidate. The table
/// must have been built from a k-horizon candidate set
/// ([`CandidateSet::build_k`] with the same `k`).
pub fn knn_probabilities(table: &SubregionTable, k: usize) -> Vec<f64> {
    let n = table.n_objects();
    let l = table.left_regions();
    let mut out = vec![0.0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut p = 0.0;
        for j in 0..l {
            let s = table.mass(i, j);
            if s > MASS_EPS {
                p += s * knn_subregion_qualification(table, i, j, k);
            }
        }
        *slot = p.clamp(0.0, 1.0);
    }
    out
}

/// The RS-k verifier bound: `p_i(k).u ≤ 1 − s_iM` where the rightmost
/// subregion starts at `fmin_k`.
pub fn knn_upper_bounds(table: &SubregionTable) -> Vec<f64> {
    (0..table.n_objects())
        .map(|i| 1.0 - table.rightmost(i))
        .collect()
}

/// The subregion verifier for k-NN — the L-SR/U-SR generalization the
/// paper leaves to future work, packaged as a [`Verifier`] so the unified
/// pipeline ([`crate::pipeline`]) runs it through the same Fig. 5 framework
/// as the 1-NN chain. For each object `i` and left subregion `S_j`:
///
/// * **lower** (`L-SR-k`): given `R_i ∈ S_j`, if at most `k−1` others lie
///   below `e_{j+1}` then certainly at most `k−1` lie below `R_i`, so
///   `q_ij.l = PB_{≤k−1}({D_m(e_{j+1})}_{m≠i})`;
/// * **upper** (`U-SR-k`): every object below `e_j` is certainly closer, so
///   `q_ij.u = PB_{≤k−1}({D_m(e_j)}_{m≠i})`.
///
/// Both are pure tail evaluations at end-points — no integration. Using a
/// shared truncated Poisson-binomial state per end-point plus exclude-one
/// deconvolution the cost is `O(|C|·M·k)`, the natural k-ary analogue of
/// Table III's `O(|C|·M)`. The per-subregion `q_ij` bounds land in the
/// [`VerificationState`], where incremental refinement reuses them.
#[derive(Debug, Clone, Copy)]
pub struct KnnSubregion {
    k: usize,
}

impl KnnSubregion {
    /// Verifier for the `k`-nearest-neighbor qualification (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }
}

impl Verifier for KnnSubregion {
    fn name(&self) -> &'static str {
        "SR-k"
    }

    fn apply(&self, table: &SubregionTable, state: &mut VerificationState) {
        let n = table.n_objects();
        let l = table.left_regions();
        if n == 0 || l == 0 {
            return;
        }
        let k = self.k;
        if k >= n {
            // Fewer competitors than slots: membership is certain wherever
            // the object has mass below the horizon.
            for i in 0..n {
                if state.labels[i] != Label::Unknown {
                    continue;
                }
                for j in 0..l {
                    state.qij_lo[i * l + j] = 1.0;
                    state.qij_hi[i * l + j] = 1.0;
                }
                state.recompute_lower(table, i);
                state.recompute_upper(table, i);
            }
            return;
        }
        let limit = k - 1;
        // The success probabilities at end-point j are exactly the SoA cdf
        // column — no gather needed. The truncated DP states for the two
        // active end-points live in ping-pong kernel scratch buffers; the
        // exclude-one tails come from O(limit) deconvolution with a
        // recompute fallback (into spare scratch) near p = 1.
        kernels::pb_into(&mut state.kernel.dp, table.cdf_col(0), limit);
        for j in 0..l {
            kernels::pb_into(&mut state.kernel.dp_next, table.cdf_col(j + 1), limit);
            // Stage both exclude-one tail columns through the vector
            // deconvolution kernel (lanes = objects), then apply with the
            // scalar label gate. Each staged value is bit-identical to the
            // per-object `pb_tail_excluding` call it replaces.
            state
                .kernel
                .stage_knn_tails(table.cdf_col(j + 1), table.cdf_col(j));
            for i in 0..n {
                if state.labels[i] != Label::Unknown {
                    continue;
                }
                let lo = state.kernel.q_col[i];
                let cell = &mut state.qij_lo[i * l + j];
                if lo > *cell {
                    *cell = lo;
                }
                let hi = state.kernel.q_hi_col[i];
                let cell = &mut state.qij_hi[i * l + j];
                if hi < *cell {
                    *cell = hi;
                }
            }
            state.kernel.swap_pb();
        }
        for i in 0..n {
            if state.labels[i] == Label::Unknown {
                state.recompute_lower(table, i);
                state.recompute_upper(table, i);
            }
        }
    }
}

/// Aggregated L-SR-k/U-SR-k bounds `(p.l, p.u)` per candidate (Eq. 4
/// aggregation of [`KnnSubregion`]'s per-subregion bounds).
pub fn knn_verifier_bounds(table: &SubregionTable, k: usize) -> (Vec<f64>, Vec<f64>) {
    let n = table.n_objects();
    if n == 0 || table.left_regions() == 0 {
        return (vec![0.0; n], vec![0.0; n]);
    }
    let mut state = VerificationState::new(table);
    KnnSubregion::new(k).apply(table, &mut state);
    (
        state.bounds.iter().map(|b| b.lo()).collect(),
        state.bounds.iter().map(|b| b.hi()).collect(),
    )
}

/// Monte-Carlo estimate of k-NN qualification probabilities.
pub fn monte_carlo_knn<R: Rng + ?Sized>(
    cands: &CandidateSet,
    k: usize,
    worlds: usize,
    rng: &mut R,
) -> Result<Vec<f64>> {
    if worlds == 0 {
        return Err(CoreError::ZeroWorlds);
    }
    let members = cands.members();
    let n = members.len();
    let k = k.min(n);
    let mut counts = vec![0usize; n];
    let mut sampled: Vec<(f64, usize)> = Vec::with_capacity(n);
    for _ in 0..worlds {
        sampled.clear();
        for (i, m) in members.iter().enumerate() {
            let u: f64 = rng.gen();
            sampled.push((m.dist.quantile(u), i));
        }
        sampled.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, i) in sampled.iter().take(k) {
            counts[i] += 1;
        }
    }
    Ok(counts
        .into_iter()
        .map(|c| c as f64 / worlds as f64)
        .collect())
}

/// Outcome of the constrained k-NN evaluation for one candidate.
#[derive(Debug, Clone, Copy)]
pub struct KnnVerdict {
    /// Final probability bound.
    pub bound: ProbBound,
    /// Final classification.
    pub label: Label,
    /// Subregion integrations spent on this object.
    pub integrations: usize,
}

/// Evaluate a constrained k-NN query over a k-horizon table through the
/// shared verification framework and refinement loop: the RS-k and
/// [`KnnSubregion`] verifiers first (Fig. 5), then per-subregion exact
/// refinement until each object classifies (Sec. IV-D). This is the same
/// verify → refine machinery the 1-NN pipeline runs — only the verifier
/// chain and the qualification integrand differ.
pub fn constrained_knn(
    table: &SubregionTable,
    classifier: &Classifier,
    k: usize,
) -> Vec<KnnVerdict> {
    let k = k.max(1);
    let mut state = VerificationState::new(table);
    let mut stages = Vec::new();
    run_verification_into(
        table,
        classifier,
        &knn_verifiers(k),
        &mut state,
        &mut stages,
    );
    let report = incremental_refine_with(
        table,
        classifier,
        &mut state,
        RefinementOrder::DescendingMass,
        |i, j, scr| kernels::knn_qualification(table, i, j, k, scr),
    );
    state
        .bounds
        .iter()
        .zip(&state.labels)
        .enumerate()
        .map(|(i, (&bound, &label))| KnnVerdict {
            bound,
            label,
            integrations: report.per_object.get(i).copied().unwrap_or(0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_probabilities;
    use crate::object::{ObjectId, UncertainObject};
    use crate::testutil::fig7_scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn knn_setup(k: usize) -> (CandidateSet, SubregionTable) {
        let (_, objects) = fig7_scenario();
        let cands = CandidateSet::build_k(&objects, 0.0, 0, k).unwrap();
        let table = SubregionTable::build(&cands);
        (cands, table)
    }

    #[test]
    fn poisson_binomial_edge_cases() {
        assert_eq!(poisson_binomial_at_most([].into_iter(), 0), 1.0);
        // Two fair coins: P[at most 1 head] = 3/4.
        let p = poisson_binomial_at_most([0.5, 0.5].into_iter(), 1);
        assert!((p - 0.75).abs() < 1e-12);
        // P[at most 0] = product of failures.
        let p0 = poisson_binomial_at_most([0.2, 0.3].into_iter(), 0);
        assert!((p0 - 0.8 * 0.7).abs() < 1e-12);
        // Limit ≥ n means certainty.
        let pn = poisson_binomial_at_most([0.9, 0.9].into_iter(), 2);
        assert!((pn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_one_matches_exact_pnn() {
        let (_, table) = knn_setup(1);
        let knn = knn_probabilities(&table, 1);
        let (exact, _) = exact_probabilities(&table);
        for (a, b) in knn.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn knn_probabilities_sum_to_k() {
        for k in [1usize, 2, 3] {
            let (_, table) = knn_setup(k);
            let probs = knn_probabilities(&table, k);
            let total: f64 = probs.iter().sum();
            assert!((total - k as f64).abs() < 1e-6, "k = {k}: sum = {total}");
        }
    }

    #[test]
    fn knn_probabilities_monotone_in_k() {
        // Membership probability can only grow as k grows. Build each table
        // at the max horizon so candidate sets align.
        let (_, objects) = fig7_scenario();
        let cands = CandidateSet::build_k(&objects, 0.0, 0, 3).unwrap();
        let table = SubregionTable::build(&cands);
        let p1 = knn_probabilities(&table, 1);
        let p2 = knn_probabilities(&table, 2);
        let p3 = knn_probabilities(&table, 3);
        for i in 0..p1.len() {
            assert!(p1[i] <= p2[i] + 1e-9);
            assert!(p2[i] <= p3[i] + 1e-9);
        }
    }

    #[test]
    fn monte_carlo_confirms_exact_knn() {
        let (cands, table) = knn_setup(2);
        let exact = knn_probabilities(&table, 2);
        let mut rng = StdRng::seed_from_u64(77);
        let mc = monte_carlo_knn(&cands, 2, 100_000, &mut rng).unwrap();
        for (a, b) in mc.iter().zip(&exact) {
            assert!((a - b).abs() < 0.01, "MC {a} vs exact {b}");
        }
    }

    #[test]
    fn rs_k_bound_contains_exact() {
        let (_, table) = knn_setup(2);
        let exact = knn_probabilities(&table, 2);
        let upper = knn_upper_bounds(&table);
        for (p, u) in exact.iter().zip(&upper) {
            assert!(p <= &(u + 1e-9), "exact {p} above RS-k bound {u}");
        }
    }

    #[test]
    fn constrained_knn_agrees_with_exact_thresholding() {
        let (_, table) = knn_setup(2);
        let exact = knn_probabilities(&table, 2);
        for threshold in [0.3, 0.6, 0.9] {
            let classifier = Classifier::new(threshold, 0.0).unwrap();
            let verdicts = constrained_knn(&table, &classifier, 2);
            for (i, v) in verdicts.iter().enumerate() {
                let want = if exact[i] >= threshold {
                    Label::Satisfy
                } else {
                    Label::Fail
                };
                assert_eq!(v.label, want, "object {i} at P = {threshold}");
                assert!(v.bound.contains(exact[i], 1e-6));
            }
        }
    }

    #[test]
    fn constrained_knn_with_generous_tolerance_skips_work() {
        let (_, table) = knn_setup(2);
        let tight = constrained_knn(&table, &Classifier::new(0.5, 0.0).unwrap(), 2);
        let loose = constrained_knn(&table, &Classifier::new(0.5, 0.5).unwrap(), 2);
        let sum = |v: &[KnnVerdict]| v.iter().map(|x| x.integrations).sum::<usize>();
        assert!(sum(&loose) <= sum(&tight));
    }

    #[test]
    fn knn_verifier_bounds_contain_exact() {
        for k in [1usize, 2, 3] {
            let (_, table) = knn_setup(k);
            let exact = knn_probabilities(&table, k);
            let (lo, hi) = knn_verifier_bounds(&table, k);
            for i in 0..exact.len() {
                assert!(
                    lo[i] <= exact[i] + 1e-9,
                    "k = {k}, object {i}: lower {} > exact {}",
                    lo[i],
                    exact[i]
                );
                assert!(
                    hi[i] >= exact[i] - 1e-9,
                    "k = {k}, object {i}: upper {} < exact {}",
                    hi[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn knn_verifier_bounds_match_naive_computation() {
        // Naive reference: per (i, j), PB tails computed from scratch over
        // the other objects' cdf values at the two end-points.
        let (_, table) = knn_setup(2);
        let k = 2;
        let n = table.n_objects();
        let l = table.left_regions();
        let (lo, hi) = knn_verifier_bounds(&table, k);
        for i in 0..n {
            let mut want_lo = 0.0;
            let mut want_hi = 0.0;
            for j in 0..l {
                let s = table.mass(i, j);
                if s <= MASS_EPS {
                    continue;
                }
                let tail_at = |endpoint: usize| {
                    poisson_binomial_at_most(
                        (0..n)
                            .filter(|&m| m != i)
                            .map(|m| table.cdf_at(m, endpoint)),
                        k - 1,
                    )
                };
                want_lo += s * tail_at(j + 1);
                want_hi += s * tail_at(j);
            }
            assert!((lo[i] - want_lo).abs() < 1e-9, "object {i} lower");
            assert!((hi[i] - want_hi).abs() < 1e-9, "object {i} upper");
        }
    }

    #[test]
    fn knn_verifiers_cut_refinement_work() {
        // With the subregion bounds in place, clear-cut objects classify
        // without any integration.
        let (_, table) = knn_setup(2);
        let verdicts = constrained_knn(&table, &Classifier::new(0.98, 0.0).unwrap(), 2);
        // X1 and X2 are almost surely in the top 2 but not ≥ 0.98-certain…
        // X3 fails outright from its upper bound.
        assert_eq!(verdicts[2].label, Label::Fail);
        assert_eq!(verdicts[2].integrations, 0);
    }

    #[test]
    fn k_larger_than_candidate_count_gives_certainty() {
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 1.0, 2.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 1.5, 3.0).unwrap(),
        ];
        let cands = CandidateSet::build_k(&objects, 0.0, 0, 5).unwrap();
        let table = SubregionTable::build(&cands);
        let probs = knn_probabilities(&table, 5);
        for p in probs {
            assert!((p - 1.0).abs() < 1e-9);
        }
    }
}
