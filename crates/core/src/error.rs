//! Error type for query construction and evaluation.

use std::fmt;

/// Errors raised by the C-PNN query machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A probability substrate error (invalid pdf, region, ...).
    Pdf(cpnn_pdf::PdfError),
    /// Threshold outside `(0, 1]`.
    InvalidThreshold(f64),
    /// Tolerance outside `[0, 1]`.
    InvalidTolerance(f64),
    /// The query point is not finite.
    InvalidQueryPoint(f64),
    /// A duplicate object id was inserted into the database.
    DuplicateObjectId(u64),
    /// Monte-Carlo world count must be positive.
    ZeroWorlds,
    /// A durable-storage failure: the write-ahead journal or checkpoint
    /// could not be written (the message carries the backend detail), or
    /// a recovered layout failed validation. Writes that fail here are
    /// **not** published — durability errors never leave the in-memory
    /// and on-disk states disagreeing silently.
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pdf(e) => write!(f, "pdf error: {e}"),
            CoreError::InvalidThreshold(p) => {
                write!(f, "threshold P must be in (0, 1], got {p}")
            }
            CoreError::InvalidTolerance(d) => {
                write!(f, "tolerance Δ must be in [0, 1], got {d}")
            }
            CoreError::InvalidQueryPoint(q) => write!(f, "query point must be finite, got {q}"),
            CoreError::DuplicateObjectId(id) => write!(f, "duplicate object id {id}"),
            CoreError::ZeroWorlds => write!(f, "Monte-Carlo world count must be positive"),
            CoreError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Pdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cpnn_pdf::PdfError> for CoreError {
    fn from(e: cpnn_pdf::PdfError) -> Self {
        CoreError::Pdf(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
