//! Probabilistic range queries over uncertain data.
//!
//! The companion query class from the paper's related work (Tao et al.,
//! VLDB 2005 \[16\]): given a range `[lo, hi]` and threshold `P`, return the
//! objects whose probability of lying inside the range is at least `P`.
//! Unlike the PNN, range probabilities are independent across objects
//! (`Pr[X_i ∈ [lo,hi]]` is just pdf mass), so evaluation is a pruned scan:
//! the R-tree finds regions overlapping the range, and the pdf mass decides.

use cpnn_pdf::Pdf as _;
use cpnn_rtree::Rect;

use crate::engine::UncertainDb;
use crate::error::{CoreError, Result};
use crate::object::ObjectId;

/// One probabilistic range answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeAnswer {
    /// The qualifying object.
    pub id: ObjectId,
    /// `Pr[X ∈ [lo, hi]]`.
    pub probability: f64,
}

impl UncertainDb {
    /// Probabilistic range query: objects whose probability of falling in
    /// `[lo, hi]` is at least `threshold`. Answers are sorted by descending
    /// probability (ties by id).
    pub fn range_query(&self, lo: f64, hi: f64, threshold: f64) -> Result<Vec<RangeAnswer>> {
        if !(lo.is_finite() && hi.is_finite()) || lo > hi {
            return Err(CoreError::InvalidQueryPoint(lo));
        }
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        // Filtering: only objects whose uncertainty region overlaps the
        // range can have non-zero probability. The store's index holds the
        // objects themselves, so the hits come back directly.
        let mut out: Vec<RangeAnswer> = Vec::new();
        for (_, obj) in self.store().intersecting(&Rect::interval(lo, hi)) {
            let p = obj.pdf().mass_between(lo, hi);
            if p >= threshold {
                out.push(RangeAnswer {
                    id: obj.id(),
                    probability: p,
                });
            }
        }
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.id.cmp(&b.id))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::UncertainObject;

    fn db() -> UncertainDb {
        let objects = vec![
            UncertainObject::uniform(ObjectId(0), 0.0, 10.0).unwrap(),
            UncertainObject::uniform(ObjectId(1), 4.0, 6.0).unwrap(),
            UncertainObject::uniform(ObjectId(2), 20.0, 30.0).unwrap(),
        ];
        UncertainDb::build(objects).unwrap()
    }

    #[test]
    fn masses_are_exact() {
        let res = db().range_query(4.0, 6.0, 0.05).unwrap();
        // Object 1 entirely inside (p = 1); object 0 contributes 2/10.
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, ObjectId(1));
        assert!((res[0].probability - 1.0).abs() < 1e-12);
        assert_eq!(res[1].id, ObjectId(0));
        assert!((res[1].probability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn threshold_prunes() {
        let res = db().range_query(4.0, 6.0, 0.5).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, ObjectId(1));
    }

    #[test]
    fn non_overlapping_range_is_empty() {
        assert!(db().range_query(100.0, 200.0, 0.1).unwrap().is_empty());
    }

    #[test]
    fn invalid_arguments_rejected() {
        assert!(db().range_query(6.0, 4.0, 0.5).is_err());
        assert!(db().range_query(f64::NAN, 4.0, 0.5).is_err());
        assert!(db().range_query(0.0, 1.0, 0.0).is_err());
        assert!(db().range_query(0.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn point_range_works() {
        // Zero-width range: mass is zero for continuous pdfs.
        let res = db().range_query(5.0, 5.0, 0.01).unwrap();
        assert!(res.is_empty());
    }
}
