//! Socket plumbing shared by shard processes and the router: one address
//! type covering Unix-domain sockets (the default — shard fleets live on
//! one box first) and TCP, with listener/stream wrappers that erase the
//! transport.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a shard process listens: a Unix-domain socket path, or a TCP
/// address spelled `tcp:HOST:PORT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `HOST:PORT` address.
    Tcp(String),
}

impl ShardAddr {
    /// Parse a CLI/shard-map spelling: `tcp:HOST:PORT` is TCP, anything
    /// else is a Unix-domain socket path.
    pub fn parse(s: &str) -> Self {
        match s.strip_prefix("tcp:") {
            Some(hostport) => Self::Tcp(hostport.to_string()),
            None => Self::Unix(PathBuf::from(s)),
        }
    }
}

impl fmt::Display for ShardAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unix(p) => write!(f, "{}", p.display()),
            Self::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bound listener on either transport.
#[derive(Debug)]
pub enum ShardListener {
    /// Unix-domain listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl ShardListener {
    /// Bind `addr`. A stale Unix socket file (the trace of a killed
    /// shard process) is removed first, so a crashed shard can be
    /// restarted on the same address without manual cleanup.
    pub fn bind(addr: &ShardAddr) -> io::Result<Self> {
        match addr {
            ShardAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Self::Unix(UnixListener::bind(path)?))
            }
            ShardAddr::Tcp(hostport) => Ok(Self::Tcp(TcpListener::bind(hostport)?)),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<ShardStream> {
        match self {
            Self::Unix(l) => l.accept().map(|(s, _)| ShardStream::Unix(s)),
            Self::Tcp(l) => l.accept().map(|(s, _)| ShardStream::Tcp(s)),
        }
    }

    /// The address the listener actually bound (resolves `tcp:...:0`
    /// ephemeral ports — tests bind port 0 and dial the result).
    pub fn bound_addr(&self) -> io::Result<ShardAddr> {
        match self {
            Self::Unix(l) => Ok(ShardAddr::Unix(
                l.local_addr()?
                    .as_pathname()
                    .map(PathBuf::from)
                    .unwrap_or_default(),
            )),
            Self::Tcp(l) => Ok(ShardAddr::Tcp(l.local_addr()?.to_string())),
        }
    }
}

/// One accepted or dialed connection on either transport.
#[derive(Debug)]
pub enum ShardStream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl ShardStream {
    /// Dial `addr`.
    pub fn connect(addr: &ShardAddr) -> io::Result<Self> {
        match addr {
            ShardAddr::Unix(path) => UnixStream::connect(path).map(Self::Unix),
            ShardAddr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).map(Self::Tcp),
        }
    }

    /// Bound every read and write by `timeout` (`None` blocks forever) —
    /// the router's per-request watchdog, so a hung shard surfaces as a
    /// timed-out I/O error instead of a wedged router.
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Self::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }

    /// An independently owned handle to the same connection (reader and
    /// writer halves).
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Self::Unix(s) => s.try_clone().map(Self::Unix),
            Self::Tcp(s) => s.try_clone().map(Self::Tcp),
        }
    }

    /// Sever both directions immediately (crash simulation and handle
    /// teardown; concurrent reads fail over to their error paths).
    pub fn shutdown_both(&self) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.shutdown(Shutdown::Both),
            Self::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for ShardStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Unix(s) => s.read(buf),
            Self::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ShardStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Unix(s) => s.write(buf),
            Self::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.flush(),
            Self::Tcp(s) => s.flush(),
        }
    }
}
