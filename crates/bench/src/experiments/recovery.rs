//! Durability experiment — beyond the paper: what the write-ahead
//! journal costs on the hot path, and what checkpoint/recovery cost at
//! rest, vs. |T| and burst size.
//!
//! Per (|T|, burst) cell, the same coalesced-burst workload runs twice
//! through a [`QueryServer`]:
//!
//! * **volatile** — no storage backend: a flush is just the in-memory
//!   snapshot swap (the PR-5 baseline);
//! * **durable** — a [`FileBackend`] attached: each flush additionally
//!   appends one CRC'd, fsync'd journal record *before* the publish.
//!
//! The gap between the two columns is the entire durability tax —
//! dominated by the per-burst fsync, so it amortizes as bursts widen.
//! The at-rest columns then measure a full-model checkpoint, a cold
//! recovery (checkpoint decode + journal replay into a live database),
//! and how many journal records that replay consumed.

use std::time::{Duration, Instant};

use cpnn_core::{FileBackend, ObjectId, QueryServer, UncertainDb, UncertainObject};
use cpnn_datagen::{longbeach::longbeach_with, LongBeachConfig};

use crate::report::Table;

fn db_of(count: usize) -> UncertainDb {
    let cfg = LongBeachConfig {
        count,
        ..LongBeachConfig::default()
    };
    UncertainDb::build(longbeach_with(0xC0FFEE, cfg)).expect("valid generated data")
}

fn update_object(i: usize) -> UncertainObject {
    let lo = (i as f64 * 37.3) % 9_000.0;
    UncertainObject::uniform(ObjectId(10_000_000 + i as u64), lo, lo + 5.0)
        .expect("valid update object")
}

/// Mean µs/op over `rounds` coalesced bursts of `burst` inserts each.
/// `durable` routes the server through a fresh [`FileBackend`] in `dir`
/// (attached + initial checkpoint *outside* the timed region).
fn burst_latency(
    db: &UncertainDb,
    burst: usize,
    rounds: usize,
    dir: Option<&std::path::Path>,
) -> Duration {
    let server = QueryServer::start(db.clone(), 1, Default::default());
    if let Some(dir) = dir {
        let backend = FileBackend::open(dir).expect("temp data dir");
        server.attach_storage(Box::new(backend));
        server.checkpoint_now().expect("initial checkpoint");
    }
    let mut total = Duration::ZERO;
    let mut ops = 0usize;
    for round in 0..rounds {
        let base = round * burst;
        let start = Instant::now();
        let tickets: Vec<_> = (0..burst)
            .map(|i| server.queue_insert(update_object(base + i)))
            .collect();
        let report = server.flush_writes();
        total += start.elapsed();
        assert_eq!(report.applied, burst, "burst applies cleanly");
        for t in tickets {
            assert!(t.wait().result.is_ok());
        }
        ops += burst;
    }
    server.shutdown();
    total / ops.max(1) as u32
}

/// Run the experiment. Rows sweep |T| × burst size; columns compare the
/// volatile and durable flush paths (mean µs per op, the durability
/// tax), then checkpoint / cold-recovery wall time and the journal
/// records the recovery replayed.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[1_000, 4_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let bursts = [1usize, 8, 64];
    let rounds = if quick { 4 } else { 10 };
    let mut table = Table::new(
        "Recovery",
        "Durability tax and recovery cost: volatile vs. journaled \
         coalesced bursts, checkpoint and cold-recovery wall time",
        &[
            "|T|",
            "burst",
            "volatile (µs/op)",
            "durable (µs/op)",
            "tax",
            "checkpoint (ms)",
            "recover (ms)",
            "replayed",
        ],
    );
    table.note(format!(
        "durable = FileBackend (write-ahead journal, one CRC'd fsync'd \
         record per flushed burst, appended before the publish); volatile \
         = same server, no backend; {rounds} bursts per cell; recover = \
         cold start (checkpoint decode + full journal replay into a live \
         database); temp dirs, removed after each cell"
    ));
    let tmp = std::env::temp_dir().join(format!("cpnn-bench-recovery-{}", std::process::id()));
    for &size in sizes {
        let db = db_of(size);
        for &burst in &bursts {
            let volatile = burst_latency(&db, burst, rounds, None);
            let _ = std::fs::remove_dir_all(&tmp);
            let durable = burst_latency(&db, burst, rounds, Some(&tmp));

            // At-rest costs against the journal the durable run left
            // behind: one full-model checkpoint, then a cold recovery of
            // checkpoint + journal tail.
            let mut backend = FileBackend::open(&tmp).expect("temp data dir");
            let start = Instant::now();
            let recovered = backend
                .recover::<UncertainDb>(&Default::default())
                .expect("journal replays")
                .expect("checkpoint exists");
            let recover_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(recovered.model.len(), size + rounds * burst);
            assert!(recovered.torn_at.is_none());

            let server = QueryServer::start(recovered.model, 1, Default::default());
            server.attach_storage(Box::new(backend));
            let start = Instant::now();
            server.checkpoint_now().expect("checkpoint succeeds");
            let checkpoint_ms = start.elapsed().as_secs_f64() * 1e3;
            server.shutdown();

            let volatile_us = volatile.as_secs_f64() * 1e6;
            let durable_us = durable.as_secs_f64() * 1e6;
            table.push_row(vec![
                size.to_string(),
                burst.to_string(),
                format!("{volatile_us:.1}"),
                format!("{durable_us:.1}"),
                format!("{:.1}x", durable_us / volatile_us.max(1e-9)),
                format!("{checkpoint_ms:.2}"),
                format!("{recover_ms:.2}"),
                recovered.records.to_string(),
            ]);
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    table
}
