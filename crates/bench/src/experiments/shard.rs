//! Sharding experiment — beyond the paper: query throughput and update
//! latency of the domain-partitioned [`ShardedDb`] as the shard count
//! grows, on a fixed workload.
//!
//! Two effects are measured per shard count:
//!
//! * **query throughput** — the shard-aware batch executor
//!   ([`cpnn_core::BatchExecutor::run_sharded`]) over the same VR workload
//!   the `batch` experiment uses. Fan-out only visits shards overlapping
//!   each query's candidate horizon, so throughput should hold (or
//!   slightly improve from smaller per-shard R-trees) as shards grow.
//! * **update latency** — [`cpnn_core::QueryServer`] copy-on-write
//!   `insert`/`remove`, which rebuild *only the owning shard*. The mean
//!   swap latency should scale with `|T| / shards` (the rebuilt shard's
//!   size), not with `|T|` — the point of per-shard snapshots.

use std::time::{Duration, Instant};

use cpnn_core::{
    BatchExecutor, ObjectId, QueryServer, QuerySpec, ShardedDb, Strategy, UncertainDb,
    UncertainObject,
};
use cpnn_datagen::query_points;

use crate::experiments::{longbeach_db, DEFAULT_DELTA, DEFAULT_P};
use crate::report::Table;

/// Shard counts to sweep.
const SHARD_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Mean per-update swap latency over `reps` insert + `reps` remove
/// round-trips against a running server (each update copy-on-write
/// rebuilds the owning shard and swaps the snapshot).
fn update_latency(db: &ShardedDb<UncertainDb>, reps: usize) -> (Duration, Duration) {
    let server = QueryServer::start(db.clone(), 1, db.pipeline_config());
    let base = 10_000_000u64;
    let mut insert_total = Duration::ZERO;
    let mut remove_total = Duration::ZERO;
    for i in 0..reps {
        let id = ObjectId(base + i as u64);
        let lo = (i as f64 * 37.3) % 9_000.0;
        let object = UncertainObject::uniform(id, lo, lo + 5.0).expect("valid update object");
        let start = Instant::now();
        server.insert(object).expect("fresh id inserts cleanly");
        insert_total += start.elapsed();
        let start = Instant::now();
        server.remove(id).expect("update applies");
        remove_total += start.elapsed();
    }
    server.shutdown();
    (
        insert_total / reps.max(1) as u32,
        remove_total / reps.max(1) as u32,
    )
}

/// Run the experiment. Columns: shard count, largest shard, batch
/// throughput through the shard-aware executor, and mean copy-on-write
/// insert/remove latency (µs) with the speedup over the unsharded rebuild.
pub fn run(quick: bool) -> Table {
    let flat = longbeach_db(quick);
    let n_queries = if quick { 2_000 } else { 10_000 };
    let reps = if quick { 12 } else { 30 };
    let queries = query_points(0x54A2D, n_queries);
    let spec = QuerySpec::nn(DEFAULT_P, DEFAULT_DELTA, Strategy::Verified);
    let jobs: Vec<(f64, QuerySpec)> = queries.iter().map(|&q| (q, spec)).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Shard",
        &format!(
            "ShardedDb scaling on a {n_queries}-query VR workload: \
             throughput and copy-on-write update latency vs. shard count"
        ),
        &[
            "shards",
            "max |shard|",
            "batch q/s",
            "q/s vs 1",
            "insert (µs)",
            "remove (µs)",
            "update speedup",
        ],
    );
    table.note(format!(
        "{} queries, |T| = {}, P = {DEFAULT_P}, Δ = {DEFAULT_DELTA}, strategy VR, \
         {} thread(s); updates are QueryServer snapshot swaps rebuilding only \
         the owning shard, averaged over {} insert/remove round-trips \
         (best-of-2 throughput)",
        n_queries,
        flat.len(),
        threads,
        reps
    ));
    let mut base_qps = None;
    let mut base_update = None;
    for shards in SHARD_SWEEP {
        let db = ShardedDb::from_model(&flat, shards).expect("reshard of a valid database");
        let mut qps: f64 = 0.0;
        for _ in 0..2 {
            let out = BatchExecutor::new(threads).run_sharded(&db, &jobs, &db.pipeline_config());
            assert_eq!(out.summary.errors, 0, "benchmark queries are valid");
            qps = qps.max(out.summary.throughput());
        }
        let (insert_us, remove_us) = update_latency(&db, reps);
        let update_us = (insert_us.as_secs_f64() + remove_us.as_secs_f64()) * 0.5 * 1e6;
        let qps_base = *base_qps.get_or_insert(qps);
        let update_base = *base_update.get_or_insert(update_us);
        table.push_row(vec![
            shards.to_string(),
            db.shard_sizes().into_iter().max().unwrap_or(0).to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / qps_base.max(1e-9)),
            format!("{:.1}", insert_us.as_secs_f64() * 1e6),
            format!("{:.1}", remove_us.as_secs_f64() * 1e6),
            format!("{:.2}x", update_base / update_us.max(1e-9)),
        ]);
    }
    table
}
